#!/usr/bin/env python3
"""Adaptive routing study (paper Figure 20): UGAL-L / UGAL-G / minimal
routing on Slim NoC vs Flattened Butterfly, uniform and asymmetric
traffic.

Run:  python examples/adaptive_routing.py
"""

from repro import (
    NoCSimulator,
    SimConfig,
    StaticMinimalRouting,
    SyntheticSource,
    UGALRouting,
    format_table,
    make_network,
)

CONFIG = SimConfig(num_vcs=4, edge_buffer_flits=8)


def run(symbol, scheme, pattern, load):
    topo = make_network(symbol)
    if scheme == "MIN":
        routing = StaticMinimalRouting(topo, num_vcs=4)
    else:
        routing = UGALRouting(topo, num_vcs=4, global_info=scheme == "UGAL-G", seed=1)
    sim = NoCSimulator(topo, CONFIG, routing=routing, seed=2)
    return sim.run(SyntheticSource(topo, pattern, load), warmup=200, measure=500, drain=1200)


def main():
    for pattern in ("RND", "ASYM"):
        rows = []
        for symbol in ("sn200", "fbf4"):
            for scheme in ("MIN", "UGAL-L", "UGAL-G"):
                for load in (0.05, 0.2, 0.35):
                    res = run(symbol, scheme, pattern, load)
                    rows.append(
                        [f"{symbol}_{scheme}", f"{load:.2f}", f"{res.avg_latency:.1f}",
                         f"{res.throughput:.3f}", "sat" if res.saturated else ""]
                    )
        print()
        print(format_table(
            ["network_routing", "load", "latency [cyc]", "throughput", ""],
            rows, title=f"Figure 20 — {pattern} traffic, N=200",
        ))


if __name__ == "__main__":
    main()
