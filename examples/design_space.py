#!/usr/bin/env python3
"""Design-space exploration: regenerate the paper's Table 2 and pick a
Slim NoC configuration for a target core count, then report its full
cost profile (area, power, buffers) against the FBF alternative.

Run:  python examples/design_space.py [target_nodes]
"""

import sys

from repro import (
    SlimNoC,
    TECH_45NM,
    enumerate_configurations,
    format_table,
    network_area,
    static_power,
)


def pick_configuration(target_nodes: int):
    """Smallest configuration with at least the target node count,
    preferring power-of-two and square-grid designs (the bold/shaded
    rows of Table 2)."""
    candidates = [c for c in enumerate_configurations(4 * target_nodes)
                  if c.num_nodes >= target_nodes]
    if not candidates:
        raise SystemExit(f"no Slim NoC configuration reaches {target_nodes} nodes")
    return min(
        candidates,
        key=lambda c: (c.num_nodes, not c.power_of_two_nodes, not c.square_group_grid),
    )


def main():
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 1000

    configs = enumerate_configurations(1300)
    rows = [
        [c.q, "non-prime" if not c.is_prime_field else "prime", c.network_radix,
         c.concentration, f"{c.subscription:.0%}", c.num_nodes, c.num_routers,
         "x" if c.power_of_two_nodes else "", "x" if c.square_group_grid else ""]
        for c in configs
    ]
    print(format_table(
        ["q", "field", "k'", "p", "sub", "N", "Nr", "pow2", "square"],
        rows, title="Table 2: all Slim NoC configurations with N <= 1300",
    ))

    chosen = pick_configuration(target)
    print(f"\nTarget {target} nodes -> chose q={chosen.q}, p={chosen.concentration} "
          f"(N={chosen.num_nodes}, Nr={chosen.num_routers}, k'={chosen.network_radix})")

    layout = "sn_gr" if chosen.square_group_grid else "sn_subgr"
    sn = SlimNoC(chosen.q, chosen.concentration, layout=layout)
    area = network_area(sn, TECH_45NM, edge_buffer_flits=None)
    power = static_power(sn, TECH_45NM, edge_buffer_flits=None)
    print(f"Layout: {layout}  die: {sn.grid_extent()[0]}x{sn.grid_extent()[1]} routers")
    print(f"Area: {area.total:.1f} mm^2 ({area.per_node_cm2(sn.num_nodes) * 1e3:.3f}e-3 cm^2/node)")
    print(f"Static power: {power.total:.2f} W  avg wire: {sn.average_wire_length():.2f} hops")


if __name__ == "__main__":
    main()
