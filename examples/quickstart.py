#!/usr/bin/env python3
"""Quickstart: build SN-S (the paper's 200-node Slim NoC), simulate
uniform random traffic across a load sweep, and print the latency curve
next to a 2D torus of the same size.

Run:  python examples/quickstart.py
"""

from repro import (
    NoCSimulator,
    SimConfig,
    SyntheticSource,
    format_table,
    make_network,
    sn_small,
)


def sweep(topology, loads, smart=True):
    config = SimConfig().with_smart(smart)
    rows = []
    for load in loads:
        sim = NoCSimulator(topology, config, seed=1)
        source = SyntheticSource(topology, "RND", load)
        result = sim.run(source, warmup=300, measure=800, drain=1500)
        rows.append((load, result.avg_latency, result.throughput, result.saturated))
        if result.saturated:
            break
    return rows


def main():
    sn = sn_small()  # q=5, p=4, subgroup layout -> 200 nodes, 50 routers
    torus = make_network("t2d4")

    print(f"Slim NoC SN-S: {sn.num_nodes} nodes, {sn.num_routers} routers, "
          f"k'={sn.network_radix}, diameter={sn.diameter}")
    print(f"2D torus     : {torus.num_nodes} nodes, {torus.num_routers} routers, "
          f"k'={torus.network_radix}, diameter={torus.diameter}")

    loads = [0.01, 0.05, 0.10, 0.20, 0.30, 0.40]
    for name, topo in (("SN-S", sn), ("torus", torus)):
        rows = [
            [f"{load:.2f}", f"{lat:.1f}", f"{thr:.3f}", "yes" if sat else ""]
            for load, lat, thr, sat in sweep(topo, loads)
        ]
        print()
        print(format_table(
            ["load", "latency [cyc]", "throughput", "saturated"], rows,
            title=f"{name}: uniform random, SMART links",
        ))


if __name__ == "__main__":
    main()
