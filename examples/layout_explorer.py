#!/usr/bin/env python3
"""Layout explorer: render the paper's Figure 7 layouts as ASCII die maps
and compare the four SN layouts on wire length, buffer cost, and the
Eq. 3 wiring constraint.

Run:  python examples/layout_explorer.py [q] [p]
      (defaults: q=5 p=4 -> SN-S; try q=9 p=8 for SN-L)
"""

import sys

from repro import SlimNoC, format_table
from repro.core import (
    max_wire_crossings,
    per_router_edge_buffers,
    technology_wire_limit,
)

LAYOUTS = ["sn_basic", "sn_subgr", "sn_gr", "sn_rand"]


def ascii_die(sn: SlimNoC) -> str:
    """One character per router: the merged-group id (as in Figure 7)."""
    width, height = sn.grid_extent()
    grid = [["." for _ in range(width)] for _ in range(height)]
    symbols = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for router, (x, y) in sn.coordinates.items():
        group = sn.graph.group_of(router)
        grid[y - 1][x - 1] = symbols[group % len(symbols)]
    return "\n".join(" ".join(row) for row in grid)


def main():
    q = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    rows = []
    for layout in LAYOUTS:
        sn = SlimNoC(q, p, layout=layout)
        buffers = sum(per_router_edge_buffers(sn)) / sn.num_routers
        rows.append(
            [
                layout,
                f"{sn.average_wire_length():.2f}",
                f"{buffers:.0f}",
                max_wire_crossings(sn.edges(), sn.coordinates),
                technology_wire_limit(22, p),
            ]
        )
    print(format_table(
        ["layout", "avg wire M [hops]", "buffers/router [flits]", "max W", "W bound 22nm"],
        rows,
        title=f"Slim NoC q={q}, p={p}: layout comparison (paper section 3.3)",
    ))

    for layout in ("sn_subgr", "sn_gr"):
        sn = SlimNoC(q, p, layout=layout)
        print(f"\n{layout} die map ({sn.grid_extent()[0]}x{sn.grid_extent()[1]} routers, "
              f"characters = merged-group ids, cf. Figure 7):")
        print(ascii_die(sn))


if __name__ == "__main__":
    main()
