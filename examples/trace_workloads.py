#!/usr/bin/env python3
"""Real-workload comparison: run PARSEC/SPLASH-like traffic on Slim NoC
and the baselines, reporting latency and energy-delay product (the
paper's Figure 18 experiment).

Run:  python examples/trace_workloads.py [bench ...]
      (default benches: barnes fft ocean-c water-s)
"""

import sys

from repro import (
    NoCSimulator,
    SimConfig,
    WorkloadSource,
    cycle_time_ns,
    dynamic_power,
    format_table,
    make_metrics,
    make_network,
    static_power,
    TECH_45NM,
    workload_names,
)
from repro.power import average_route_stats

NETWORKS = ["sn200", "fbf3", "pfbf3", "cm3"]


def run(symbol: str, bench: str):
    topo = make_network(symbol)
    sim = NoCSimulator(topo, SimConfig().with_smart(), seed=3)
    result = sim.run(WorkloadSource(topo, bench, seed=5), warmup=300, measure=600, drain=1200)
    ct = cycle_time_ns(symbol)
    metrics = make_metrics(
        throughput_flits_per_cycle=result.throughput * topo.num_nodes,
        cycle_time_ns=ct,
        static=static_power(topo, TECH_45NM, hops_per_cycle=9, edge_buffer_flits=None),
        dynamic=dynamic_power(
            topo, TECH_45NM, result.throughput, ct, average_route_stats(topo),
            hops_per_cycle=9, edge_buffer_flits=None,
        ),
        avg_latency_cycles=result.avg_latency,
    )
    return result, metrics


def main():
    benches = sys.argv[1:] or ["barnes", "fft", "ocean-c", "water-s"]
    unknown = set(benches) - set(workload_names())
    if unknown:
        raise SystemExit(f"unknown benchmarks {sorted(unknown)}; options: {workload_names()}")

    for bench in benches:
        rows = []
        edp = {}
        for symbol in NETWORKS:
            result, metrics = run(symbol, bench)
            edp[symbol] = metrics.energy_delay_product
            rows.append(
                [symbol, f"{result.avg_latency:.1f}", f"{result.throughput:.4f}",
                 f"{metrics.total_power_w:.2f}", f"{metrics.energy_delay_product:.3e}"]
            )
        for row in rows:
            row.append(f"{edp[row[0]] / edp['fbf3']:.2f}")
        print()
        print(format_table(
            ["network", "latency [cyc]", "thr [f/n/c]", "power [W]", "EDP [Js]", "EDP/fbf3"],
            rows, title=f"Workload '{bench}' (SMART, 45nm)",
        ))


if __name__ == "__main__":
    main()
