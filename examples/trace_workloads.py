#!/usr/bin/env python3
"""Real-workload comparison: run PARSEC/SPLASH-like traffic on Slim NoC
and the baselines, reporting latency and energy-delay product (the
paper's Figure 18 experiment).

Runs through the experiment engine, so points are cached in
``.repro_cache/`` (a re-run performs zero new simulations) and
``REPRO_WORKERS=N`` fans the (network x benchmark) grid across N worker
processes.  Equivalent CLI: ``python -m repro workloads sn200 fbf3 ...``.

Run:  python examples/trace_workloads.py [bench ...]
      (default benches: barnes fft ocean-c water-s)
"""

import sys

from repro import format_table, workload_names
from repro.analysis import edp_table, workload_table
from repro.engine import default_engine

NETWORKS = ["sn200", "fbf3", "pfbf3", "cm3"]
BASELINE = "fbf3"


def main():
    benches = sys.argv[1:] or ["barnes", "fft", "ocean-c", "water-s"]
    unknown = set(benches) - set(workload_names())
    if unknown:
        raise SystemExit(f"unknown benchmarks {sorted(unknown)}; options: {workload_names()}")

    engine = default_engine()
    table = workload_table(NETWORKS, benches, smart=True, engine=engine)
    edp = edp_table(table, BASELINE)
    for bench in benches:
        rows = [
            [symbol, f"{row.avg_latency:.1f}", f"{row.throughput:.4f}",
             f"{row.total_power_w:.2f}", f"{row.energy_delay_product:.3e}",
             f"{edp[bench][symbol]:.2f}"]
            for symbol, row in ((s, table[s][bench]) for s in NETWORKS)
        ]
        print()
        print(format_table(
            ["network", "latency [cyc]", "thr [f/n/c]", "power [W]", "EDP [Js]", "EDP/fbf3"],
            rows, title=f"Workload '{bench}' (SMART, 45nm)",
        ))
    stats = engine.total_stats
    print(f"\nengine: {stats.cache_hits} cached, {stats.executed} simulated, "
          f"{stats.workers} workers")


if __name__ == "__main__":
    main()
