"""Workload campaigns: PARSEC/SPLASH runs joined with the power models.

The paper's real-traffic results — Figure 18's energy-delay product and
Table 6's SMART latency gains — drive the cycle-accurate simulator with
per-benchmark workload models and then fold the outcome into the
analytical power model.  This module is that join: simulations are
submitted through the experiment engine (content-addressed cache +
process-pool fan-out, like every synthetic sweep), and each
:class:`~repro.sim.SimResult` is combined with static/dynamic power and
the per-topology cycle time into a :class:`WorkloadRow`.

Networks are named by catalog symbol (``sn200``, ``fbf3``, …) because
the cycle-time table (:func:`repro.topos.cycle_time_ns`) is keyed by
symbol — the same convention the figure harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Sequence

from ..power import (
    TECH_45NM,
    Technology,
    average_route_stats,
    dynamic_power,
    make_metrics,
    static_power,
)
from ..sim import SimConfig, SimResult
from ..topos import cycle_time_ns, make_network
from .metrics import geometric_mean


@dataclass(frozen=True)
class WorkloadRow:
    """One (network, benchmark) evaluation: performance joined with power."""

    network: str
    bench: str
    avg_latency: float
    throughput: float
    static_power_w: float
    dynamic_power_w: float
    energy_delay_product: float
    saturated: bool

    @property
    def total_power_w(self) -> float:
        return self.static_power_w + self.dynamic_power_w

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "bench": self.bench,
            "avg_latency": self.avg_latency,
            "throughput": self.throughput,
            "static_power_w": self.static_power_w,
            "dynamic_power_w": self.dynamic_power_w,
            "total_power_w": self.total_power_w,
            "energy_delay_product": self.energy_delay_product,
            "saturated": self.saturated,
        }


@lru_cache(maxsize=None)
def _symbol_context(symbol: str):
    """Per-symbol invariants shared by every benchmark's join: the live
    topology, its cycle time, and the all-pairs route statistics (the
    expensive piece — cached exactly like the figure harness did)."""
    topo = make_network(symbol)
    return topo, cycle_time_ns(symbol), average_route_stats(topo)


def _join_power(
    symbol: str,
    bench: str,
    result: SimResult,
    config: SimConfig,
    tech: Technology,
) -> WorkloadRow:
    """Fold one simulation outcome into the power/EDP models."""
    topo, ct, route_stats = _symbol_context(symbol)
    kw = dict(hops_per_cycle=config.hops_per_cycle, edge_buffer_flits=None)
    metrics = make_metrics(
        throughput_flits_per_cycle=result.throughput * topo.num_nodes,
        cycle_time_ns=ct,
        static=static_power(topo, tech, **kw),
        dynamic=dynamic_power(topo, tech, result.throughput, ct, route_stats, **kw),
        avg_latency_cycles=result.avg_latency,
    )
    return WorkloadRow(
        network=symbol,
        bench=bench,
        avg_latency=result.avg_latency,
        throughput=result.throughput,
        static_power_w=metrics.static_power_w,
        dynamic_power_w=metrics.dynamic_power_w,
        energy_delay_product=metrics.energy_delay_product,
        saturated=result.saturated,
    )


def workload_table(
    networks: Sequence[str],
    benches: Sequence[str],
    *,
    config: SimConfig | None = None,
    configs: Mapping[str, SimConfig] | None = None,
    smart: bool = True,
    tech: Technology = TECH_45NM,
    intensity_scale: float = 1.0,
    seed: int = 3,
    warmup: int = 300,
    measure: int = 600,
    drain: int = 1200,
    engine=None,
    progress=None,
) -> dict[str, dict[str, WorkloadRow]]:
    """Evaluate catalog networks across benchmark models; returns
    ``{symbol: {bench: WorkloadRow}}``.

    ``smart`` applies :meth:`~repro.sim.SimConfig.with_smart` to the
    (default) config — the Figure 18 setting; pass an explicit ``config``
    or per-network ``configs`` to override.  All simulations go through
    the engine: cached per point, fanned across workers.
    """
    from ..engine import default_engine, workload_compare

    if config is None:
        config = SimConfig().with_smart(smart)
    results = workload_compare(
        engine if engine is not None else default_engine(),
        {symbol: symbol for symbol in networks},
        benches,
        configs=configs,
        config=config,
        intensity_scale=intensity_scale,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        progress=progress,
    )
    table: dict[str, dict[str, WorkloadRow]] = {}
    for symbol in networks:
        row_config = (configs or {}).get(symbol, config)
        table[symbol] = {
            bench: _join_power(symbol, bench, results[symbol][bench], row_config, tech)
            for bench in benches
        }
    return table


def edp_table(
    table: Mapping[str, Mapping[str, WorkloadRow]], baseline: str
) -> dict[str, dict[str, float]]:
    """Per-benchmark EDP normalised to ``baseline`` (Figure 18's layout):
    ``{bench: {symbol: edp / edp_baseline}}``."""
    if baseline not in table:
        raise KeyError(f"baseline {baseline!r} missing from table")
    out: dict[str, dict[str, float]] = {}
    for symbol, rows in table.items():
        for bench, row in rows.items():
            base = table[baseline][bench].energy_delay_product
            out.setdefault(bench, {})[symbol] = row.energy_delay_product / base
    return out


def edp_gain(
    edp: Mapping[str, Mapping[str, float]], symbol: str, against: str
) -> float:
    """Geometric-mean EDP advantage of ``symbol`` over ``against`` across
    benchmarks (``0.55`` = 55% lower EDP)."""
    ratios = [edp[bench][symbol] / edp[bench][against] for bench in edp]
    return 1 - geometric_mean(ratios)


def smart_latency_gains(
    networks: Sequence[str],
    benches: Sequence[str],
    *,
    seed: int = 4,
    warmup: int = 200,
    measure: int = 500,
    drain: int = 1200,
    intensity_scale: float = 1.0,
    engine=None,
    progress=None,
) -> dict[tuple[str, str], float]:
    """Percentage latency decrease from SMART links per (network, bench)
    — Table 6.  Both configurations run through one engine campaign."""
    from ..engine import default_engine, workload_compare

    engine = engine if engine is not None else default_engine()
    kw = dict(
        intensity_scale=intensity_scale,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        progress=progress,
    )
    topologies = {symbol: symbol for symbol in networks}
    baseline = workload_compare(
        engine,
        topologies,
        benches,
        config=SimConfig().with_smart(False),
        **kw,
    )
    smart = workload_compare(
        engine,
        topologies,
        benches,
        config=SimConfig().with_smart(True),
        **kw,
    )
    return {
        (symbol, bench): 100.0
        * (1 - smart[symbol][bench].avg_latency / baseline[symbol][bench].avg_latency)
        for symbol in networks
        for bench in benches
    }
