"""Analysis harness: sweeps, workload campaigns, large-N models, metrics."""

from .adaptive import AdaptiveStudyResult, adaptive_study
from .largescale import LargeScaleModel, model_curves
from .metrics import format_table, geometric_mean, relative_improvement
from .resilience import ResilienceReport, degrade, resilience_curve
from .sweep import SweepPoint, SweepResult, compare_networks, sweep_loads
from .workloads import (
    WorkloadRow,
    edp_gain,
    edp_table,
    smart_latency_gains,
    workload_table,
)

__all__ = [
    "AdaptiveStudyResult",
    "adaptive_study",
    "SweepPoint",
    "SweepResult",
    "sweep_loads",
    "compare_networks",
    "LargeScaleModel",
    "model_curves",
    "geometric_mean",
    "relative_improvement",
    "format_table",
    "ResilienceReport",
    "degrade",
    "resilience_curve",
    "WorkloadRow",
    "workload_table",
    "edp_table",
    "edp_gain",
    "smart_latency_gains",
]
