"""Analysis harness: sweeps, saturation, large-N models, metric helpers."""

from .largescale import LargeScaleModel, model_curves
from .metrics import format_table, geometric_mean, relative_improvement
from .resilience import ResilienceReport, degrade, resilience_curve
from .sweep import SweepPoint, SweepResult, compare_networks, sweep_loads

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_loads",
    "compare_networks",
    "LargeScaleModel",
    "model_curves",
    "geometric_mean",
    "relative_improvement",
    "format_table",
    "ResilienceReport",
    "degrade",
    "resilience_curve",
]
