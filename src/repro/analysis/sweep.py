"""Load sweeps and saturation analysis over the cycle-accurate simulator.

The paper's latency-load figures (10-14, 19) sweep injection rate and
plot average packet latency until the network saturates ("we omit
performance data for points after network saturation").  This module
reproduces that methodology: simulate a list of loads, stop at the first
saturated point, and report the curve plus derived metrics (zero-load
latency, saturation throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..routing import RoutingAlgorithm
from ..sim import NoCSimulator, SimConfig
from ..topos.base import Topology
from ..traffic import SyntheticSource


@dataclass(frozen=True)
class SweepPoint:
    load: float
    latency: float
    throughput: float
    saturated: bool


@dataclass
class SweepResult:
    """Latency/throughput curve for one (network, pattern, config) triple."""

    network: str
    pattern: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def loads(self) -> list[float]:
        return [p.load for p in self.points]

    @property
    def latencies(self) -> list[float]:
        return [p.latency for p in self.points]

    def zero_load_latency(self) -> float:
        """Latency at the lowest measured load."""
        if not self.points:
            raise ValueError("empty sweep")
        return self.points[0].latency

    def saturation_throughput(self) -> float:
        """Highest accepted throughput before saturation."""
        accepted = [p.throughput for p in self.points if not p.saturated]
        return max(accepted) if accepted else 0.0

    def latency_at(self, load: float) -> float:
        """Latency at the sweep point closest to ``load``."""
        if not self.points:
            raise ValueError("empty sweep")
        return min(self.points, key=lambda p: abs(p.load - load)).latency


def sweep_loads(
    topology: Topology,
    pattern: str,
    loads: list[float],
    config: SimConfig | None = None,
    routing: RoutingAlgorithm | None = None,
    packet_flits: int = 6,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    seed: int = 1,
    stop_after_saturation: bool = True,
    name: str | None = None,
) -> SweepResult:
    """Run the simulator across ``loads`` (flits/node/cycle), low to high."""
    result = SweepResult(network=name or topology.name, pattern=pattern)
    for load in sorted(loads):
        sim = NoCSimulator(topology, config, routing=routing, seed=seed)
        source = SyntheticSource(topology, pattern, load, packet_flits)
        outcome = sim.run(source, warmup=warmup, measure=measure, drain=drain)
        point = SweepPoint(
            load=load,
            latency=outcome.avg_latency,
            throughput=outcome.throughput,
            saturated=outcome.saturated,
        )
        result.points.append(point)
        if point.saturated and stop_after_saturation:
            break
    return result


def compare_networks(
    topologies: dict[str, Topology],
    pattern: str,
    loads: list[float],
    configs: dict[str, SimConfig] | None = None,
    **kwargs,
) -> dict[str, SweepResult]:
    """Sweep several networks under one pattern (Figures 12-14 layout)."""
    results = {}
    for label, topology in topologies.items():
        config = (configs or {}).get(label)
        results[label] = sweep_loads(
            topology, pattern, loads, config=config, name=label, **kwargs
        )
    return results
