"""Load sweeps and saturation analysis over the cycle-accurate simulator.

The paper's latency-load figures (10-14, 19) sweep injection rate and
plot average packet latency until the network saturates ("we omit
performance data for points after network saturation").  This module
reproduces that methodology: simulate a list of loads, stop at the first
saturated point, and report the curve plus derived metrics (zero-load
latency, saturation throughput).

Sweeps are submitted through the experiment engine
(:mod:`repro.engine`): every (topology, pattern, load, config, seed)
point is content-addressed, so repeated figure reproduction is served
from the on-disk cache, and setting ``REPRO_WORKERS`` (or passing an
``engine`` with ``max_workers > 1``) fans the points across worker
processes.  Passing an explicit :class:`RoutingAlgorithm` *object*
bypasses the engine (live adaptive state is neither serializable nor
cacheable) and runs the legacy serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..routing import RoutingAlgorithm
from ..sim import NoCSimulator, SimConfig
from ..topos.base import Topology
from ..traffic import SyntheticSource


@dataclass(frozen=True)
class SweepPoint:
    load: float
    latency: float
    throughput: float
    saturated: bool

    def to_dict(self) -> dict:
        return {
            "load": self.load,
            "latency": self.latency,
            "throughput": self.throughput,
            "saturated": self.saturated,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepPoint":
        return cls(
            load=payload["load"],
            latency=payload["latency"],
            throughput=payload["throughput"],
            saturated=payload["saturated"],
        )


@dataclass
class SweepResult:
    """Latency/throughput curve for one (network, pattern, config) triple."""

    network: str
    pattern: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def loads(self) -> list[float]:
        return [p.load for p in self.points]

    @property
    def latencies(self) -> list[float]:
        return [p.latency for p in self.points]

    def zero_load_latency(self) -> float:
        """Latency at the lowest measured load."""
        if not self.points:
            raise ValueError("empty sweep")
        return self.points[0].latency

    def saturation_throughput(self) -> float:
        """Highest accepted throughput before saturation."""
        accepted = [p.throughput for p in self.points if not p.saturated]
        return max(accepted) if accepted else 0.0

    def latency_at(self, load: float) -> float:
        """Latency at the sweep point closest to ``load``."""
        if not self.points:
            raise ValueError("empty sweep")
        return min(self.points, key=lambda p: abs(p.load - load)).latency

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "pattern": self.pattern,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        return cls(
            network=payload["network"],
            pattern=payload["pattern"],
            points=[SweepPoint.from_dict(p) for p in payload["points"]],
        )


def sweep_loads(
    topology: Topology | str,
    pattern: str,
    loads: list[float],
    config: SimConfig | None = None,
    routing: RoutingAlgorithm | None = None,
    packet_flits: int = 6,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    seed: int = 1,
    stop_after_saturation: bool = True,
    name: str | None = None,
    engine=None,
    shard: tuple[int, int] | None = None,
    shard_balance: str = "hash",
) -> SweepResult:
    """Run the simulator across ``loads`` (flits/node/cycle), low to high.

    ``topology`` may be a live :class:`Topology` or a catalog symbol;
    ``engine`` overrides the default (env-configured) experiment engine.
    ``shard=(index, count)`` computes only this invocation's slice of a
    distributed campaign, partitioned per ``shard_balance`` — every
    invocation slicing one campaign must use the same mode (see
    :func:`repro.engine.run_compare`).
    """
    if routing is not None:
        if shard is not None:
            raise ValueError(
                "sharding needs engine-cacheable specs; live routing "
                "objects run the legacy serial loop"
            )
        return _sweep_serial(
            topology, pattern, loads, config=config, routing=routing,
            packet_flits=packet_flits, warmup=warmup, measure=measure,
            drain=drain, seed=seed, stop_after_saturation=stop_after_saturation,
            name=name,
        )
    from ..engine import default_engine, run_sweep

    return run_sweep(
        engine if engine is not None else default_engine(),
        topology,
        pattern,
        loads,
        config=config,
        packet_flits=packet_flits,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        stop_after_saturation=stop_after_saturation,
        name=name,
        shard=shard,
        shard_balance=shard_balance,
    )


def _sweep_serial(
    topology: Topology | str,
    pattern: str,
    loads: list[float],
    *,
    config: SimConfig | None,
    routing: RoutingAlgorithm | None,
    packet_flits: int,
    warmup: int,
    measure: int,
    drain: int,
    seed: int,
    stop_after_saturation: bool,
    name: str | None,
) -> SweepResult:
    """Legacy in-process loop for live routing objects (UGAL et al.)."""
    if isinstance(topology, str):
        from ..engine import resolve_topology

        topology = resolve_topology(topology)
    result = SweepResult(network=name or topology.name, pattern=pattern)
    for load in sorted(loads):
        sim = NoCSimulator(topology, config, routing=routing, seed=seed)
        source = SyntheticSource(topology, pattern, load, packet_flits)
        outcome = sim.run(source, warmup=warmup, measure=measure, drain=drain)
        point = SweepPoint(
            load=load,
            latency=outcome.avg_latency,
            throughput=outcome.throughput,
            saturated=outcome.saturated,
        )
        result.points.append(point)
        if point.saturated and stop_after_saturation:
            break
    return result


def compare_networks(
    topologies: dict[str, Topology | str],
    pattern: str,
    loads: list[float],
    configs: dict[str, SimConfig] | None = None,
    engine=None,
    **kwargs,
) -> dict[str, SweepResult]:
    """Sweep several networks under one pattern (Figures 12-14 layout).

    Submitted as one engine campaign: with a multi-worker engine the
    (network × load) grid runs in parallel, with per-network early stop.
    """
    if "routing" in kwargs:
        routing = kwargs.pop("routing")
        return {
            label: sweep_loads(
                topology, pattern, loads, config=(configs or {}).get(label),
                routing=routing, name=label, **kwargs,
            )
            for label, topology in topologies.items()
        }
    from ..engine import default_engine, run_compare

    return run_compare(
        engine if engine is not None else default_engine(),
        topologies,
        pattern,
        loads,
        configs=configs,
        **kwargs,
    )
