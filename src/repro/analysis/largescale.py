"""Simplified latency/throughput model for large networks (N = 1296).

The paper's own methodology (section 5.1): "If N = 1296, due to large
memory requirements (>40GB), we simplify the models by using average wire
lengths and hop counts."  We do the same:

* **Zero-load latency** — average router hops x router pipeline + link
  cycles from the average per-route wire length (SMART-aware) +
  serialisation + NIC overhead.
* **Saturation throughput** — exact worst-channel load: route the traffic
  pattern's flow matrix over the deterministic routing tables and find
  the most loaded channel; the network saturates when that channel
  reaches one flit per cycle.
* **Latency-load curve** — an M/D/1-style queueing knee on top of the
  zero-load latency, which reproduces the familiar hockey-stick shape.

The model is also useful as an independent cross-check of the
cycle-accurate simulator at small N (tested in tests/test_analysis.py).

Building the model at N = 1296 routes the full flow matrix over the
minimal-path tables — seconds of work that every figure repeats — so
:meth:`LargeScaleModel.build` memoizes its derived scalars in the
experiment engine's content-addressed cache (:mod:`repro.engine.store`),
keyed by the topology fingerprint, pattern, packet size, sample budget,
and seed.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from ..power.power import average_route_stats
from ..routing.paths import MinimalPaths
from ..sim.config import SimConfig
from ..topos.base import Topology
from ..traffic import SyntheticSource
from .sweep import SweepPoint, SweepResult


@dataclass(frozen=True)
class LargeScaleModel:
    """Analytical latency/throughput model for one (network, pattern) pair."""

    topology: Topology
    pattern: str
    config: SimConfig
    avg_hops: float
    avg_wire_hops: float
    max_channel_load_per_rate: float

    @classmethod
    def build(
        cls,
        topology: Topology,
        pattern: str,
        config: SimConfig | None = None,
        cache=None,
        samples: int | None = None,
        seed: int = 0,
    ) -> "LargeScaleModel":
        """Derive the model's scalars (hop/wire averages, worst-channel
        load), memoized in the content-addressed result store.

        ``cache`` is a :class:`repro.engine.ResultCache`, ``None`` for
        the environment-configured default (same knobs as the engine:
        ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``), or ``False`` to
        always recompute; ``samples``/``seed`` control the randomized
        flow estimate (see :meth:`SyntheticSource.flows`).
        """
        if cache is None:
            from ..engine import default_engine

            cache = default_engine().cache  # None when REPRO_NO_CACHE is set
        elif cache is False:
            cache = None
        config = config if config is not None else SimConfig()
        probe = SyntheticSource(
            topology, pattern, rate=1.0, packet_flits=config.packet_flits,
            seed=seed,
        )
        scalars = _model_scalars(topology, probe, cache, samples)
        return cls(
            topology=topology,
            pattern=pattern,
            config=config,
            avg_hops=scalars["avg_hops"],
            avg_wire_hops=scalars["avg_wire_hops"],
            max_channel_load_per_rate=scalars["max_channel_load_per_rate"],
        )

    @property
    def saturation_rate(self) -> float:
        """Offered load (flits/node/cycle) at which the worst channel hits 1."""
        if self.max_channel_load_per_rate == 0:
            return float("inf")
        return 1.0 / self.max_channel_load_per_rate

    def zero_load_latency(self) -> float:
        cfg = self.config
        router_cycles = (self.avg_hops + 1) * cfg.router_delay
        link_cycles = max(
            self.avg_hops, self.avg_wire_hops / cfg.hops_per_cycle
        )
        serialization = cfg.packet_flits - 1
        nic = 2.0  # injection + ejection port crossing
        return router_cycles + link_cycles + serialization + nic

    def latency(self, rate: float) -> float:
        """M/D/1-style latency at an offered load in flits/node/cycle."""
        if rate < 0:
            raise ValueError("rate must be non-negative")
        base = self.zero_load_latency()
        utilization = rate / self.saturation_rate
        if utilization >= 1.0:
            return float("inf")
        queueing = (
            self.config.packet_flits * utilization / (2.0 * (1.0 - utilization))
        )
        return base + queueing * self.avg_hops

    def sweep(self, loads: list[float], name: str | None = None) -> SweepResult:
        """A SweepResult compatible with the cycle-accurate harness."""
        result = SweepResult(network=name or self.topology.name, pattern=self.pattern)
        for load in sorted(loads):
            latency = self.latency(load)
            saturated = math.isinf(latency)
            result.points.append(
                SweepPoint(
                    load=load,
                    latency=latency if not saturated else float("nan"),
                    throughput=min(load, self.saturation_rate),
                    saturated=saturated,
                )
            )
            if saturated:
                break
        return result


def _model_scalars(
    topology: Topology,
    probe: SyntheticSource,
    cache,
    samples: int | None,
) -> dict:
    """Hop/wire averages and worst-channel load, memoized per topology
    structure + pattern + sampling parameters."""
    key = None
    if cache is not None:
        from ..engine import topology_fingerprint

        effective_samples = (
            samples if samples is not None else probe.default_flow_samples()
        )
        ident = json.dumps(
            [
                "largescale-model",
                topology_fingerprint(topology),
                probe.pattern_name,
                probe.packet_flits,
                effective_samples,
                probe.seed,
            ],
            separators=(",", ":"),
        )
        key = hashlib.sha256(ident.encode("utf-8")).hexdigest()
        cached = cache.get_payload(key, kind="largescale-model")
        if cached is not None:
            return cached
    hops, wire_hops = average_route_stats(topology)
    paths = MinimalPaths(topology)
    # flows are per-router flit rates at offered load 1.0 flit/node/cycle;
    # the busiest channel's load scales linearly with the rate.
    scalars = {
        "avg_hops": hops,
        "avg_wire_hops": wire_hops,
        "max_channel_load_per_rate": paths.max_channel_load(
            probe.flows(samples=samples)
        ),
    }
    if cache is not None and key is not None:
        cache.put_payload(key, kind="largescale-model", result=scalars)
    return scalars


def model_curves(
    topologies: dict[str, Topology],
    pattern: str,
    loads: list[float],
    config: SimConfig | None = None,
    cache=None,
    seed: int = 0,
) -> dict[str, SweepResult]:
    """Analytical counterpart of :func:`repro.analysis.compare_networks`
    for the N = 1296 class, sharing the engine's result cache."""
    return {
        label: LargeScaleModel.build(
            topo, pattern, config, cache=cache, seed=seed
        ).sweep(loads, name=label)
        for label, topo in topologies.items()
    }
