"""The Fig 20-style adaptive-routing study.

Section 6 of the paper compares routing schemes under adversarial
traffic; this module reproduces that study shape across the widened
matrix — static minimal vs Valiant vs *live* UGAL (the simulator is the
congestion oracle) vs deflection, across load, traffic variant
(steady adversarial and bursty), and topology (SN vs mesh).  Every
point flows through the cached campaign engine, so reruns are pure
cache reads and the grid shards/queues like any other campaign.

Typical use::

    from repro.analysis import adaptive_study

    study = adaptive_study(default_engine(), loads=[0.04, 0.08, 0.12])
    print(study.format_table())
    best = study.best_routing("sn200", "ADV1")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..engine.campaign import run_sweep
from ..engine.runner import ExperimentEngine
from ..sim import SimConfig
from .sweep import SweepResult

#: The study's default corners: one low-diameter SN network against the
#: concentrated mesh of the same node count (the paper's Fig 12 pairing).
DEFAULT_NETWORKS = ("sn200", "cm4")
#: Static minimal, oblivious Valiant, live-UGAL, and deflection.
DEFAULT_ROUTINGS = ("default", "valiant", "ugal-l", "deflect")
#: Steady adversarial traffic and the same pattern delivered in bursts
#: (4x peak at the same mean load).
DEFAULT_TRAFFIC = ("ADV1", "burst:ADV1:64+192")


@dataclass
class AdaptiveStudyResult:
    """All curves of one adaptive study, keyed (network, routing, traffic)."""

    networks: tuple[str, ...]
    routings: tuple[str, ...]
    traffic: tuple[str, ...]
    curves: dict[tuple[str, str, str], SweepResult] = field(default_factory=dict)

    def curve(self, network: str, routing: str, traffic: str) -> SweepResult:
        return self.curves[(network, routing, traffic)]

    def saturation_throughput(
        self, network: str, routing: str, traffic: str
    ) -> float:
        return self.curve(network, routing, traffic).saturation_throughput()

    def best_routing(self, network: str, traffic: str) -> str:
        """Routing with the highest saturation throughput at this corner."""
        return max(
            self.routings,
            key=lambda r: self.saturation_throughput(network, r, traffic),
        )

    def rows(self) -> list[list]:
        """Saturation-throughput table: one row per (network, traffic)."""
        out: list[list] = []
        for network in self.networks:
            for traffic in self.traffic:
                row: list = [network, traffic]
                for routing in self.routings:
                    row.append(self.saturation_throughput(network, routing, traffic))
                row.append(self.best_routing(network, traffic))
                out.append(row)
        return out

    def format_table(self) -> str:
        from .metrics import format_table

        headers = ["network", "traffic", *self.routings, "best"]
        rows = [
            [
                *row[:2],
                *(f"{value:.4f}" for value in row[2:-1]),
                row[-1],
            ]
            for row in self.rows()
        ]
        return format_table(headers, rows)

    def to_dict(self) -> dict:
        return {
            "networks": list(self.networks),
            "routings": list(self.routings),
            "traffic": list(self.traffic),
            "curves": {
                f"{network}/{routing}/{traffic}": curve.to_dict()
                for (network, routing, traffic), curve in self.curves.items()
            },
        }


def adaptive_study(
    engine: ExperimentEngine,
    networks: Sequence[str] = DEFAULT_NETWORKS,
    routings: Sequence[str] = DEFAULT_ROUTINGS,
    traffic: Sequence[str] = DEFAULT_TRAFFIC,
    loads: Sequence[float] = (0.02, 0.06, 0.10, 0.14, 0.18, 0.22),
    *,
    config: SimConfig | None = None,
    configs: Mapping[str, SimConfig] | None = None,
    seed: int = 1,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    stop_after_saturation: bool = True,
    progress=None,
) -> AdaptiveStudyResult:
    """Run the full (network x routing x traffic x load) adaptive grid.

    Each (network, routing, traffic) triple is one engine-backed sweep
    — cached, parallel, and identical to what ``python -m repro sweep
    NETWORK --routing R --patterns T`` computes, so CLI runs and this
    study share cache entries.  ``configs`` overrides the simulator
    config per network symbol (e.g. deeper buffers on the mesh).
    """
    study = AdaptiveStudyResult(
        networks=tuple(networks),
        routings=tuple(routings),
        traffic=tuple(traffic),
    )
    for network in study.networks:
        network_config = (configs or {}).get(network, config)
        for routing in study.routings:
            for token in study.traffic:
                study.curves[(network, routing, token)] = run_sweep(
                    engine,
                    network,
                    token,
                    loads,
                    config=network_config,
                    routing=routing,
                    seed=seed,
                    warmup=warmup,
                    measure=measure,
                    drain=drain,
                    stop_after_saturation=stop_after_saturation,
                    name=network,
                    progress=progress,
                )
    return study
