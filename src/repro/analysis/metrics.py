"""Aggregate metrics and table formatting for the benchmark harness."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """The paper's aggregation for cross-benchmark gains (Figures 10b, 18)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_improvement(ours: float, baseline: float) -> float:
    """Fractional improvement of ``ours`` over ``baseline`` (lower is better).

    Returns e.g. 0.55 when ``ours`` is 55% below the baseline.
    """
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return 1.0 - ours / baseline


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain-text table matching the benchmark harness output style."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
