"""Link-failure resilience analysis.

The paper (section 2.1) attributes Slim Fly/Slim NoC's "high resilience
to link failures" to the underlying graphs being good expanders.  This
module quantifies that: remove a random fraction of links and measure
connectivity, diameter growth, and average-path-length growth.  An
expander degrades gracefully (diameter stays near 2-3); a torus or mesh
partitions or stretches quickly at the same failure rate.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from ..topos.base import Topology


@dataclass(frozen=True)
class ResilienceReport:
    """Degradation metrics after removing ``failed_links`` links."""

    failed_links: int
    total_links: int
    connected: bool
    diameter: int | None
    average_path: float | None

    @property
    def failure_fraction(self) -> float:
        return self.failed_links / self.total_links if self.total_links else 0.0


def _bfs_all(adjacency: list[list[int]], source: int) -> list[int]:
    dist = [-1] * len(adjacency)
    dist[source] = 0
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbor in adjacency[current]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[current] + 1
                frontier.append(neighbor)
    return dist


def degrade(topology: Topology, fail_fraction: float, seed: int = 0) -> ResilienceReport:
    """Remove a random link fraction and measure what remains.

    Args:
        topology: Network under test (links are undirected).
        fail_fraction: Fraction of links to remove (0..1).
        seed: RNG seed for the failure pattern.
    """
    if not 0.0 <= fail_fraction < 1.0:
        raise ValueError("fail_fraction must be in [0, 1)")
    edges = topology.edges()
    rng = random.Random(seed)
    failures = set(rng.sample(range(len(edges)), int(fail_fraction * len(edges))))
    adjacency: list[list[int]] = [[] for _ in range(topology.num_routers)]
    for index, (i, j) in enumerate(edges):
        if index in failures:
            continue
        adjacency[i].append(j)
        adjacency[j].append(i)

    total = 0
    worst = 0
    pairs = 0
    for source in range(topology.num_routers):
        dist = _bfs_all(adjacency, source)
        if any(d < 0 for d in dist):
            return ResilienceReport(
                failed_links=len(failures),
                total_links=len(edges),
                connected=False,
                diameter=None,
                average_path=None,
            )
        worst = max(worst, max(dist))
        total += sum(dist)
        pairs += topology.num_routers - 1
    return ResilienceReport(
        failed_links=len(failures),
        total_links=len(edges),
        connected=True,
        diameter=worst,
        average_path=total / pairs,
    )


def resilience_curve(
    topology: Topology,
    fractions: list[float],
    seeds: tuple[int, ...] = (0, 1, 2),
) -> dict[float, list[ResilienceReport]]:
    """Degradation reports across failure rates, several seeds each."""
    return {
        fraction: [degrade(topology, fraction, seed) for seed in seeds]
        for fraction in fractions
    }
