"""Deterministic minimal routing tables (paper section 5.1 "Routing").

The paper uses static minimum routing with paths computed by a
single-source shortest-path algorithm.  We build per-destination next-hop
tables by BFS with a stable tie-break (lowest router index wins), so every
(src, dst) pair has exactly one deterministic path — which also gives
livelock freedom for free.
"""

from __future__ import annotations

from collections import deque
from functools import cached_property

from ..topos.base import Topology


class MinimalPaths:
    """All-pairs deterministic shortest paths over a topology.

    ``next_hop[dst][cur]`` is the neighbor ``cur`` forwards to when heading
    for ``dst``; computing it per destination (reverse BFS) keeps memory at
    ``O(Nr^2)`` ints.
    """

    def __init__(self, topology: Topology):
        self.topology = topology

    @cached_property
    def next_hop(self) -> list[list[int]]:
        nr = self.topology.num_routers
        table: list[list[int]] = []
        for dst in range(nr):
            hops = [-1] * nr  # next hop toward dst; dst itself stays -1
            dist = [-1] * nr
            dist[dst] = 0
            frontier = deque([dst])
            while frontier:
                current = frontier.popleft()
                # Deterministic: neighbors scanned in sorted order, first
                # setter wins, so the lowest-index parent is chosen.
                for neighbor in sorted(self.topology.router_neighbors(current)):
                    if dist[neighbor] < 0:
                        dist[neighbor] = dist[current] + 1
                        hops[neighbor] = current
                        frontier.append(neighbor)
            if any(d < 0 for d in dist):
                raise ValueError("topology is disconnected")
            table.append(hops)
        return table

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Router sequence ``src .. dst`` (inclusive)."""
        if src == dst:
            return (src,)
        table = self.next_hop[dst]
        path = [src]
        current = src
        while current != dst:
            current = table[current]
            path.append(current)
            if len(path) > self.topology.num_routers:
                raise RuntimeError("routing loop detected")
        return tuple(path)

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.path(src, dst)) - 1

    def channel_loads(
        self, flows: dict[tuple[int, int], float]
    ) -> dict[tuple[int, int], float]:
        """Expected flits/cycle per directed channel for given router flows.

        ``flows`` maps (src_router, dst_router) to offered flits/cycle.
        Used by the analytical saturation model and by UGAL-G's oracle in
        steady state.
        """
        loads: dict[tuple[int, int], float] = {}
        for (src, dst), rate in flows.items():
            if src == dst or rate == 0.0:
                continue
            path = self.path(src, dst)
            for a, b in zip(path, path[1:]):
                loads[(a, b)] = loads.get((a, b), 0.0) + rate
        return loads

    def max_channel_load(self, flows: dict[tuple[int, int], float]) -> float:
        loads = self.channel_loads(flows)
        return max(loads.values()) if loads else 0.0
