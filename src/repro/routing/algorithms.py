"""Routing algorithms: static minimal, dimension-order, and adaptive UGAL.

A routing algorithm maps (source router, destination router) to a
:class:`Route` — the full router path plus a per-hop virtual-channel
schedule.  Fixing the VC schedule at route time implements the paper's
deadlock-avoidance schemes directly:

* **Hop-index VCs** (section 4.3): VC0 on the first hop, VC1 on the
  second, … — the VC index strictly increases along a path, so the
  channel-dependency graph is acyclic whenever ``num_vcs`` covers the
  longest path.
* **Dimension-order + dateline** for meshes and tori: XY routing is
  acyclic per dimension; torus wrap-around rings switch from VC0 to VC1
  at a dateline.
* **UGAL-L / UGAL-G** (section 6): per-packet choice between the minimal
  path and a Valiant detour through a random intermediate router, using
  local or global queue estimates.
* **Deflection** (BLESS/CHIPPER-family, adapted to the frozen-route
  model): when the minimal route's first hop is congested, misroute to
  the least-loaded neighbor and continue minimally from there.

Adaptive schemes observe congestion through a :class:`QueueOracle`.
Attaching the routing to a :class:`~repro.sim.NoCSimulator` installs
the simulator itself as the oracle (live credit/occupancy state at
injection time); without one, the default :class:`ZeroQueues` oracle
makes every adaptive scheme silently degenerate to minimal routing —
the first route computed that way logs a one-line warning on
``repro.routing``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..obs.logs import get_logger
from ..topos.base import Topology
from ..topos.grids import Torus2D, _GridTopology
from .paths import MinimalPaths

_log = get_logger("repro.routing")


@dataclass(frozen=True)
class Route:
    """A fully resolved route: routers visited and the VC used on each hop."""

    path: tuple[int, ...]
    vcs: tuple[int, ...]

    def __post_init__(self):
        if len(self.vcs) != max(len(self.path) - 1, 0):
            raise ValueError("need exactly one VC per link hop")

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class QueueOracle(ABC):
    """Congestion feedback interface the simulator exposes to UGAL."""

    @abstractmethod
    def output_queue(self, router: int, neighbor: int) -> int:
        """Flits queued at ``router`` for its channel toward ``neighbor``."""


class ZeroQueues(QueueOracle):
    """No-congestion oracle: makes UGAL degrade to minimal routing."""

    def output_queue(self, router: int, neighbor: int) -> int:
        return 0


class RoutingAlgorithm(ABC):
    """Base class; subclasses fill :meth:`route`."""

    name = "routing"

    def __init__(self, topology: Topology, num_vcs: int = 2):
        self.topology = topology
        self.num_vcs = num_vcs
        self.minimal = MinimalPaths(topology)

    @abstractmethod
    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        """Compute the route for one packet (routers, VC schedule)."""

    def _ascending_vcs(self, path: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(min(h, self.num_vcs - 1) for h in range(len(path) - 1))

    def _warn_if_zero_oracle(self) -> None:
        """One-line warning the first time an adaptive scheme routes with
        the degenerate :class:`ZeroQueues` oracle (exact type only —
        custom oracles that *subclass* it are deliberate and stay quiet).
        """
        if getattr(self, "_zero_oracle_warned", False):
            return
        if type(getattr(self, "oracle", None)) is ZeroQueues:
            self._zero_oracle_warned = True
            _log.warning(
                "%s routing has no congestion feedback (ZeroQueues oracle) "
                "and degenerates to minimal routing; attach it to a "
                "NoCSimulator or set a QueueOracle for live state",
                self.name,
            )


class StaticMinimalRouting(RoutingAlgorithm):
    """The paper's default: deterministic shortest paths, hop-index VCs.

    Deadlock-free when ``num_vcs >= diameter`` (SN and FBF need just 2).
    """

    name = "min"

    def __init__(
        self, topology: Topology, num_vcs: int = 2, enforce_vc_cover: bool = True
    ):
        super().__init__(topology, num_vcs)
        if enforce_vc_cover and topology.diameter > num_vcs:
            raise ValueError(
                f"hop-index VC scheme needs num_vcs >= diameter "
                f"({topology.diameter}); got {num_vcs}"
            )
        # Routes are frozen and per-pair deterministic, so one Route
        # object can serve every packet of a (src, dst) pair — the
        # simulator calls route() once per injected packet.
        self._route_cache: dict[tuple[int, int], Route] = {}

    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        cached = self._route_cache.get((src, dst))
        if cached is None:
            path = self.minimal.path(src, dst)
            cached = Route(path, self._ascending_vcs(path))
            self._route_cache[(src, dst)] = cached
        return cached


class DimensionOrderRouting(RoutingAlgorithm):
    """XY routing for meshes and tori (dateline VCs on wrap rings).

    Packets finish all X hops before any Y hop.  On a torus, each
    dimension's ring is broken by a dateline: a packet starts on VC0 and
    moves to VC1 after crossing the wrap-around link of the current
    dimension, which removes the ring's cyclic dependency.
    """

    name = "xy"

    def __init__(self, topology: _GridTopology, num_vcs: int = 2):
        if not isinstance(topology, _GridTopology):
            raise TypeError("dimension-order routing needs a grid topology")
        if isinstance(topology, Torus2D) and num_vcs < 2:
            raise ValueError("torus dateline scheme needs >= 2 VCs")
        super().__init__(topology, num_vcs)
        self.is_torus = isinstance(topology, Torus2D)
        self._route_cache: dict[tuple[int, int], Route] = {}

    def _steps(self, frm: int, to: int, size: int) -> list[int]:
        """Per-dimension coordinate sequence (minimal, wrap-aware on torus)."""
        if frm == to:
            return [frm]
        if not self.is_torus:
            step = 1 if to > frm else -1
            return list(range(frm, to + step, step))
        forward = (to - frm) % size
        backward = (frm - to) % size
        step = 1 if forward <= backward else -1
        seq = [frm]
        while seq[-1] != to:
            seq.append((seq[-1] + step) % size)
        return seq

    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        grid: _GridTopology = self.topology  # type: ignore[assignment]
        sx, sy = grid.position_of(src)
        dx, dy = grid.position_of(dst)
        xs = self._steps(sx, dx, grid.cols)
        ys = self._steps(sy, dy, grid.rows)
        path = [grid.router_at(x, sy) for x in xs]
        path += [grid.router_at(dx, y) for y in ys[1:]]
        route = Route(tuple(path), tuple(self._vc_schedule(path, grid, dx, sy)))
        self._route_cache[(src, dst)] = route
        return route

    def _vc_schedule(
        self, path: list[int], grid: _GridTopology, dx: int, sy: int
    ) -> list[int]:
        """Dateline VCs: start on VC0, move to VC1 at the wrap link of the
        current dimension's ring; reset when turning from X into Y (the two
        rings are independent under XY ordering)."""
        vcs = []
        vc = 0
        prev = grid.position_of(path[0])
        for router in path[1:]:
            cur = grid.position_of(router)
            turning_into_y = cur[1] != prev[1] and prev == (dx, sy)
            if turning_into_y:
                vc = 0
            if self.is_torus and self._crossed_wrap(prev, cur):
                vc = 1  # this hop is the dateline (wrap) link
            vcs.append(vc)
            prev = cur
        return vcs

    @staticmethod
    def _crossed_wrap(prev: tuple[int, int], cur: tuple[int, int]) -> bool:
        return abs(cur[0] - prev[0]) > 1 or abs(cur[1] - prev[1]) > 1


class ValiantRouting(RoutingAlgorithm):
    """Two-phase randomized routing: minimal to a random intermediate, then
    minimal to the destination.  The non-minimal arm of UGAL."""

    name = "val"

    def __init__(self, topology: Topology, num_vcs: int = 4, seed: int = 0):
        super().__init__(topology, num_vcs)
        self._rng = random.Random(seed)

    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        intermediate = self._rng.randrange(self.topology.num_routers)
        first = self.minimal.path(src, intermediate)
        second = self.minimal.path(intermediate, dst)
        path = first + second[1:]
        return Route(path, self._ascending_vcs(path))


class UGALRouting(RoutingAlgorithm):
    """UGAL-L / UGAL-G (paper section 6, Figure 20).

    Per packet, compare the minimal path against one random Valiant
    candidate using estimated delay ``hops * (queue + 1)``:

    * local (UGAL-L): only the source router's output-queue lengths are
      visible — the queue on each candidate's first hop.
    * global (UGAL-G): queue lengths along the *whole* candidate path.
    """

    def __init__(
        self,
        topology: Topology,
        num_vcs: int = 4,
        global_info: bool = False,
        oracle: QueueOracle | None = None,
        seed: int = 0,
    ):
        super().__init__(topology, num_vcs)
        self.global_info = global_info
        self.oracle = oracle if oracle is not None else ZeroQueues()
        self.name = "ugal-g" if global_info else "ugal-l"
        self._rng = random.Random(seed)

    def _path_cost(self, path: tuple[int, ...]) -> float:
        hops = len(path) - 1
        if hops == 0:
            return 0.0
        if self.global_info:
            queued = sum(self.oracle.output_queue(a, b) for a, b in zip(path, path[1:]))
        else:
            queued = hops * self.oracle.output_queue(path[0], path[1])
        return hops + queued

    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        self._warn_if_zero_oracle()
        minimal_path = self.minimal.path(src, dst)
        if src == dst:
            return Route(minimal_path, ())
        intermediate = self._rng.randrange(self.topology.num_routers)
        valiant_path = self.minimal.path(src, intermediate) + self.minimal.path(
            intermediate, dst
        )[1:]
        chosen = (
            valiant_path
            if self._path_cost(valiant_path) < self._path_cost(minimal_path)
            else minimal_path
        )
        if len(chosen) - 1 > self.num_vcs:
            chosen = minimal_path  # VC schedule must stay ascending
        return Route(chosen, self._ascending_vcs(chosen))


class XYAdaptiveRouting(RoutingAlgorithm):
    """FBF's XY-ADAPT (Kim et al.): adaptively pick row-first or
    column-first among the two minimal L-paths by first-hop queue length."""

    name = "xy-adapt"

    def __init__(
        self,
        topology: _GridTopology,
        num_vcs: int = 2,
        oracle: QueueOracle | None = None,
    ):
        if not isinstance(topology, _GridTopology):
            raise TypeError("XY-adaptive routing needs a grid topology")
        super().__init__(topology, num_vcs)
        self.oracle = oracle if oracle is not None else ZeroQueues()

    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        self._warn_if_zero_oracle()
        grid: _GridTopology = self.topology  # type: ignore[assignment]
        sx, sy = grid.position_of(src)
        dx, dy = grid.position_of(dst)
        if src == dst:
            return Route((src,), ())
        if sx == dx or sy == dy:
            path = self.minimal.path(src, dst)
            return Route(path, self._ascending_vcs(path))
        row_first = (src, grid.router_at(dx, sy), dst)
        col_first = (src, grid.router_at(sx, dy), dst)
        cost_row = self.oracle.output_queue(src, row_first[1])
        cost_col = self.oracle.output_queue(src, col_first[1])
        path = row_first if cost_row <= cost_col else col_first
        return Route(path, self._ascending_vcs(path))


class DeflectionRouting(RoutingAlgorithm):
    """Deflection routing adapted to the frozen-route model.

    Per-hop deflection (BLESS, CHIPPER) re-arbitrates a flit at every
    router; this simulator freezes the full route at injection, so the
    deflection decision happens once, at the source: when the minimal
    route's first hop is queued past ``threshold``, the packet is
    misrouted to the least-loaded neighbor and continues minimally from
    there.  Deflection only ever *lengthens* a path — the flit keeps its
    buffered, credit-flow-controlled route and is never dropped (pinned
    by a conservation property test).

    ``num_vcs`` defaults to ``diameter + 1`` so a one-hop deflection
    always has an ascending VC schedule; candidates whose detour would
    exceed the VC budget are skipped, falling back to minimal.
    """

    name = "deflect"

    def __init__(
        self,
        topology: Topology,
        num_vcs: int | None = None,
        oracle: QueueOracle | None = None,
        threshold: int = 0,
    ):
        super().__init__(topology, num_vcs or topology.diameter + 1)
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.oracle = oracle if oracle is not None else ZeroQueues()
        self.threshold = threshold

    def route(self, src: int, dst: int, packet_id: int = 0) -> Route:
        self._warn_if_zero_oracle()
        minimal_path = self.minimal.path(src, dst)
        if src == dst:
            return Route(minimal_path, ())
        first_queue = self.oracle.output_queue(src, minimal_path[1])
        if first_queue <= self.threshold:
            return Route(minimal_path, self._ascending_vcs(minimal_path))
        best = minimal_path
        # Hops break occupancy ties, neighbor index breaks hop ties —
        # fully deterministic for a given oracle state.
        best_key = (first_queue, len(minimal_path), minimal_path[1])
        for neighbor in sorted(self.topology.router_neighbors(src)):
            if neighbor == minimal_path[1]:
                continue
            candidate = (src,) + self.minimal.path(neighbor, dst)
            if len(candidate) - 1 > self.num_vcs:
                continue  # VC schedule must stay ascending
            key = (self.oracle.output_queue(src, neighbor), len(candidate), neighbor)
            if key < best_key:
                best, best_key = candidate, key
        return Route(best, self._ascending_vcs(best))
