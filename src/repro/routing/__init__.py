"""Routing: minimal tables, deadlock-free VC schedules, adaptive UGAL."""

from .algorithms import (
    DeflectionRouting,
    DimensionOrderRouting,
    QueueOracle,
    Route,
    RoutingAlgorithm,
    StaticMinimalRouting,
    UGALRouting,
    ValiantRouting,
    XYAdaptiveRouting,
    ZeroQueues,
)
from .paths import MinimalPaths

__all__ = [
    "MinimalPaths",
    "Route",
    "RoutingAlgorithm",
    "StaticMinimalRouting",
    "DimensionOrderRouting",
    "ValiantRouting",
    "UGALRouting",
    "XYAdaptiveRouting",
    "DeflectionRouting",
    "QueueOracle",
    "ZeroQueues",
]


def default_routing(topology, num_vcs: int | None = None) -> RoutingAlgorithm:
    """The paper's default router for a topology.

    Grid networks (mesh/torus) use dimension-order XY with dateline VCs;
    everything else uses deterministic minimal routing with hop-index VCs
    sized to the diameter (2 for SN and FBF, up to 4 for PFBF).
    """
    from ..topos.grids import _GridTopology

    if isinstance(topology, _GridTopology) and not _has_express_links(topology):
        return DimensionOrderRouting(topology, num_vcs=num_vcs or 2)
    vcs = num_vcs if num_vcs is not None else max(2, topology.diameter)
    return StaticMinimalRouting(topology, num_vcs=vcs)


def _has_express_links(topology) -> bool:
    """FBF/PFBF are grid-shaped but have non-neighbor links."""
    for i, j in topology.edges():
        xi, yi = topology.coordinates[i]
        xj, yj = topology.coordinates[j]
        if abs(xi - xj) + abs(yi - yj) > 1 and not _is_wrap(topology, i, j):
            return True
    return False


def _is_wrap(topology, i: int, j: int) -> bool:
    from ..topos.grids import Torus2D

    if not isinstance(topology, Torus2D):
        return False
    xi, yi = topology.position_of(i)
    xj, yj = topology.position_of(j)
    dx, dy = abs(xi - xj), abs(yi - yj)
    return dx in (0, topology.cols - 1) and dy in (0, topology.rows - 1)
