"""Timing harness for the simulator hot path (``python -m repro perf``).

Runs a fixed matrix of sub-saturation sweep points straight through
:class:`~repro.sim.NoCSimulator` (no engine, no cache — this measures the
core, not the orchestration) and reports **simulated cycles per wall
second**, the metric the ROADMAP tracks across PRs.  Results are written
to ``BENCH_sim_core.json``; the committed copy under ``benchmarks/`` is
the perf baseline that CI's perf-smoke job guards (>30% regression on the
quick workload fails the build).  The baseline file also embeds the
pre-optimization (lockstep-core) reference numbers measured with the same
methodology, so every run prints its standing against both.

With ``--batch`` the harness instead races the NumPy lockstep kernel
(:mod:`repro.sim.batch`) against the scalar core on one shape-compatible
lane grid, proves the results bit-identical, and writes the speedup table
to ``BENCH_sim_batch.json``.  Batch timings use ``time.process_time``
(the lockstep kernel's wall clock is noisy under CI schedulers; CPU time
is what the speedup claim is about).

Usage::

    python -m repro perf                 # full workload, write + compare
    python -m repro perf --quick         # CI-sized workload
    python -m repro perf --check         # exit 1 on >30% regression
    python -m repro perf --batch         # lockstep kernel vs scalar core
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from pathlib import Path

from .obs import default_calibration, get_logger
from .obs.metrics import REGISTRY
from .sim import NoCSimulator, SimConfig, cbr, el_links
from .topos import make_network
from .traffic import SyntheticSource

SCHEMA_VERSION = 1

_log = get_logger("perf")

#: Best-of wall seconds per harness case, labelled by case name — the
#: perf run's timings land in the same registry campaign metrics use, so
#: one ``/metrics`` scrape covers both.
PERF_CASE_SECONDS = REGISTRY.histogram(
    "repro_perf_case_seconds",
    "Best-of wall seconds per simulator-core perf case.",
    labelnames=("case",),
)

#: Committed baseline this run is compared against (repo checkout layout).
BASELINE_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_sim_core.json"
)

#: Committed batch-tier report (``--batch`` output).
BATCH_BASELINE_PATH = BASELINE_PATH.with_name("BENCH_sim_batch.json")

_CONFIGS = {
    "eb": SimConfig,
    "eb-smart": lambda: SimConfig().with_smart(),
    "el": el_links,
    "cbr12": lambda: cbr(12),
}

#: name -> (topology, pattern, load, config key, seed, warmup, measure, drain).
#: All points sit below saturation — exactly where figure campaigns spend
#: their time and where activity tracking pays off.  0.008 is the first
#: entry of the benchmarks' FIGURE_LOADS; 0.10 is the densest point here.
WORKLOADS: dict[str, dict[str, tuple]] = {
    "full": {
        "sn200-rnd-0.008-eb": ("sn200", "RND", 0.008, "eb", 1, 200, 500, 1200),
        "sn200-rnd-0.02-eb": ("sn200", "RND", 0.02, "eb", 1, 200, 500, 1200),
        "sn200-rnd-0.06-eb": ("sn200", "RND", 0.06, "eb", 1, 200, 500, 1200),
        "sn200-rnd-0.10-eb": ("sn200", "RND", 0.10, "eb", 1, 200, 500, 1200),
        "sn200-adv2-0.06-eb": ("sn200", "ADV2", 0.06, "eb", 1, 200, 500, 1200),
        "sn200-rnd-0.06-smart": ("sn200", "RND", 0.06, "eb-smart", 1, 200, 500, 1200),
        "sn200-rnd-0.06-el": ("sn200", "RND", 0.06, "el", 1, 200, 500, 1200),
        "sn200-rnd-0.06-cbr": ("sn200", "RND", 0.06, "cbr12", 1, 200, 500, 1200),
    },
    "quick": {
        "sn54-rnd-0.02-eb": ("sn54", "RND", 0.02, "eb", 1, 100, 250, 600),
        "sn54-rnd-0.08-eb": ("sn54", "RND", 0.08, "eb", 1, 100, 250, 600),
        "sn54-rnd-0.08-el": ("sn54", "RND", 0.08, "el", 1, 100, 250, 600),
    },
}


#: ``--batch`` lane grids: every lane shares topology/config/routing and
#: cycle windows (the lockstep shape), differing only in load and seed.
#: Loads sit below saturation — where figure campaigns spend their time
#: and where the scalar core is event-sparse, i.e. the *hardest* regime
#: for a fixed-cost-per-cycle vectorized kernel to win in.
BATCH_WORKLOADS: dict[str, dict] = {
    "full": {
        "topology": "sn200",
        "pattern": "RND",
        "loads": [0.05, 0.08, 0.10, 0.12],
        "seeds": [1, 2, 3, 4, 5, 6],
        "packet_flits": 6,
        "warmup": 200,
        "measure": 500,
        "drain": 1200,
    },
    "quick": {
        "topology": "sn54",
        "pattern": "RND",
        "loads": [0.02, 0.05, 0.08],
        "seeds": [1, 2],
        "packet_flits": 6,
        "warmup": 100,
        "measure": 250,
        "drain": 600,
    },
}


def run_batch_workload(mode: str, repeats: int = 2) -> dict:
    """Race the lockstep kernel against the scalar core on one lane grid.

    Returns the serializable report.  Raises :class:`RuntimeError` when
    any lane's batch result is not bit-identical to the scalar core's —
    a fast kernel with wrong answers is not a speedup.
    """
    from .engine.spec import build_routing
    from .sim import SimResult
    from .sim.batch import BatchLane, require_numpy, simulate_batch

    require_numpy()
    spec = BATCH_WORKLOADS[mode]
    topology = make_network(spec["topology"])
    routing = build_routing("default", topology)
    config = SimConfig()
    windows = {k: spec[k] for k in ("warmup", "measure", "drain")}
    lanes = [
        BatchLane(
            pattern=spec["pattern"],
            load=load,
            packet_flits=spec["packet_flits"],
            seed=seed,
        )
        for seed in spec["seeds"]
        for load in spec["loads"]
    ]

    batch_seconds = None
    batch_results: list[SimResult] = []
    for _ in range(repeats):
        start = time.process_time()
        batch_results = simulate_batch(topology, config, routing, lanes, **windows)
        elapsed = time.process_time() - start
        if batch_seconds is None or elapsed < batch_seconds:
            batch_seconds = elapsed

    lane_rows = []
    scalar_seconds = 0.0
    total_cycles = 0
    identical = True
    for lane, batched in zip(lanes, batch_results):
        # Time construction too: the engine's scalar path builds the
        # simulator and source per spec, and the batch figure above
        # likewise includes the kernel's own array/packet build.
        start = time.process_time()
        sim = NoCSimulator(topology, config, seed=lane.seed, routing=routing)
        source = SyntheticSource(
            topology, lane.pattern, lane.load, lane.packet_flits, seed=lane.seed
        )
        raw = sim.run(source, **windows)
        lane_seconds = time.process_time() - start
        scalar = SimResult.from_dict(raw.to_dict())
        same = json.dumps(scalar.to_dict(), sort_keys=True) == json.dumps(
            batched.to_dict(), sort_keys=True
        )
        identical = identical and same
        scalar_seconds += lane_seconds
        total_cycles += scalar.cycles
        lane_rows.append(
            {
                "load": lane.load,
                "seed": lane.seed,
                "cycles": scalar.cycles,
                "scalar_seconds": round(lane_seconds, 6),
                "bit_identical": same,
            }
        )
    if not identical:
        bad = [r for r in lane_rows if not r["bit_identical"]]
        raise RuntimeError(
            f"batch kernel diverged from the scalar core on {len(bad)} "
            f"lane(s): {bad[:3]}"
        )

    return {
        "topology": spec["topology"],
        "pattern": spec["pattern"],
        "packet_flits": spec["packet_flits"],
        **windows,
        "lane_count": len(lanes),
        "lanes": lane_rows,
        "total_cycles": total_cycles,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "scalar_cycles_per_sec": round(total_cycles / scalar_seconds, 1),
        "batch_cycles_per_sec": round(total_cycles / batch_seconds, 1),
        "speedup": round(scalar_seconds / batch_seconds, 3),
        "bit_identical": True,
        "calibration_ops_per_sec": calibrate(),
    }


def calibrate(repeats: int = 3) -> float:
    """Machine-speed yardstick: interpreted-Python ops/sec on a fixed
    arithmetic + dict workload (~20 ms), best of ``repeats``.

    The regression gate runs on whatever machine CI hands it, which can
    legitimately differ from the baseline host by far more than any real
    code regression.  Dividing cycles/sec by this calibration number on
    both sides turns the comparison into a machine-relative one, so the
    gate tracks the code, not the runner.
    """
    best = None
    for _ in range(repeats):
        counters: dict[int, int] = {}
        start = time.perf_counter()
        total = 0
        for i in range(120_000):
            total += i * i
            if not i % 7:
                counters[i & 1023] = total
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return round(120_000 / best, 1)


def time_case(case: tuple, repeats: int = 2) -> dict:
    """Best-of-``repeats`` wall time for one sweep point."""
    topo_sym, pattern, load, cfg, seed, warmup, measure, drain = case
    topology = make_network(topo_sym)
    best, cycles, delivered = None, 0, 0
    for _ in range(repeats):
        sim = NoCSimulator(topology, _CONFIGS[cfg](), seed=seed)
        source = SyntheticSource(topology, pattern, load)
        start = time.perf_counter()
        result = sim.run(source, warmup=warmup, measure=measure, drain=drain)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        cycles, delivered = result.cycles, result.delivered_packets
    return {
        "cycles": cycles,
        "delivered_packets": delivered,
        "seconds": round(best, 6),
        "cycles_per_sec": round(cycles / best, 1),
    }


def run_workload(mode: str, repeats: int = 2) -> dict:
    """Time every case of ``mode``; returns the serializable report."""
    cases = {}
    total_cycles = 0.0
    total_seconds = 0.0
    for name, case in WORKLOADS[mode].items():
        cases[name] = time_case(case, repeats=repeats)
        PERF_CASE_SECONDS.labels(case=name).observe(cases[name]["seconds"])
        total_cycles += cases[name]["cycles"]
        total_seconds += cases[name]["seconds"]
    return {
        "cases": cases,
        "total_cycles": int(total_cycles),
        "total_seconds": round(total_seconds, 6),
        "cycles_per_sec": round(total_cycles / total_seconds, 1),
        "calibration_ops_per_sec": calibrate(),
    }


def feed_cost_calibration(mode: str, report: dict) -> int:
    """Fold a perf run's measured seconds into the cost-calibration table.

    Each case is a known (topology, load, cycle-budget) point with a
    fresh wall-seconds measurement — exactly what the campaign layer's
    ETA and ``--shard-balance cost`` read back.  Saves the table when
    anything changed; returns the number of cases folded in.
    """
    calibration = default_calibration()
    nodes_by_symbol: dict[str, int] = {}
    fed = 0
    for name, case in WORKLOADS.get(mode, {}).items():
        measured = report["cases"].get(name)
        if not measured or not measured.get("seconds"):
            continue
        symbol, _pattern, load, _cfg, _seed, warmup, measure, drain = case
        num_nodes = nodes_by_symbol.get(symbol)
        if num_nodes is None:
            num_nodes = make_network(symbol).num_nodes
            nodes_by_symbol[symbol] = num_nodes
        calibration.observe(
            num_nodes, warmup + measure + drain, load, float(measured["seconds"])
        )
        fed += 1
    if calibration.dirty:
        try:
            path = calibration.save()
        except OSError as exc:
            _log.warning("could not save the cost-calibration table: %s", exc)
        else:
            _log.debug("updated cost calibration at %s", path)
    return fed


def load_report(path: Path) -> dict | None:
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def merge_report(path: Path, mode: str, report: dict) -> dict:
    """Write ``report`` under ``modes[mode]``, preserving other modes and
    any embedded pre-PR reference."""
    payload = load_report(path) or {"schema": SCHEMA_VERSION, "modes": {}}
    payload["schema"] = SCHEMA_VERSION
    payload["host"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    payload.setdefault("modes", {})[mode] = report
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def speedup_against(
    report: dict, reference_mode: dict, normalize: bool = False
) -> tuple[float, float]:
    """(time-weighted total ratio, per-case geometric-mean ratio).

    With ``normalize=True`` both sides are divided by their recorded
    machine calibration (when present), so the ratio compares the code
    rather than the hosts — this is what the regression gate uses.
    """
    scale = 1.0
    if normalize:
        mine = report.get("calibration_ops_per_sec")
        theirs = reference_mode.get("calibration_ops_per_sec")
        if mine and theirs:
            scale = theirs / mine
    total = scale * report["cycles_per_sec"] / reference_mode["cycles_per_sec"]
    ratios = []
    reference_cases = reference_mode.get("cases", {})
    for name, case in report["cases"].items():
        ref = reference_cases.get(name)
        if ref:
            ratios.append(scale * case["cycles_per_sec"] / ref["cycles_per_sec"])
    if not ratios:
        return total, total
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return total, geomean


def _main_batch(args, mode: str) -> int:
    """The ``--batch`` surface: lockstep kernel vs scalar core."""
    from .sim.batch import BatchUnavailableError

    try:
        report = run_batch_workload(mode, repeats=args.repeats)
    except BatchUnavailableError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 2

    print(
        f"batch tier perf — {mode} lane grid "
        f"({report['topology']}, {report['pattern']}, "
        f"{report['lane_count']} lanes, best of {args.repeats})"
    )
    for row in report["lanes"]:
        print(
            f"  load={row['load']:<5} seed={row['seed']:<2} "
            f"{row['cycles']:>6} cyc  scalar {row['scalar_seconds']*1e3:>8.1f} ms"
        )
    print(
        f"  scalar: {report['scalar_seconds']*1e3:>9.1f} ms  "
        f"{report['scalar_cycles_per_sec']:>12,.0f} cyc/s"
    )
    print(
        f"  batch:  {report['batch_seconds']*1e3:>9.1f} ms  "
        f"{report['batch_cycles_per_sec']:>12,.0f} cyc/s"
    )
    print(f"  speedup: {report['speedup']:.2f}x (bit-identical)")

    output = Path(args.output)
    if output.name == "BENCH_sim_core.json":
        output = output.with_name("BENCH_sim_batch.json")
    merge_report(output, mode, report)
    print(f"wrote {output}")

    if args.check and report["speedup"] < 1.0:
        print(
            f"FAIL: batch tier slower than the scalar core "
            f"({report['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload (sn54) instead of sn200",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="benchmark the NumPy lockstep kernel against the scalar "
        "core (writes BENCH_sim_batch.json; needs numpy)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repeats per case, best-of (default 2)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sim_core.json",
        help="report path (default ./BENCH_sim_core.json)",
    )
    parser.add_argument(
        "--baseline",
        default=str(BASELINE_PATH),
        help="committed baseline to compare against",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if total cycles/sec regresses beyond "
        "--max-regression vs the baseline",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated fractional slowdown (default 0.30)",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    if args.batch:
        return _main_batch(args, mode)
    report = run_workload(mode, repeats=args.repeats)

    width = max(len(name) for name in report["cases"])
    print(f"simulator core perf — {mode} workload (best of {args.repeats})")
    for name, case in report["cases"].items():
        print(
            f"  {name:<{width}}  {case['cycles']:>6} cyc "
            f"{case['seconds']*1e3:>9.1f} ms  "
            f"{case['cycles_per_sec']:>12,.0f} cyc/s"
        )
    print(
        f"  {'TOTAL':<{width}}  {report['total_cycles']:>6} cyc "
        f"{report['total_seconds']*1e3:>9.1f} ms  "
        f"{report['cycles_per_sec']:>12,.0f} cyc/s"
    )

    merge_report(Path(args.output), mode, report)
    print(f"wrote {args.output}")
    feed_cost_calibration(mode, report)

    baseline = load_report(Path(args.baseline))
    gate_ratio = None
    if baseline and mode in baseline.get("modes", {}):
        base_mode = baseline["modes"][mode]
        total_ratio, geomean = speedup_against(report, base_mode)
        gate_ratio, gate_geo = speedup_against(report, base_mode, normalize=True)
        print(
            f"vs committed baseline: {total_ratio:.2f}x total, "
            f"{geomean:.2f}x per-case geomean "
            f"({gate_ratio:.2f}x / {gate_geo:.2f}x machine-normalized)"
        )
    else:
        print(f"vs committed baseline: none for mode {mode!r}")
    reference = (baseline or {}).get("reference_pre_pr", {}).get("modes", {})
    if mode in reference:
        ref_total, ref_geo = speedup_against(report, reference[mode])
        print(
            f"vs pre-optimization lockstep core: {ref_total:.2f}x total, "
            f"{ref_geo:.2f}x per-case geomean"
        )

    if args.check:
        if gate_ratio is None:
            # A gate with nothing to compare against must fail loudly, not
            # silently pass — this is the whole point of CI's perf-smoke.
            print(
                f"FAIL: --check requires a committed baseline for mode "
                f"{mode!r} at {args.baseline}",
                file=sys.stderr,
            )
            return 2
        if gate_ratio < 1.0 - args.max_regression:
            print(
                f"FAIL: machine-normalized regression {gate_ratio:.2f}x is "
                f"beyond {args.max_regression:.0%}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
