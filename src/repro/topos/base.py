"""Common topology abstraction shared by Slim NoC and all baselines.

A :class:`Topology` is a set of routers with physical 2D grid coordinates,
router-router links, and a uniform *concentration* ``p`` (nodes per router).
Everything downstream — placement/cost models, the cycle-accurate
simulator, and the area/power models — consumes this interface, so the
paper's comparisons (Table 4) are apples-to-apples by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from functools import cached_property

Coordinate = tuple[int, int]


class Topology(ABC):
    """Abstract direct network: routers + links + attached nodes.

    Concrete subclasses define :meth:`_build_adjacency` and
    :meth:`_build_coordinates`; the base class provides validated, cached
    derived quantities (diameter, hop distances, bisection, …).
    """

    #: Short identifier used in result tables (e.g. ``"sn_subgr"``, ``"fbf3"``).
    name: str = "topology"

    def __init__(self, concentration: int):
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self._concentration = concentration

    # -- subclass responsibilities ----------------------------------------

    @abstractmethod
    def _build_adjacency(self) -> list[tuple[int, ...]]:
        """Neighbor lists, one tuple per router."""

    @abstractmethod
    def _build_coordinates(self) -> dict[int, Coordinate]:
        """1-based (x, y) grid coordinates, one per router."""

    # -- sizes -------------------------------------------------------------

    @property
    def concentration(self) -> int:
        """Nodes attached to each router (the paper's ``p``)."""
        return self._concentration

    @cached_property
    def adjacency(self) -> list[tuple[int, ...]]:
        adj = self._build_adjacency()
        for router, neighbors in enumerate(adj):
            if router in neighbors:
                raise ValueError(f"router {router} has a self-loop")
            if len(set(neighbors)) != len(neighbors):
                raise ValueError(f"router {router} has duplicate links")
            for neighbor in neighbors:
                if router not in adj[neighbor]:
                    raise ValueError(f"link {router}->{neighbor} is not symmetric")
        return adj

    @property
    def num_routers(self) -> int:
        return len(self.adjacency)

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self._concentration

    @property
    def network_radix(self) -> int:
        """Maximum router-router ports, the paper's ``k'``."""
        return max(len(n) for n in self.adjacency)

    @property
    def router_radix(self) -> int:
        """Total ports including node ports, the paper's ``k = k' + p``."""
        return self.network_radix + self._concentration

    # -- nodes ---------------------------------------------------------------

    def node_router(self, node: int) -> int:
        """Router to which ``node`` is attached."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node // self._concentration

    def router_nodes(self, router: int) -> range:
        p = self._concentration
        return range(router * p, (router + 1) * p)

    # -- structure -----------------------------------------------------------

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        return self.adjacency[router]

    def edges(self) -> list[tuple[int, int]]:
        """Undirected links as (i, j) with i < j."""
        return [
            (i, j)
            for i, neighbors in enumerate(self.adjacency)
            for j in neighbors
            if i < j
        ]

    def num_links(self) -> int:
        return sum(len(n) for n in self.adjacency) // 2

    @cached_property
    def coordinates(self) -> dict[int, Coordinate]:
        coords = self._build_coordinates()
        if len(coords) != self.num_routers:
            raise ValueError("coordinates must cover every router")
        if len(set(coords.values())) != len(coords):
            raise ValueError("two routers share a grid slot")
        return coords

    def grid_extent(self) -> tuple[int, int]:
        """(max x, max y) of the router grid."""
        xs = [c[0] for c in self.coordinates.values()]
        ys = [c[1] for c in self.coordinates.values()]
        return max(xs), max(ys)

    def link_length_hops(self, i: int, j: int) -> int:
        """Physical wire length of link (i, j) in router-grid hops."""
        xi, yi = self.coordinates[i]
        xj, yj = self.coordinates[j]
        return abs(xi - xj) + abs(yi - yj)

    def average_wire_length(self) -> float:
        """Mean link length in hops — the paper's ``M`` (Eq. 4)."""
        links = self.edges()
        if not links:
            return 0.0
        return sum(self.link_length_hops(i, j) for i, j in links) / len(links)

    # -- graph metrics ---------------------------------------------------------

    def shortest_hops_from(self, source: int) -> list[int]:
        """BFS hop counts from ``source`` to every router."""
        dist = [-1] * self.num_routers
        dist[source] = 0
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for neighbor in self.adjacency[current]:
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[current] + 1
                    frontier.append(neighbor)
        if any(d < 0 for d in dist):
            raise ValueError("topology is disconnected")
        return dist

    @cached_property
    def diameter(self) -> int:
        return max(max(self.shortest_hops_from(s)) for s in range(self.num_routers))

    def average_hop_distance(self) -> float:
        """Mean router-to-router shortest-path hops."""
        total = 0
        nr = self.num_routers
        for source in range(nr):
            total += sum(self.shortest_hops_from(source))
        return total / (nr * (nr - 1))

    def bisection_links(self) -> int:
        """Links crossing a median cut of the die (minimum over both axes).

        A physical-layout proxy for bisection bandwidth, matching how the
        paper compares FBF/PFBF/SN bandwidths on a die.  Taking the
        minimum over the two cut orientations makes the metric independent
        of how a rectangular die is rotated.
        """
        counts = []
        for axis in (0, 1):
            values = sorted(c[axis] for c in self.coordinates.values())
            median = values[len(values) // 2]
            count = 0
            for i, j in self.edges():
                vi = self.coordinates[i][axis]
                vj = self.coordinates[j][axis]
                if (vi < median) != (vj < median):
                    count += 1
            counts.append(count)
        return min(counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, routers={self.num_routers}, "
            f"nodes={self.num_nodes}, k'={self.network_radix})"
        )
