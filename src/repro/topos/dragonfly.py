"""Balanced Dragonfly (Kim et al., ISCA'08) for the paper's section 2.2 study.

The paper compares a naive on-chip Dragonfly against Slim Fly (Figure 3).
A balanced DF with per-router group size ``a``, global links per router
``h``, and concentration ``p`` uses ``a = 2p = 2h`` and has
``g = a*h + 1`` fully connected groups; every pair of groups is joined by
exactly one global link (diameter 3).
"""

from __future__ import annotations

import math

from .base import Coordinate, Topology


class Dragonfly(Topology):
    """Balanced Dragonfly defined by the global-links-per-router count ``h``.

    Routers per group ``a = 2h``, groups ``g = a*h + 1``, so the network
    has ``a * g`` routers of network radix ``(a - 1) + h``.
    """

    def __init__(self, h: int, concentration: int | None = None, name: str = "df"):
        if h < 1:
            raise ValueError("h must be >= 1")
        self.h = h
        self.group_size = 2 * h
        self.num_groups = self.group_size * h + 1
        super().__init__(concentration if concentration is not None else h)
        self.name = name

    def group_of(self, router: int) -> int:
        return router // self.group_size

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        total = self.group_size * self.num_groups
        adjacency: list[set[int]] = [set() for _ in range(total)]
        for router in range(total):  # intra-group clique
            group = self.group_of(router)
            base = group * self.group_size
            for peer in range(base, base + self.group_size):
                if peer != router:
                    adjacency[router].add(peer)
        # Global links: each group numbers its g-1 peers consecutively
        # (skipping itself); slot s is handled by the group's router s // h.
        # This is the standard consecutive assignment — every group pair
        # gets exactly one link, every router exactly h global links.
        def endpoint(group: int, peer: int) -> int:
            slot = peer if peer < group else peer - 1
            return group * self.group_size + slot // self.h

        for ga in range(self.num_groups):
            for gb in range(ga + 1, self.num_groups):
                router_a = endpoint(ga, gb)
                router_b = endpoint(gb, ga)
                adjacency[router_a].add(router_b)
                adjacency[router_b].add(router_a)
        return [tuple(sorted(n)) for n in adjacency]

    def _build_coordinates(self) -> dict[int, Coordinate]:
        """Groups tiled in a near-square grid; each group is a router row."""
        total = self.group_size * self.num_groups
        group_cols = max(1, math.isqrt(self.num_groups))
        coords = {}
        for router in range(total):
            group = self.group_of(router)
            local = router % self.group_size
            gx, gy = group % group_cols, group // group_cols
            coords[router] = (gx * self.group_size + local + 1, gy + 1)
        return coords
