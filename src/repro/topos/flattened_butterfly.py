"""Flattened Butterfly and the paper's Partitioned FBF.

FBF (Kim, Dally & Abts, ISCA'07) places routers on a grid and fully
connects each row and each column — diameter 2 at the price of very high
radix (``k' = (cols-1) + (rows-1)``).

The paper's PFBF (section 5.1, Figure 9) partitions an FBF into smaller
identical FBFs to match Slim NoC's radix and bisection bandwidth: each
router keeps full row/column connectivity *within* its partition and adds
one port per dimension to the corresponding router of the adjacent
partition.  Diameter grows to 4 while Manhattan distances stay those of
the underlying grid.
"""

from __future__ import annotations

from .grids import _GridTopology


class FlattenedButterfly(_GridTopology):
    """Full-bandwidth FBF: every row and column is a clique (diameter 2)."""

    def __init__(self, cols: int, rows: int, concentration: int, name: str = "fbf"):
        super().__init__(cols, rows, concentration)
        self.name = name

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        adjacency = []
        for router in range(self.cols * self.rows):
            x, y = self.position_of(router)
            row_peers = [self.router_at(ox, y) for ox in range(self.cols) if ox != x]
            col_peers = [self.router_at(x, oy) for oy in range(self.rows) if oy != y]
            adjacency.append(tuple(sorted(row_peers + col_peers)))
        return adjacency


class PartitionedFBF(_GridTopology):
    """PFBF: a grid of FBF partitions with mirror links between neighbors.

    Args:
        part_cols / part_rows: Router grid of one partition.
        grid_cols / grid_rows: How partitions tile the die.
        concentration: Nodes per router.
    """

    def __init__(
        self,
        part_cols: int,
        part_rows: int,
        grid_cols: int,
        grid_rows: int,
        concentration: int,
        name: str = "pfbf",
    ):
        super().__init__(part_cols * grid_cols, part_rows * grid_rows, concentration)
        self.part_cols = part_cols
        self.part_rows = part_rows
        self.grid_cols = grid_cols
        self.grid_rows = grid_rows
        self.name = name

    def partition_of(self, router: int) -> tuple[int, int]:
        """(partition-x, partition-y) of a router."""
        x, y = self.position_of(router)
        return x // self.part_cols, y // self.part_rows

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        adjacency = []
        for router in range(self.cols * self.rows):
            x, y = self.position_of(router)
            px, py = x // self.part_cols, y // self.part_rows
            x0, y0 = px * self.part_cols, py * self.part_rows
            neighbors = set()
            for ox in range(x0, x0 + self.part_cols):  # row clique within partition
                if ox != x:
                    neighbors.add(self.router_at(ox, y))
            for oy in range(y0, y0 + self.part_rows):  # column clique within partition
                if oy != y:
                    neighbors.add(self.router_at(x, oy))
            # Mirror links: the same local position in adjacent partitions.
            local_x, local_y = x - x0, y - y0
            for dpx, dpy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                npx, npy = px + dpx, py + dpy
                if 0 <= npx < self.grid_cols and 0 <= npy < self.grid_rows:
                    neighbors.add(
                        self.router_at(
                            npx * self.part_cols + local_x, npy * self.part_rows + local_y
                        )
                    )
            adjacency.append(tuple(sorted(neighbors)))
        return adjacency
