"""Baseline topologies and the Table 4 configuration catalog."""

from .base import Topology
from .catalog import catalog_symbols, cycle_time_ns, expected_nodes, make_network
from .dragonfly import Dragonfly
from .flattened_butterfly import FlattenedButterfly, PartitionedFBF
from .folded_clos import FoldedClos
from .grids import ConcentratedMesh, Torus2D

__all__ = [
    "Topology",
    "Torus2D",
    "ConcentratedMesh",
    "FlattenedButterfly",
    "PartitionedFBF",
    "Dragonfly",
    "FoldedClos",
    "make_network",
    "catalog_symbols",
    "expected_nodes",
    "cycle_time_ns",
]
