"""Two-level folded Clos (fat tree) — the paper's hierarchical comparison.

Section 5.5 briefly compares Slim NoC against a folded Clos representing
indirect hierarchical NoCs (Kilo-core-style).  Leaf routers host the
nodes; every leaf connects to every spine router.  Spine routers host no
nodes, so this topology overrides the node bookkeeping of the direct-
network base class.
"""

from __future__ import annotations

import math

from .base import Coordinate, Topology


class FoldedClos(Topology):
    """Leaf-spine folded Clos with full leaf-spine connectivity.

    Args:
        leaves: Number of leaf routers (each hosting ``concentration`` nodes).
        spines: Number of spine routers.
        concentration: Nodes per leaf.
    """

    def __init__(self, leaves: int, spines: int, concentration: int, name: str = "clos"):
        if leaves < 2 or spines < 1:
            raise ValueError("need at least 2 leaves and 1 spine")
        super().__init__(concentration)
        self.leaves = leaves
        self.spines = spines
        self.name = name

    @property
    def num_nodes(self) -> int:
        return self.leaves * self.concentration

    def node_router(self, node: int) -> int:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node // self.concentration  # leaves come first

    def router_nodes(self, router: int) -> range:
        if router >= self.leaves:
            return range(0)
        p = self.concentration
        return range(router * p, (router + 1) * p)

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        spine_ids = tuple(range(self.leaves, self.leaves + self.spines))
        leaf_ids = tuple(range(self.leaves))
        return [spine_ids] * self.leaves + [leaf_ids] * self.spines

    def _build_coordinates(self) -> dict[int, Coordinate]:
        """Leaves tile a near-square grid; spines sit on a row above it."""
        cols = max(2, math.isqrt(self.leaves))
        coords: dict[int, Coordinate] = {}
        for leaf in range(self.leaves):
            coords[leaf] = (leaf % cols + 1, leaf // cols + 1)
        leaf_rows = (self.leaves + cols - 1) // cols
        for i in range(self.spines):
            spacing = max(1, cols // max(1, self.spines))
            coords[self.leaves + i] = (i * spacing + 1, leaf_rows + 1)
        return coords
