"""Grid-based low-radix baselines: 2D torus and concentrated mesh.

These are the paper's low-radix comparison points (Table 4: ``t2d*`` and
``cm*``).  Routers sit on a ``cols x rows`` grid, indexed row-major; each
router serves ``p`` nodes.
"""

from __future__ import annotations

from .base import Coordinate, Topology


class _GridTopology(Topology):
    """Shared plumbing for topologies whose routers tile a rectangle."""

    def __init__(self, cols: int, rows: int, concentration: int):
        if cols < 2 or rows < 1:
            raise ValueError("grid must be at least 2x1")
        super().__init__(concentration)
        self.cols = cols
        self.rows = rows

    def router_at(self, x: int, y: int) -> int:
        """Router index at 0-based grid position."""
        return y * self.cols + x

    def position_of(self, router: int) -> tuple[int, int]:
        return router % self.cols, router // self.cols

    def _build_coordinates(self) -> dict[int, Coordinate]:
        return {
            r: (r % self.cols + 1, r // self.cols + 1)
            for r in range(self.cols * self.rows)
        }


class ConcentratedMesh(_GridTopology):
    """2D mesh with concentration (the paper's CM, after Balfour & Dally).

    Diameter is ``cols + rows - 2``; network radix 4 (interior routers).
    """

    def __init__(self, cols: int, rows: int, concentration: int, name: str = "cm"):
        super().__init__(cols, rows, concentration)
        self.name = name

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        adjacency = []
        for router in range(self.cols * self.rows):
            x, y = self.position_of(router)
            neighbors = []
            if x > 0:
                neighbors.append(self.router_at(x - 1, y))
            if x < self.cols - 1:
                neighbors.append(self.router_at(x + 1, y))
            if y > 0:
                neighbors.append(self.router_at(x, y - 1))
            if y < self.rows - 1:
                neighbors.append(self.router_at(x, y + 1))
            adjacency.append(tuple(neighbors))
        return adjacency


class Torus2D(_GridTopology):
    """2D torus (the paper's T2D).

    Wrap-around links exist in both dimensions.  Physically the torus is
    assumed folded so that every link connects near neighbors; the paper
    treats torus/mesh wires as "mostly single-cycle", so
    :meth:`link_length_hops` reports the ring metric (1 for every link).
    """

    def __init__(self, cols: int, rows: int, concentration: int, name: str = "t2d"):
        if cols < 3 or rows < 3:
            raise ValueError("torus needs at least 3x3 to avoid duplicate links")
        super().__init__(cols, rows, concentration)
        self.name = name

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        adjacency = []
        for router in range(self.cols * self.rows):
            x, y = self.position_of(router)
            neighbors = (
                self.router_at((x - 1) % self.cols, y),
                self.router_at((x + 1) % self.cols, y),
                self.router_at(x, (y - 1) % self.rows),
                self.router_at(x, (y + 1) % self.rows),
            )
            adjacency.append(tuple(sorted(set(neighbors))))
        return adjacency

    def link_length_hops(self, i: int, j: int) -> int:
        """Ring-metric wire length: folded layout keeps all links short."""
        xi, yi = self.position_of(i)
        xj, yj = self.position_of(j)
        dx = min(abs(xi - xj), self.cols - abs(xi - xj))
        dy = min(abs(yi - yj), self.rows - abs(yi - yj))
        return dx + dy
