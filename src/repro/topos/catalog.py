"""The paper's evaluated network configurations (Table 4 + section 5.6).

``make_network`` builds any configuration by its Table 4 symbol
(``t2d3``, ``cm9``, ``fbf4``, ``pfbf8``, …) or the Slim NoC size aliases
(``sn54``, ``sn200``, ``sn1024``, ``sn1296``).  ``cycle_time_ns`` returns
the per-topology router clock the paper assigns to account for crossbar
size (section 5.1).
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.slimnoc import SlimNoC
from .base import Topology
from .dragonfly import Dragonfly
from .flattened_butterfly import FlattenedButterfly, PartitionedFBF
from .folded_clos import FoldedClos
from .grids import ConcentratedMesh, Torus2D

#: Router cycle times per topology family (section 5.1 "Cycle Times").
CYCLE_TIME_NS = {"sn": 0.5, "pfbf": 0.5, "t2d": 0.4, "cm": 0.4, "fbf": 0.6, "df": 0.5, "clos": 0.5}


def cycle_time_ns(name: str) -> float:
    """Cycle time for a catalog symbol (prefix-matched: ``fbf3`` -> ``fbf``)."""
    for prefix in sorted(CYCLE_TIME_NS, key=len, reverse=True):
        if name.startswith(prefix):
            return CYCLE_TIME_NS[prefix]
    raise ValueError(f"no cycle time known for {name!r}")


def _sn(q: int, p: int, layout: str) -> Callable[[], Topology]:
    return lambda: SlimNoC(q, p, layout=layout)


#: Table 4 plus the section 5.6 small-scale (N=54) class.  Each entry maps
#: the paper's symbol to (constructor, node count).
_CATALOG: dict[str, tuple[Callable[[], Topology], int]] = {
    # --- N in {192, 200} -------------------------------------------------
    "t2d3": (lambda: Torus2D(8, 8, 3, name="t2d3"), 192),
    "t2d4": (lambda: Torus2D(10, 5, 4, name="t2d4"), 200),
    "cm3": (lambda: ConcentratedMesh(8, 8, 3, name="cm3"), 192),
    "cm4": (lambda: ConcentratedMesh(10, 5, 4, name="cm4"), 200),
    "fbf3": (lambda: FlattenedButterfly(8, 8, 3, name="fbf3"), 192),
    "fbf4": (lambda: FlattenedButterfly(10, 5, 4, name="fbf4"), 200),
    "pfbf3": (lambda: PartitionedFBF(4, 4, 2, 2, 3, name="pfbf3"), 192),
    "pfbf4": (lambda: PartitionedFBF(5, 5, 2, 1, 4, name="pfbf4"), 200),
    "sn200": (_sn(5, 4, "sn_subgr"), 200),
    # --- N = 1296 ---------------------------------------------------------
    "t2d9": (lambda: Torus2D(12, 12, 9, name="t2d9"), 1296),
    "t2d8": (lambda: Torus2D(18, 9, 8, name="t2d8"), 1296),
    "cm9": (lambda: ConcentratedMesh(12, 12, 9, name="cm9"), 1296),
    "cm8": (lambda: ConcentratedMesh(18, 9, 8, name="cm8"), 1296),
    "fbf9": (lambda: FlattenedButterfly(12, 12, 9, name="fbf9"), 1296),
    "fbf8": (lambda: FlattenedButterfly(18, 9, 8, name="fbf8"), 1296),
    "pfbf9": (lambda: PartitionedFBF(6, 6, 2, 2, 9, name="pfbf9"), 1296),
    "pfbf8": (lambda: PartitionedFBF(9, 9, 2, 1, 8, name="pfbf8"), 1296),
    "sn1296": (_sn(9, 8, "sn_subgr"), 1296),
    # --- N = 1024 (power-of-two design) -----------------------------------
    "sn1024": (_sn(8, 8, "sn_subgr"), 1024),
    # --- N = 54 (section 5.6, KNL-scale) -----------------------------------
    "sn54": (_sn(3, 3, "sn_subgr"), 54),
    # q=3 with the paper's p=4 concentration: 72 nodes over the same
    # 18-router MMS graph as sn54 — the CI-sized adaptive-study network.
    "sn72": (_sn(3, 4, "sn_subgr"), 72),
    "t2d54": (lambda: Torus2D(6, 3, 3, name="t2d54"), 54),
    "cm54": (lambda: ConcentratedMesh(6, 3, 3, name="cm54"), 54),
    "fbf54": (lambda: FlattenedButterfly(6, 3, 3, name="fbf54"), 54),
    "pfbf54": (lambda: PartitionedFBF(3, 3, 2, 1, 3, name="pfbf54"), 54),
    # --- auxiliary comparison points ---------------------------------------
    "df200": (lambda: Dragonfly(2, concentration=6, name="df200"), 216),
    "clos200": (lambda: FoldedClos(50, 10, 4, name="clos200"), 200),
    "clos1296": (lambda: FoldedClos(162, 18, 8, name="clos1296"), 1296),
}


def catalog_symbols() -> list[str]:
    """All known configuration symbols."""
    return sorted(_CATALOG)


def make_network(symbol: str, layout: str | None = None) -> Topology:
    """Build a catalog network; ``layout`` overrides the SN layout."""
    if symbol not in _CATALOG:
        raise ValueError(f"unknown network {symbol!r}; options: {catalog_symbols()}")
    topology = _CATALOG[symbol][0]()
    if layout is not None:
        if not isinstance(topology, SlimNoC):
            raise ValueError(f"{symbol!r} has a fixed layout; only SN accepts one")
        topology = topology.with_layout(layout)
    return topology


def expected_nodes(symbol: str) -> int:
    """The node count the paper lists for a catalog symbol."""
    return _CATALOG[symbol][1]
