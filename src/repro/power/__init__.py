"""Analytical area/power/energy models (DSENT substitution)."""

from .area import AreaReport, crossbar_area_mm2, network_area, router_buffer_flits, total_wire_mm
from .energy import EnergyMetrics, make_metrics, normalize
from .power import PowerReport, average_route_stats, dynamic_power, static_power
from .technology import TECH_22NM, TECH_45NM, Technology, technology, tile_side_mm

__all__ = [
    "Technology",
    "technology",
    "TECH_45NM",
    "TECH_22NM",
    "tile_side_mm",
    "AreaReport",
    "network_area",
    "crossbar_area_mm2",
    "router_buffer_flits",
    "total_wire_mm",
    "PowerReport",
    "static_power",
    "dynamic_power",
    "average_route_stats",
    "EnergyMetrics",
    "make_metrics",
    "normalize",
]
