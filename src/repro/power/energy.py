"""Combined power/performance metrics: throughput-per-power and EDP.

These are the paper's headline metrics (Table 5, Figure 18, Figure 1b/c):

* **throughput/power** — flits delivered per joule: the number of flits
  delivered in a cycle divided by the power consumed during that delivery.
* **energy-delay product** — (static + dynamic energy over the run) times
  the average packet latency, reported normalised to a baseline topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from .power import PowerReport


@dataclass(frozen=True)
class EnergyMetrics:
    """Power/performance summary of one (network, workload) evaluation."""

    throughput_flits_per_cycle: float
    cycle_time_ns: float
    static_power_w: float
    dynamic_power_w: float
    avg_latency_cycles: float

    @property
    def total_power_w(self) -> float:
        return self.static_power_w + self.dynamic_power_w

    @property
    def throughput_per_power(self) -> float:
        """Flits per joule (Table 5's metric)."""
        flits_per_second = self.throughput_flits_per_cycle / (self.cycle_time_ns * 1e-9)
        if self.total_power_w == 0:
            return float("inf")
        return flits_per_second / self.total_power_w

    @property
    def latency_seconds(self) -> float:
        return self.avg_latency_cycles * self.cycle_time_ns * 1e-9

    @property
    def energy_delay_product(self) -> float:
        """Energy per delivered flit x packet delay (J*s) — Figure 18's EDP."""
        flits_per_second = self.throughput_flits_per_cycle / (self.cycle_time_ns * 1e-9)
        if flits_per_second == 0:
            return float("inf")
        energy_per_flit = self.total_power_w / flits_per_second
        return energy_per_flit * self.latency_seconds


def make_metrics(
    throughput_flits_per_cycle: float,
    cycle_time_ns: float,
    static: PowerReport,
    dynamic: PowerReport,
    avg_latency_cycles: float,
) -> EnergyMetrics:
    """Convenience constructor from the power model's reports."""
    return EnergyMetrics(
        throughput_flits_per_cycle=throughput_flits_per_cycle,
        cycle_time_ns=cycle_time_ns,
        static_power_w=static.total,
        dynamic_power_w=dynamic.total,
        avg_latency_cycles=avg_latency_cycles,
    )


def normalize(values: dict[str, float], baseline: str) -> dict[str, float]:
    """Divide every entry by the baseline's value (Figure 18 style)."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from values")
    base = values[baseline]
    return {name: value / base for name, value in values.items()}
