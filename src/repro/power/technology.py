"""Technology parameters for the analytical area/power model.

This replaces the DSENT tool (see DESIGN.md substitutions).  Constants are
calibrated to DSENT-era published numbers for 128-bit NoC routers:

* 45 nm, 1.0 V: SRAM cell ~1 um^2/bit with periphery, crossbar wire pitch
  ~250 nm/bit-line, router dynamic energy ~0.1 pJ/bit per buffer access,
  wire energy ~0.1 pJ/bit/mm, repeated-wire leakage ~0.5 mW/mm per
  128-bit link.
* 22 nm, 0.8 V: logic/SRAM area scales ~(22/45)^2, dynamic energy by
  ~V^2 * C; wires scale *less* than logic (the paper's observation that
  "wires use relatively more area and power in 22nm").

Absolute watts are approximations; every paper comparison we reproduce is
a *ratio* between topologies evaluated under the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """One process node's constants (all per-bit / per-mm / per-mm^2)."""

    name: str
    feature_nm: int
    voltage: float
    core_area_mm2: float
    #: Area
    sram_bit_area_mm2: float
    xbar_pitch_mm: float  # crossbar bit-line pitch
    wire_pitch_mm: float  # link wire pitch on intermediate/global metal
    allocator_area_mm2_per_port2: float
    #: Static power
    sram_bit_leakage_w: float
    xbar_leakage_w_per_mm2: float
    wire_leakage_w_per_mm: float  # per 128-bit repeated link
    allocator_leakage_w_per_mm2: float
    #: Dynamic energy
    buffer_energy_j_per_bit: float  # one write + one read
    xbar_energy_j_per_bit_per_port2: float  # matrix crossbar: scales with k^2
    wire_energy_j_per_bit_mm: float
    clock_energy_j_per_bit: float  # per clocked buffer bit per cycle


TECH_45NM = Technology(
    name="45nm",
    feature_nm=45,
    voltage=1.0,
    core_area_mm2=4.0,
    sram_bit_area_mm2=1.0e-6,
    xbar_pitch_mm=2.5e-4,
    wire_pitch_mm=4.0e-5,
    allocator_area_mm2_per_port2=4.0e-5,
    sram_bit_leakage_w=1.0e-6,
    xbar_leakage_w_per_mm2=0.20,
    wire_leakage_w_per_mm=5.0e-4,
    allocator_leakage_w_per_mm2=0.20,
    buffer_energy_j_per_bit=1.0e-13,
    xbar_energy_j_per_bit_per_port2=1.2e-15,
    wire_energy_j_per_bit_mm=2.5e-14,
    clock_energy_j_per_bit=2.0e-15,
)

TECH_22NM = Technology(
    name="22nm",
    feature_nm=22,
    voltage=0.8,
    core_area_mm2=1.0,
    sram_bit_area_mm2=1.0e-6 * 0.26,
    xbar_pitch_mm=2.5e-4 * 0.51,
    wire_pitch_mm=4.0e-5 * 0.7,  # wires scale worse than logic
    allocator_area_mm2_per_port2=4.0e-5 * 0.26,
    sram_bit_leakage_w=1.0e-6 * 0.55,
    xbar_leakage_w_per_mm2=0.20 * 1.6,  # leakage density rises per node
    wire_leakage_w_per_mm=5.0e-4 * 0.8,
    allocator_leakage_w_per_mm2=0.20 * 1.6,
    buffer_energy_j_per_bit=1.0e-13 * 0.4,
    xbar_energy_j_per_bit_per_port2=1.2e-15 * 0.4,
    wire_energy_j_per_bit_mm=2.5e-14 * 0.55,
    clock_energy_j_per_bit=2.0e-15 * 0.4,
)

TECHNOLOGIES = {45: TECH_45NM, 22: TECH_22NM}


def technology(feature_nm: int) -> Technology:
    """Lookup a process node by feature size (45 or 22)."""
    if feature_nm not in TECHNOLOGIES:
        raise ValueError(f"unknown technology {feature_nm}nm; options: 45, 22")
    return TECHNOLOGIES[feature_nm]


def tile_side_mm(tech: Technology, concentration: int) -> float:
    """Side of one router tile (its ``p`` cores), the physical hop length."""
    return (concentration * tech.core_area_mm2) ** 0.5
