"""Static (leakage) and dynamic power models.

Static power follows the area model's components; dynamic power is
activity-based: every flit pays a buffer write+read and a crossbar
traversal at each router it visits, plus wire energy proportional to the
millimetres it travels.  Activity is expressed as an injection rate in
flits/node/cycle together with the topology's average hop count and
average wire length — exactly the quantities the section 3.2 cost model
exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.paths import MinimalPaths
from ..topos.base import Topology
from .area import (
    FLIT_BITS,
    allocator_area_mm2,
    crossbar_area_mm2,
    router_buffer_flits,
    total_wire_mm,
)
from .technology import Technology, tile_side_mm


@dataclass(frozen=True)
class PowerReport:
    """Watts by component."""

    buffers: float
    crossbars: float
    wires: float

    @property
    def routers(self) -> float:
        return self.buffers + self.crossbars

    @property
    def total(self) -> float:
        return self.buffers + self.crossbars + self.wires

    def per_node(self, num_nodes: int) -> float:
        return self.total / num_nodes

    def breakdown(self) -> dict[str, float]:
        return {"buffers": self.buffers, "crossbars": self.crossbars, "wires": self.wires}


def static_power(
    topology: Topology,
    tech: Technology,
    vcs: int = 2,
    hops_per_cycle: int = 1,
    central_buffer_flits: int = 0,
    edge_buffer_flits: int | None = 5,
) -> PowerReport:
    """Leakage power of the whole network."""
    buffers = router_buffer_flits(
        topology, vcs, hops_per_cycle, central_buffer_flits, edge_buffer_flits
    )
    buffer_leak = sum(buffers) * FLIT_BITS * tech.sram_bit_leakage_w
    radix = topology.router_radix
    xbar_leak = topology.num_routers * (
        crossbar_area_mm2(tech, radix) * tech.xbar_leakage_w_per_mm2
        + allocator_area_mm2(tech, radix) * tech.allocator_leakage_w_per_mm2
    )
    wire_leak = total_wire_mm(topology, tech) * tech.wire_leakage_w_per_mm
    side = tile_side_mm(tech, topology.concentration)
    wire_leak += topology.num_nodes * 0.5 * side * tech.wire_leakage_w_per_mm
    return PowerReport(buffers=buffer_leak, crossbars=xbar_leak, wires=wire_leak)


def average_route_stats(topology: Topology) -> tuple[float, float]:
    """(average router hops, average wire hops) over uniform node pairs.

    Hops follow the deterministic minimal routing tables; wire hops sum
    the physical link lengths along those routes.
    """
    paths = MinimalPaths(topology)
    nr = topology.num_routers
    total_hops = 0.0
    total_wire = 0.0
    pairs = 0
    for src in range(nr):
        for dst in range(nr):
            if src == dst:
                continue
            path = paths.path(src, dst)
            total_hops += len(path) - 1
            total_wire += sum(
                topology.link_length_hops(a, b) for a, b in zip(path, path[1:])
            )
            pairs += 1
    return total_hops / pairs, total_wire / pairs


def dynamic_power(
    topology: Topology,
    tech: Technology,
    injection_rate: float,
    cycle_time_ns: float,
    route_stats: tuple[float, float] | None = None,
    vcs: int = 2,
    hops_per_cycle: int = 1,
    central_buffer_flits: int = 0,
    edge_buffer_flits: int | None = 5,
) -> PowerReport:
    """Dynamic power at a given offered load (flits/node/cycle).

    Two components, as in DSENT: activity energy (buffer accesses, a
    crossbar traversal that scales with the matrix crossbar's k^2 wire
    lengths, and per-mm wire switching) plus clock power for the router's
    clocked storage, which scales with total buffer bits and is why
    high-radix routers burn dynamic power even at fixed load.

    Args:
        route_stats: Optional precomputed (hops, wire hops) pair — the
            all-pairs sweep is O(Nr^2) and worth caching across calls.
    """
    if injection_rate < 0:
        raise ValueError("injection rate must be non-negative")
    hops, wire_hops = route_stats if route_stats else average_route_stats(topology)
    cycles_per_second = 1.0 / (cycle_time_ns * 1e-9)
    flits_per_second = topology.num_nodes * injection_rate * cycles_per_second
    bits_per_second = flits_per_second * FLIT_BITS
    routers_visited = hops + 1  # source router included
    buffer_bits = sum(
        router_buffer_flits(
            topology, vcs, hops_per_cycle, central_buffer_flits, edge_buffer_flits
        )
    ) * FLIT_BITS
    clock_power = buffer_bits * tech.clock_energy_j_per_bit * cycles_per_second
    buffer_power = bits_per_second * routers_visited * tech.buffer_energy_j_per_bit
    radix = topology.router_radix
    xbar_power = (
        bits_per_second
        * routers_visited
        * radix
        * radix
        * tech.xbar_energy_j_per_bit_per_port2
    )
    side = tile_side_mm(tech, topology.concentration)
    wire_mm = wire_hops * side + side  # route wires + node access
    wire_power = bits_per_second * wire_mm * tech.wire_energy_j_per_bit_mm
    return PowerReport(
        buffers=buffer_power + clock_power, crossbars=xbar_power, wires=wire_power
    )
