"""Area model: routers (buffers, crossbar, allocators) and wires by layer.

Follows the paper's reporting breakdown (section 5.1 "Area and Power
Evaluation"): router area split into active-layer logic (``a-routers``:
buffers + allocators) and intermediate-layer structures (``i-routers``:
the crossbar), plus router-router wires on the global layer
(``RRg-wires``) and router-node wires (``RNg-wires``).

Buffer capacity per router comes from the section 3.2 cost model:
``Δeb`` for edge-buffer designs (SMART-aware), ``δcb + 2 k' |VC|`` for
central-buffer designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.costmodel import per_router_central_buffer, per_router_edge_buffers
from ..topos.base import Topology
from .technology import Technology, tile_side_mm

FLIT_BITS = 128


@dataclass(frozen=True)
class AreaReport:
    """Network area in mm^2, by the paper's component breakdown."""

    a_routers: float  # active layer: buffers + allocators
    i_routers: float  # intermediate layer: crossbars
    rr_wires: float  # router-router wires (global layer)
    rn_wires: float  # router-node wires

    @property
    def total(self) -> float:
        return self.a_routers + self.i_routers + self.rr_wires + self.rn_wires

    def per_node_cm2(self, num_nodes: int) -> float:
        return self.total / num_nodes / 100.0

    def breakdown(self) -> dict[str, float]:
        return {
            "a-routers": self.a_routers,
            "i-routers": self.i_routers,
            "RRg-wires": self.rr_wires,
            "RNg-wires": self.rn_wires,
        }


def router_buffer_flits(
    topology: Topology,
    vcs: int = 2,
    hops_per_cycle: int = 1,
    central_buffer_flits: int = 0,
    edge_buffer_flits: int | None = 5,
) -> list[int]:
    """Buffer capacity per router under the active buffering scheme.

    ``edge_buffer_flits`` is the per-(port, VC) depth; the paper's default
    router uses 5 (section 5.1).  Pass ``None`` for RTT-sized variable
    buffers (the EB-Var strategy, SMART-aware via ``hops_per_cycle``).
    """
    if central_buffer_flits > 0:
        per_router = per_router_central_buffer(topology, central_buffer_flits, vcs)
        return [per_router] * topology.num_routers
    if edge_buffer_flits is None:
        return per_router_edge_buffers(topology, vcs, hops_per_cycle)
    return [
        len(topology.router_neighbors(r)) * vcs * edge_buffer_flits
        for r in range(topology.num_routers)
    ]


def crossbar_area_mm2(tech: Technology, router_radix: int) -> float:
    """Matrix crossbar: (ports x flit-width x pitch)^2 — quadratic in radix."""
    side = router_radix * FLIT_BITS * tech.xbar_pitch_mm
    return side * side


def allocator_area_mm2(tech: Technology, router_radix: int) -> float:
    return tech.allocator_area_mm2_per_port2 * router_radix * router_radix


def total_wire_mm(topology: Topology, tech: Technology) -> float:
    """Sum of router-router wire lengths in mm (Manhattan placement)."""
    side = tile_side_mm(tech, topology.concentration)
    return sum(topology.link_length_hops(i, j) for i, j in topology.edges()) * side


def network_area(
    topology: Topology,
    tech: Technology,
    vcs: int = 2,
    hops_per_cycle: int = 1,
    central_buffer_flits: int = 0,
    edge_buffer_flits: int | None = 5,
) -> AreaReport:
    """Full network area under one buffering scheme and technology."""
    buffers = router_buffer_flits(
        topology, vcs, hops_per_cycle, central_buffer_flits, edge_buffer_flits
    )
    buffer_area = sum(buffers) * FLIT_BITS * tech.sram_bit_area_mm2
    radix = topology.router_radix
    xbar_area = topology.num_routers * crossbar_area_mm2(tech, radix)
    alloc_area = topology.num_routers * allocator_area_mm2(tech, radix)
    rr_area = total_wire_mm(topology, tech) * FLIT_BITS * tech.wire_pitch_mm
    # Router-node wires: each node sits ~half a tile side from its router.
    side = tile_side_mm(tech, topology.concentration)
    rn_mm = topology.num_nodes * 0.5 * side
    rn_area = rn_mm * FLIT_BITS * tech.wire_pitch_mm
    return AreaReport(
        a_routers=buffer_area + alloc_area,
        i_routers=xbar_area,
        rr_wires=rr_area,
        rn_wires=rn_area,
    )
