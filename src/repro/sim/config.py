"""Simulation configuration and the paper's buffering strategies.

Section 5.1 "Router Architectures" fixes the microarchitectural constants
reproduced here: a 2-stage edge-buffer router pipeline with 2 VCs, a CBR
with a 2-cycle bypass and 4-cycle buffered path, 20-flit injection and
ejection queues, 6-flit packets, and 128-bit links (one flit per link
cycle).  Section 5.1 "Buffering Strategies" names the presets:

========== ==========================================================
EB-Small   all edge buffers 5 flits per VC
EB-Large   all edge buffers 15 flits per VC
EB-Var     per-link minimal depth for 100% utilisation (the RTT Tij)
EL-Links   elastic links only — 1-flit staging, link latches buffer
CBR-x      central-buffer router, CB capacity x flits
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Paper defaults (section 5.1).
PACKET_FLITS = 6
LINK_WIDTH_BITS = 128
SMART_H = 9


@dataclass(frozen=True)
class SimConfig:
    """All knobs of the cycle-accurate model.

    Attributes:
        num_vcs: Virtual channels per physical link.
        packet_flits: Flits per packet for synthetic traffic.
        edge_buffer_flits: Input buffer depth per (port, VC); ignored when
            ``variable_edge_buffers`` or a central buffer is active.
        variable_edge_buffers: Size each input buffer to its link's RTT
            (the EB-Var strategy; SMART-aware through ``hops_per_cycle``).
        central_buffer_flits: >0 selects the CBR router with this CB size.
        elastic_links: Replace credit links + deep buffers with elastic
            pipeline latches and 1-flit staging buffers.
        hops_per_cycle: The SMART ``H`` (1 = no SMART, 9 = SMART at 45nm).
        router_delay: Cycles a flit spends in the router pipeline before it
            can arbitrate (2-stage edge router => 1 wait cycle + 1 transfer).
        cbr_penalty: Extra cycles on the CBR buffered path (4-cycle total).
        cbr_patience: Cycles a head flit must have stalled in staging
            before its packet commits to the CB.  The CB has a single
            read and a single write port (section 4.2), so it must absorb
            persistent head-of-line conflicts, not transient ones —
            without patience every conflict serialises on the CB port.
        ejection_queue_flits: NIC ejection queue capacity.
        injection_queue_flits: Advisory NIC injection queue size (sources
            are open-loop; occupancy beyond this flags saturation).
        saturation_delivery_fraction: A run is saturated when fewer than
            this fraction of the packets created during the measurement
            window were delivered by the end of the drain phase.
        saturation_backlog: A run is saturated when any NIC's standing
            injection backlog exceeds this many flits (offered load
            persistently above accepted load).
        fast_forward: Let :meth:`~repro.sim.NoCSimulator.run` jump ``now``
            across cycles in which no component can make progress (all
            buffered flits waiting out pipeline/CB delays, all link and
            ejection events scheduled later).  The jump is exact — results
            are bit-identical either way — so this exists purely as a
            debugging escape hatch for stepping the idle cycles manually.
    """

    num_vcs: int = 2
    packet_flits: int = PACKET_FLITS
    edge_buffer_flits: int = 5
    variable_edge_buffers: bool = False
    central_buffer_flits: int = 0
    elastic_links: bool = False
    hops_per_cycle: int = 1
    router_delay: int = 2
    cbr_penalty: int = 2
    cbr_patience: int = 4
    ejection_queue_flits: int = 20
    injection_queue_flits: int = 20
    saturation_delivery_fraction: float = 0.90
    saturation_backlog: int = 120
    fast_forward: bool = True

    @property
    def uses_central_buffer(self) -> bool:
        return self.central_buffer_flits > 0

    def with_smart(self, enabled: bool = True) -> "SimConfig":
        return replace(self, hops_per_cycle=SMART_H if enabled else 1)

    def buffer_depth_for(self, link_latency: int) -> int:
        """Input-buffer depth per VC facing a link of the given latency."""
        if self.uses_central_buffer or self.elastic_links:
            return 1  # staging only; capacity lives in the CB / link latches
        if self.variable_edge_buffers:
            return 2 * link_latency + 3  # the RTT Tij of the buffer model
        return self.edge_buffer_flits


def eb_small(**kw) -> SimConfig:
    """EB-Small: 5-flit edge buffers."""
    return SimConfig(edge_buffer_flits=5, **kw)


def eb_large(**kw) -> SimConfig:
    """EB-Large: 15-flit edge buffers."""
    return SimConfig(edge_buffer_flits=15, **kw)


def eb_var(**kw) -> SimConfig:
    """EB-Var: per-link RTT-sized buffers (100% link utilisation)."""
    return SimConfig(variable_edge_buffers=True, **kw)


def el_links(**kw) -> SimConfig:
    """EL-Links: elastic links, no input buffers."""
    return SimConfig(elastic_links=True, **kw)


def cbr(cb_flits: int, **kw) -> SimConfig:
    """CBR-x: central-buffer router with elastic links (section 4.4)."""
    return SimConfig(central_buffer_flits=cb_flits, elastic_links=True, **kw)


#: Figure 11's named strategies.
BUFFERING_STRATEGIES = {
    "EB-Small": eb_small,
    "EB-Large": eb_large,
    "EB-Var": eb_var,
    "EL-Links": el_links,
    "CBR-6": lambda **kw: cbr(6, **kw),
    "CBR-40": lambda **kw: cbr(40, **kw),
}
