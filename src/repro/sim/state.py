"""Shared array-of-struct network layout.

``NetworkState`` derives, once, everything about a ``(topology, config)``
pair that is pure structure rather than live simulation state: the sorted
neighbor lists, the directed-link order (which fixes event-code ordinals),
per-link latencies, every input unit's identity in the router's fixed
build order, and the initial credit grant per (output port, VC).

Both simulator cores build from it:

* the scalar event-driven core (``network.NoCSimulator._build``) turns
  each ``UnitSpec`` into a live ``_InputUnit`` — it is the bit-identical
  reference implementation, protected by the golden digests;
* the batched lockstep kernel (``batch``) turns the same specs into
  NumPy arrays indexed ``[sim, unit]`` / ``[sim, link, vc]``.

Keeping the derivation in one place is what makes "batch equals scalar"
an invariant rather than two parallel reimplementations that drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SimConfig
from .links import link_latency

__all__ = ["UnitSpec", "RouterState", "NetworkState"]


@dataclass(frozen=True)
class UnitSpec:
    """One (input port, VC) FIFO in a router's fixed build order.

    ``node`` is set for injection units (the NIC they serve); link units
    carry ``upstream``/``vc`` plus the latency of the upstream link, which
    doubles as the credit-return latency.
    """

    index: int
    capacity: int
    node: int | None = None
    upstream: int | None = None
    vc: int = 0
    credit_latency: int = 0

    @property
    def is_injection(self) -> bool:
        return self.node is not None


@dataclass(frozen=True)
class RouterState:
    """Structural layout of one router.

    ``units`` lists every input FIFO in the canonical build order (sorted
    neighbors x VCs, then one injection unit per attached node) —
    arbitration insertion order, unit indices, and the batch kernel's
    flat unit axis all follow from it.  ``credit_init`` is the initial
    credit count per flat ``out_base[neighbor] + vc`` slot: the depth of
    the downstream input buffer on that link.
    """

    index: int
    neighbors: tuple[int, ...]
    units: tuple[UnitSpec, ...]
    credit_init: tuple[int, ...]


@dataclass(frozen=True)
class NetworkState:
    """Full structural layout of a network under one ``SimConfig``.

    ``link_order`` enumerates the directed links in canonical order —
    ``topology.edges()`` expanded to ``(i, j), (j, i)`` pairs — which
    fixes the scalar core's event-code ordinals and the batch kernel's
    link axis.  ``link_cycles[d]`` is the latency of directed link ``d``
    (symmetric, stored per direction for O(1) lookup).
    """

    num_vcs: int
    num_routers: int
    num_nodes: int
    link_order: tuple[tuple[int, int], ...]
    link_cycles: dict[tuple[int, int], int]
    routers: tuple[RouterState, ...]

    @classmethod
    def build(cls, topology, config: SimConfig) -> "NetworkState":
        """Derive the layout.  ``config.num_vcs`` must already reflect any
        routing-imposed VC floor (the simulator applies it before calling)."""
        order: list[tuple[int, int]] = []
        cycles: dict[tuple[int, int], int] = {}
        for i, j in topology.edges():
            lat = link_latency(topology.link_length_hops(i, j), config.hops_per_cycle)
            for a, b in ((i, j), (j, i)):
                cycles[(a, b)] = lat
                order.append((a, b))
        routers: list[RouterState] = []
        for r in range(topology.num_routers):
            neighbors = tuple(sorted(topology.router_neighbors(r)))
            units: list[UnitSpec] = []
            for neighbor in neighbors:
                lat = cycles[(neighbor, r)]
                depth = config.buffer_depth_for(lat)
                for vc in range(config.num_vcs):
                    units.append(
                        UnitSpec(
                            index=len(units),
                            capacity=depth,
                            upstream=neighbor,
                            vc=vc,
                            credit_latency=lat,
                        )
                    )
            for node in topology.router_nodes(r):
                units.append(UnitSpec(index=len(units), capacity=10**9, node=node))
            credit_init: list[int] = []
            for neighbor in neighbors:
                peer_depth = config.buffer_depth_for(cycles[(r, neighbor)])
                credit_init.extend(peer_depth for _ in range(config.num_vcs))
            routers.append(
                RouterState(
                    index=r,
                    neighbors=neighbors,
                    units=tuple(units),
                    credit_init=tuple(credit_init),
                )
            )
        return cls(
            num_vcs=config.num_vcs,
            num_routers=topology.num_routers,
            num_nodes=topology.num_nodes,
            link_order=tuple(order),
            link_cycles=cycles,
            routers=tuple(routers),
        )
