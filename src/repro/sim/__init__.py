"""Cycle-accurate NoC simulator: routers, links, flow control, measurement.

The scalar event-driven core (:mod:`.network`) is the bit-identical
reference; :mod:`.batch` steps whole campaign grids in NumPy lockstep.
NumPy stays an optional dependency: :mod:`.batch` guards its import, so
importing ``repro.sim`` never requires it — only actually *running* the
batch tier does.
"""

from .batch import (
    BatchLane,
    BatchUnavailableError,
    batchable_config,
    batchable_routing,
    numpy_available,
    simulate_batch,
)
from .config import (
    BUFFERING_STRATEGIES,
    SimConfig,
    cbr,
    eb_large,
    eb_small,
    eb_var,
    el_links,
)
from .links import CreditLink, ElasticLink, link_latency
from .network import NoCSimulator, SimResult
from .packet import Flit, Packet

__all__ = [
    "BatchLane",
    "BatchUnavailableError",
    "batchable_config",
    "batchable_routing",
    "numpy_available",
    "simulate_batch",
    "SimConfig",
    "BUFFERING_STRATEGIES",
    "eb_small",
    "eb_large",
    "eb_var",
    "el_links",
    "cbr",
    "NoCSimulator",
    "SimResult",
    "Packet",
    "Flit",
    "CreditLink",
    "ElasticLink",
    "link_latency",
]
