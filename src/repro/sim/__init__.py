"""Cycle-accurate NoC simulator: routers, links, flow control, measurement."""

from .config import (
    BUFFERING_STRATEGIES,
    SimConfig,
    cbr,
    eb_large,
    eb_small,
    eb_var,
    el_links,
)
from .links import CreditLink, ElasticLink, link_latency
from .network import NoCSimulator, SimResult
from .packet import Flit, Packet

__all__ = [
    "SimConfig",
    "BUFFERING_STRATEGIES",
    "eb_small",
    "eb_large",
    "eb_var",
    "el_links",
    "cbr",
    "NoCSimulator",
    "SimResult",
    "Packet",
    "Flit",
    "CreditLink",
    "ElasticLink",
    "link_latency",
]
