"""Batched lockstep simulation: N independent sims per Python-level step.

The event-driven core (``network.NoCSimulator``) spends its time in
Python bytecode — one arbitration visit at a time.  Campaigns, however,
are embarrassingly parallel at the spec level: a sweep is dozens of
*independent* simulations over the *same* network shape.  This module
steps a whole group of them in lockstep over NumPy array-of-struct
state indexed ``[sim, unit]`` / ``[sim, link, vc]``, so each per-cycle
operation (credit delivery, ejection drain, switch allocation) is one
vectorized pass across every lane instead of a Python loop per router.

Bit-identity contract
---------------------

The scalar core stays the reference implementation.  For every lane the
kernel reproduces its behavior operation for operation:

* **RNG**: the scalar core draws from ``random.Random(seed)``.  Both
  CPython and NumPy's legacy ``RandomState`` sit on MT19937, so
  ``_WordStream`` seeds a ``RandomState`` from ``random.Random(seed)``'s
  exact state vector and re-implements ``random()`` /
  ``getrandbits`` / ``_randbelow`` on the raw 32-bit word stream —
  the injection schedule is *cycle-exact*, not statistically equivalent.
* **Arbitration**: request groups keyed by output port with candidates
  in ascending unit-index order, viability (wormhole ownership + credit)
  filtering, round-robin pointers advanced only when a group has viable
  candidates, and the winner picked at ``pointer % len(viable)`` — all
  evaluated per lane via segmented reductions.
* **Ordering**: the ejection pipe (and therefore the latency *list*,
  which is part of the digest for <= 512 tracked packets) drains in
  ascending (router, first-requester unit) order, exactly the order the
  scalar core's sorted active-router walk produces.

Results come back as engine-normalized :class:`SimResult` objects whose
``to_dict()`` is byte-identical to the scalar path's.  Shapes the kernel
does not model (elastic links, the CBR central buffer, RNG-dependent or
oracle-driven routing, trace workloads) are declared unbatchable via
:func:`batchable_config` / :func:`batchable_routing` and fall back to the
scalar executor.

NumPy is an optional dependency: the import below is guarded, and only
an explicit request for the batch tier raises :class:`BatchUnavailableError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..routing import DimensionOrderRouting, RoutingAlgorithm, StaticMinimalRouting
from .config import SimConfig
from .network import LATENCY_HISTOGRAM_THRESHOLD, SimResult
from .state import NetworkState

try:  # optional extra — everything below guards on ``np is None``
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    np = None

__all__ = [
    "BatchLane",
    "BatchUnavailableError",
    "batchable_config",
    "batchable_routing",
    "numpy_available",
    "simulate_batch",
    "simulate_batch_detailed",
]

NUMPY_HINT = (
    "the batch simulation tier needs NumPy, which is an optional "
    "dependency — pip install numpy (or `pip install repro[batch]`)"
)


class BatchUnavailableError(RuntimeError):
    """Raised when the batch tier is requested but cannot run here."""


def numpy_available() -> bool:
    return np is not None


def require_numpy() -> None:
    if np is None:
        raise BatchUnavailableError(NUMPY_HINT)


#: Routing schemes the kernel can replicate: deterministic source routing
#: with per-pair route caches and no RNG or congestion-oracle input.
BATCHABLE_ROUTINGS = frozenset({"default", "minimal", "dor"})

#: Synthetic patterns the injection-schedule scan replicates.  ``RND`` and
#: ``ASYM`` draw destinations from the simulator RNG (interleaved with the
#: Bernoulli draws); the rest are fixed permutations.
RANDOMIZED = frozenset({"RND", "ASYM"})
BATCHABLE_PATTERNS = frozenset({"RND", "SHF", "REV", "ADV1", "ADV2", "ASYM"})


def batchable_config(config: SimConfig) -> bool:
    """Credit flow control only: elastic pipelines and the CBR central
    buffer have per-cycle state machines the kernel does not model."""
    return not config.elastic_links and config.central_buffer_flits == 0


def batchable_routing(name: str) -> bool:
    return name in BATCHABLE_ROUTINGS


@dataclass(frozen=True)
class BatchLane:
    """One simulation in a lockstep batch (what varies between lanes).

    Everything *shared* — topology, config, routing, and the
    warmup/measure/drain windows — is fixed per :func:`simulate_batch`
    call; lanes differ only in traffic and seed.
    """

    pattern: str
    load: float
    packet_flits: int
    seed: int


# ----------------------------------------------------------------------
# RNG: CPython's random.Random as a raw MT19937 word stream
# ----------------------------------------------------------------------


class _WordStream:
    """``random.Random(seed)``'s exact MT19937 output, one uint32 word at
    a time, with bulk generation through NumPy.

    CPython's ``random()`` consumes two words (``(a >> 5) * 2**26 +
    (b >> 6)) / 2**53``), ``getrandbits(k<=32)`` one word (``>> (32-k)``),
    and ``randrange(n)`` rejection-samples ``getrandbits(n.bit_length())``.
    Replaying those recipes over the shared word stream reproduces the
    scalar core's draw sequence bit for bit.
    """

    __slots__ = ("_rs", "_buf", "_pos")

    CHUNK = 1 << 16

    def __init__(self, seed: int):
        state = random.Random(seed).getstate()
        keys, pos = state[1][:-1], state[1][-1]
        rs = np.random.RandomState()
        rs.set_state(("MT19937", np.asarray(keys, dtype=np.uint32), pos))
        self._rs = rs
        self._buf = np.empty(0, dtype=np.uint32)
        self._pos = 0

    def _ensure(self, n: int) -> None:
        avail = len(self._buf) - self._pos
        if avail >= n:
            return
        fresh = self._rs.randint(
            0, 1 << 32, size=max(self.CHUNK, n - avail), dtype=np.uint32
        )
        self._buf = np.concatenate([self._buf[self._pos :], fresh])
        self._pos = 0

    def words(self, n: int):
        self._ensure(n)
        out = self._buf[self._pos : self._pos + n]
        self._pos += n
        return out

    def rewind(self, n_words: int) -> None:
        """Un-consume the last ``n_words`` (they are still buffered)."""
        self._pos -= n_words

    def doubles(self, n: int):
        w = self.words(2 * n).astype(np.uint64)
        a = w[0::2] >> np.uint64(5)
        b = w[1::2] >> np.uint64(6)
        return (a * np.uint64(1 << 26) + b) * (1.0 / (1 << 53))

    def double(self) -> float:
        return float(self.doubles(1)[0])

    def randbelow(self, n: int) -> int:
        """CPython ``Random._randbelow_with_getrandbits`` on the stream."""
        if n <= 0:
            return 0
        k = n.bit_length()
        shift = 32 - k
        r = int(self.words(1)[0]) >> shift
        while r >= n:
            r = int(self.words(1)[0]) >> shift
        return r


# ----------------------------------------------------------------------
# Injection schedule: the lane's whole packet feed, precomputed
# ----------------------------------------------------------------------


def _lane_schedule(lane: BatchLane, topology, measure_end: int):
    """Every injection the scalar run loop would perform for this lane:
    ``(cycles, srcs, dsts)`` arrays in creation order.

    The scalar loop consumes ``source.packets_at(cycle, rng)`` for every
    cycle in ``[0, measure_end)`` exactly once, in order — one
    ``rng.random()`` per node per cycle, with the destination draw (for
    randomized patterns) interleaved immediately after a Bernoulli hit.
    The scan replays that stream: deterministic patterns consume exactly
    two words per (cycle, node) slot and vectorize wholesale; randomized
    patterns scan blockwise and rewind to each hit to interleave the
    destination draw at its exact stream position.
    """
    from ..traffic.synthetic import make_pattern

    n = topology.num_nodes
    probability = lane.load / lane.packet_flits
    total = measure_end * n
    if lane.pattern not in RANDOMIZED:
        stream = _WordStream(lane.seed)
        pattern = make_pattern(lane.pattern, topology)
        table = np.array([pattern(src, None) for src in range(n)], dtype=np.int64)
        draws = stream.doubles(total)
        hits = np.flatnonzero(draws < probability)
        cycles = hits // n
        srcs = hits % n
        dsts = table[srcs]
        keep = dsts != srcs  # self-addressed permutation entries inject nothing
        return cycles[keep], srcs[keep], dsts[keep]

    # Randomized destinations interleave extra draws right after each
    # Bernoulli hit, shifting the word alignment of every later slot.
    # Rather than re-deriving doubles after every hit, precompute the
    # double the stream *would* produce at every word offset, index all
    # below-threshold offsets once, and walk them with a parity-aware
    # scalar cursor — only offsets congruent to the live cursor mod 2
    # are real draws.
    extra = 64 + int(total * probability * 2) * 8
    while True:
        schedule = _randomized_scan(lane, n, probability, total, extra)
        if schedule is not None:
            return schedule
        extra *= 4  # word pool exhausted by rejection resampling: retry


def _randomized_scan(lane: BatchLane, n, probability, total, extra):
    state = random.Random(lane.seed).getstate()
    rs = np.random.RandomState()
    rs.set_state(("MT19937", np.asarray(state[1][:-1], dtype=np.uint32), state[1][-1]))
    pool = rs.randint(0, 1 << 32, size=2 * total + extra, dtype=np.uint32)
    w64 = pool.astype(np.uint64)
    doubles = (
        (w64[:-1] >> np.uint64(5)) * np.uint64(1 << 26) + (w64[1:] >> np.uint64(6))
    ) * (1.0 / (1 << 53))
    hit_at = np.flatnonzero(doubles < probability).tolist()
    dest_bit = None
    if lane.pattern == "ASYM":
        dest_bit = (doubles < 0.5).tolist()

    is_rnd = lane.pattern == "RND"
    k = (n - 1).bit_length()
    shift = 32 - k
    half = n // 2
    limit = len(pool) - 2
    out_cycle: list[int] = []
    out_src: list[int] = []
    out_dst: list[int] = []
    cursor = 0  # word offset of the next slot's Bernoulli draw
    slot = 0
    i = 0
    H = len(hit_at)
    while True:
        while i < H and (hit_at[i] < cursor or (hit_at[i] - cursor) & 1):
            i += 1
        if i >= H:
            break
        pos = hit_at[i]
        hit_slot = slot + (pos - cursor) // 2
        if hit_slot >= total:
            break
        slot = hit_slot + 1
        cursor = pos + 2
        src = hit_slot % n
        if is_rnd:
            r = int(pool[cursor]) >> shift
            cursor += 1
            while r >= n - 1:
                if cursor > limit:
                    return None
                r = int(pool[cursor]) >> shift
                cursor += 1
            dst = r if r < src else r + 1
        else:  # ASYM: one random() (two words) per hit
            base = src % half
            dst = base + half if dest_bit[cursor] else base
            cursor += 2
            if dst == src:
                dst = (base + half) if dst < half else base
            dst %= n
        if cursor > limit:
            return None
        if dst != src:
            out_cycle.append(hit_slot // n)
            out_src.append(src)
            out_dst.append(dst)
    return (
        np.asarray(out_cycle, dtype=np.int64),
        np.asarray(out_src, dtype=np.int64),
        np.asarray(out_dst, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# The lockstep kernel
# ----------------------------------------------------------------------


def simulate_batch(
    topology,
    config: SimConfig,
    routing: RoutingAlgorithm,
    lanes,
    *,
    warmup: int,
    measure: int,
    drain: int,
) -> list[SimResult]:
    """Run every lane to completion; results align with ``lanes``."""
    return [result for result, _ in simulate_batch_detailed(
        topology, config, routing, lanes,
        warmup=warmup, measure=measure, drain=drain,
    )]


def simulate_batch_detailed(
    topology,
    config: SimConfig,
    routing: RoutingAlgorithm,
    lanes,
    *,
    warmup: int,
    measure: int,
    drain: int,
) -> list[tuple[SimResult, dict]]:
    """Like :func:`simulate_batch`, but each result rides with its
    canonical ``to_dict`` payload — assembled once from the batch arrays
    (sorted latencies and histogram compaction included), so downstream
    consumers never re-derive either."""
    require_numpy()
    lanes = list(lanes)
    if not lanes:
        return []
    if not batchable_config(config):
        raise ValueError("config is not batchable (elastic links / central buffer)")
    if not isinstance(routing, (StaticMinimalRouting, DimensionOrderRouting)):
        raise ValueError(f"routing {type(routing).__name__} is not batchable")
    for lane in lanes:
        if lane.pattern not in BATCHABLE_PATTERNS:
            raise ValueError(f"pattern {lane.pattern!r} is not batchable")
    if routing.num_vcs > config.num_vcs:
        config = replace(config, num_vcs=routing.num_vcs)

    kernel = _BatchKernel(
        topology, config, routing, lanes,
        warmup=warmup, measure=measure, drain=drain,
    )
    kernel.run()
    return kernel.results()


class _BatchKernel:
    """All state and per-cycle passes for one lockstep group."""

    def __init__(self, topology, config, routing, lanes, *, warmup, measure, drain):
        self.topology = topology
        self.config = config
        self.routing = routing
        self.lanes = lanes
        self.warmup = warmup
        self.measure = measure
        self.drain = drain
        self.measure_end = warmup + measure
        self.end_now = warmup + measure + drain
        self._build_network()
        self._build_packets()
        self._build_state()

    # -- shared structure ------------------------------------------------

    def _build_network(self) -> None:
        topo, cfg = self.topology, self.config
        layout = NetworkState.build(topo, cfg)
        self.layout = layout
        R = layout.num_routers
        N = layout.num_nodes
        V = layout.num_vcs
        E = len(layout.link_order)
        self.R, self.N, self.V, self.E = R, N, V, E

        self.edge_id = np.full((R, R), -1, dtype=np.int64)
        self.link_lat = np.empty(E, dtype=np.int64)
        for e, (a, b) in enumerate(layout.link_order):
            self.edge_id[a, b] = e
            self.link_lat[e] = layout.link_cycles[(a, b)]

        # Flat unit table, router-major in build order — global unit ids
        # ascend with (router, unit index), which is exactly the scalar
        # arbitration visit order.
        unit_router: list[int] = []
        unit_node: list[int] = []
        unit_cap: list[int] = []
        unit_vc: list[int] = []
        unit_credit_slot: list[int] = []  # e*V + vc of the upstream link
        unit_credit_lat: list[int] = []
        link_unit = np.full((E, V), -1, dtype=np.int64)
        inj_unit = np.full(N, -1, dtype=np.int64)
        for rs in layout.routers:
            for spec in rs.units:
                uid = len(unit_router)
                unit_router.append(rs.index)
                if spec.is_injection:
                    unit_node.append(spec.node)
                    unit_cap.append(0)  # NIC queues live in inj_* pointers
                    unit_vc.append(0)
                    unit_credit_slot.append(-1)
                    unit_credit_lat.append(0)
                    inj_unit[spec.node] = uid
                else:
                    e_up = self.edge_id[spec.upstream, rs.index]
                    unit_node.append(-1)
                    unit_cap.append(spec.capacity)
                    unit_vc.append(spec.vc)
                    unit_credit_slot.append(e_up * V + spec.vc)
                    unit_credit_lat.append(spec.credit_latency)
                    link_unit[e_up, spec.vc] = uid
        self.NU = len(unit_router)
        self.unit_router = np.asarray(unit_router, dtype=np.int64)
        self.unit_node = np.asarray(unit_node, dtype=np.int64)
        self.unit_is_inj = self.unit_node >= 0
        self.unit_vc = np.asarray(unit_vc, dtype=np.int64)
        self.unit_credit_slot = np.asarray(unit_credit_slot, dtype=np.int64)
        self.unit_credit_lat = np.asarray(unit_credit_lat, dtype=np.int64)
        self.link_unit = link_unit
        self.inj_unit = inj_unit
        self.C = max(int(max(unit_cap, default=1)), 1)
        self.M = int(self.link_lat.max()) + 1 if E else 2

        credits_init = np.zeros((E, V), dtype=np.int64)
        for rs in layout.routers:
            for pos, nbr in enumerate(rs.neighbors):
                e = self.edge_id[rs.index, nbr]
                for vc in range(V):
                    credits_init[e, vc] = rs.credit_init[pos * V + vc]
        self.credits_init = credits_init

    # -- per-lane packets -------------------------------------------------

    def _build_packets(self) -> None:
        topo = self.topology
        N = self.N
        S = len(self.lanes)
        self.S = S
        node_router = np.array(
            [topo.node_router(node) for node in range(N)], dtype=np.int64
        )

        schedules = [
            _lane_schedule(lane, topo, self.measure_end) for lane in self.lanes
        ]
        self.lane_P = np.array([len(c) for c, _, _ in schedules], dtype=np.int64)
        Pmax = int(self.lane_P.max()) if S else 0
        self.PF = np.array([lane.packet_flits for lane in self.lanes], dtype=np.int64)

        # Route cache shared across lanes, interned to pair ids so the
        # per-packet tables are filled by one vectorized gather per lane.
        route_cache: dict[tuple[int, int], int] = {}
        route_rows: list[tuple[tuple, tuple]] = []

        def pair_id(src_r: int, dst_r: int) -> int:
            key = (src_r, dst_r)
            pid = route_cache.get(key)
            if pid is None:
                route = self.routing.route(src_r, dst_r)
                pid = len(route_rows)
                route_rows.append((tuple(route.path), tuple(route.vcs)))
                route_cache[key] = pid
            return pid

        nr = node_router.tolist()
        lane_pairs = []
        for cycles, srcs, dsts in schedules:
            lane_pairs.append(
                np.fromiter(
                    (
                        pair_id(nr[s_node], nr[d_node])
                        for s_node, d_node in zip(srcs.tolist(), dsts.tolist())
                    ),
                    dtype=np.int64,
                    count=len(srcs),
                )
            )
        Hmax = max((len(p) for p, _ in route_rows), default=1)
        self.Hmax = Hmax
        W = max(Hmax - 1, 1)
        K = len(route_rows)
        tab_path = np.zeros((max(K, 1), Hmax), dtype=np.int64)
        tab_vcs = np.zeros((max(K, 1), W), dtype=np.int64)
        tab_last = np.zeros(max(K, 1), dtype=np.int64)
        for k, (path, vcs) in enumerate(route_rows):
            tab_last[k] = len(path) - 1
            tab_path[k, : len(path)] = path
            if vcs:
                tab_vcs[k, : len(vcs)] = vcs

        self.pkt_created = np.zeros((S, Pmax), dtype=np.int64)
        self.pkt_src = np.zeros((S, Pmax), dtype=np.int64)
        self.pkt_dst = np.zeros((S, Pmax), dtype=np.int64)
        self.pkt_last = np.zeros((S, Pmax), dtype=np.int64)
        self.pkt_path = np.zeros((S, Pmax, Hmax), dtype=np.int64)
        self.pkt_vcs = np.zeros((S, Pmax, W), dtype=np.int64)
        for s, ((cycles, srcs, dsts), pairs) in enumerate(zip(schedules, lane_pairs)):
            P = len(cycles)
            if not P:
                continue
            self.pkt_created[s, :P] = cycles
            self.pkt_src[s, :P] = srcs
            self.pkt_dst[s, :P] = dsts
            self.pkt_last[s, :P] = tab_last[pairs]
            self.pkt_path[s, :P] = tab_path[pairs]
            self.pkt_vcs[s, :P] = tab_vcs[pairs]

        # Tracked = created during the measurement window; every one of
        # them is injected before any lane can freeze, so the created
        # count is a pure function of the schedule.
        valid = (
            np.arange(Pmax, dtype=np.int64)[None, :] < self.lane_P[:, None]
            if Pmax
            else np.zeros((S, 0), dtype=bool)
        )
        self.pkt_tracked = valid & (self.pkt_created >= self.warmup)
        self.created_count = self.pkt_tracked.sum(axis=1)

        # NIC queues: per lane, flits ordered by (source node, creation
        # order) so each node's queue is one contiguous slice consumed by
        # two absolute pointers (head = next flit to leave the NIC,
        # avail = flits injected so far).
        Fmax = int((self.lane_P * self.PF).max()) if S else 0
        self.Fmax = Fmax
        self.inj_seq = np.zeros((S, max(Fmax, 1)), dtype=np.int64)
        self.inj_start = np.zeros((S, N), dtype=np.int64)
        for s in range(S):
            P = int(self.lane_P[s])
            pf = int(self.PF[s])
            if not P:
                continue
            order = np.argsort(self.pkt_src[s, :P], kind="stable")
            seq = (order[:, None] * pf + np.arange(pf, dtype=np.int64)[None, :]).ravel()
            self.inj_seq[s, : P * pf] = seq
            counts = np.bincount(self.pkt_src[s, :P], minlength=N) * pf
            self.inj_start[s] = np.concatenate(([0], np.cumsum(counts)[:-1]))

        # Injection events across lanes, sorted by cycle for O(1) slicing.
        ev_s = np.concatenate(
            [np.full(int(p), s, dtype=np.int64) for s, p in enumerate(self.lane_P)]
        ) if S and Pmax else np.zeros(0, dtype=np.int64)
        ev_pid = np.concatenate(
            [np.arange(int(p), dtype=np.int64) for p in self.lane_P]
        ) if S and Pmax else np.zeros(0, dtype=np.int64)
        ev_cycle = (
            self.pkt_created[ev_s, ev_pid] if len(ev_s) else np.zeros(0, dtype=np.int64)
        )
        order = np.argsort(ev_cycle, kind="stable")
        self.ev_s = ev_s[order]
        self.ev_pid = ev_pid[order]
        self.ev_offsets = np.searchsorted(
            ev_cycle[order], np.arange(self.measure_end + 1, dtype=np.int64)
        )

    # -- live state --------------------------------------------------------

    def _build_state(self) -> None:
        S, NU, E, V, N, C, M = self.S, self.NU, self.E, self.V, self.N, self.C, self.M
        self.buf_flit = np.full((S, NU, C), -1, dtype=np.int64)
        self.buf_head = np.zeros((S, NU), dtype=np.int64)
        self.buf_len = np.zeros((S, NU), dtype=np.int64)
        # In-flight flits/credits, bucketed by arrival slot (cycle mod M).
        # Each flit entry is an (sl, su, fl) triple of aligned arrays; each
        # credit entry is a flat index array into ``credits_f``.
        self.flit_pend: list[list] = [[] for _ in range(M)]
        self.credit_pend: list[list] = [[] for _ in range(M)]
        self.owner = np.full((S, E, V), -1, dtype=np.int64)
        self.credits = np.broadcast_to(self.credits_init, (S, E, V)).copy()
        self.rr = np.zeros((S, E), dtype=np.int64)
        self.ej_rr = np.zeros((S, N), dtype=np.int64)
        self.eject_credits = np.full(
            (S, N), self.config.ejection_queue_flits, dtype=np.int64
        )
        self.inj_head = self.inj_start.copy()
        self.inj_avail = self.inj_start.copy()
        self.flit_arrival = np.zeros((S, max(self.Fmax, 1)), dtype=np.int64)
        self.flit_hop = np.zeros((S, max(self.Fmax, 1)), dtype=np.int64)
        self.tracked_remaining = np.zeros(S, dtype=np.int64)
        self.delivered_flits = np.zeros(S, dtype=np.int64)
        self.max_backlog = np.zeros(S, dtype=np.int64)
        self.cycles_end = np.zeros(S, dtype=np.int64)
        self.active = np.ones(S, dtype=bool)
        self.lat_lists: list[list[int]] = [[] for _ in range(S)]
        # Previous cycle's ejection winners, sorted by (lane, the winning
        # group's first-requester unit) — the scalar eject-pipe order.
        self.pend_s = np.zeros(0, dtype=np.int64)
        self.pend_f = np.zeros(0, dtype=np.int64)
        self._occ = np.zeros((S, NU), dtype=bool)
        # Head flit per (lane, unit), maintained incrementally at every
        # push/pop — stale (-1/garbage) entries are gated by occupancy.
        self.head_flit = np.full((S, NU), -1, dtype=np.int64)
        # Flat views (shared memory) + strides: the hot loop gathers via
        # ``np.take`` on 1-D views, which beats tuple advanced indexing.
        self.Pmax = self.pkt_created.shape[1]
        self.Fm = self.flit_arrival.shape[1]
        self.R = self.edge_id.shape[0]
        self.W = self.pkt_vcs.shape[2]
        self.arrival_f = self.flit_arrival.reshape(-1)
        self.hop_f = self.flit_hop.reshape(-1)
        self.pkt_last_f = self.pkt_last.reshape(-1)
        self.pkt_dst_f = self.pkt_dst.reshape(-1)
        self.pkt_path_f = self.pkt_path.reshape(-1)
        self.pkt_vcs_f = self.pkt_vcs.reshape(-1)
        self.edge_id_f = self.edge_id.reshape(-1)
        self.buf_flit_f = self.buf_flit.reshape(-1)
        self.buf_head_f = self.buf_head.reshape(-1)
        self.buf_len_f = self.buf_len.reshape(-1)
        self.inj_seq_f = self.inj_seq.reshape(-1)
        self.inj_head_f = self.inj_head.reshape(-1)
        self.owner_f = self.owner.reshape(-1)
        self.credits_f = self.credits.reshape(-1)
        self.eject_f = self.eject_credits.reshape(-1)
        self.head_flit_f = self.head_flit.reshape(-1)
        self.now = 0

    # -- per-cycle passes --------------------------------------------------

    def _inject(self, cycle: int) -> None:
        a, b = int(self.ev_offsets[cycle]), int(self.ev_offsets[cycle + 1])
        if a == b:
            return
        s = self.ev_s[a:b]
        pid = self.ev_pid[a:b]
        node = self.pkt_src[s, pid]
        size = self.PF[s]
        # At most one packet per (lane, node, cycle) — plain fancy
        # indexing cannot collide.
        head = self.inj_head[s, node]
        empty = head == self.inj_avail[s, node]
        if empty.any():
            se, ne = s[empty], node[empty]
            self.head_flit[se, self.inj_unit[ne]] = self.inj_seq_f.take(
                se * self.inj_seq.shape[1] + head[empty]
            )
        self.inj_avail[s, node] += size
        self.flit_arrival[s, pid * size] = cycle
        if cycle >= self.warmup:
            np.add.at(self.tracked_remaining, s, 1)

    def _deliver(self, slot: int) -> None:
        bucket = self.credit_pend[slot]
        if bucket:
            self.credit_pend[slot] = []
            idx = bucket[0] if len(bucket) == 1 else np.concatenate(bucket)
            self.credits_f[idx] += 1
        bucket = self.flit_pend[slot]
        if bucket:
            self.flit_pend[slot] = []
            if len(bucket) == 1:
                sl, su, fl = bucket[0]
            else:
                sl = np.concatenate([b[0] for b in bucket])
                su = np.concatenate([b[1] for b in bucket])
                fl = np.concatenate([b[2] for b in bucket])
            self.arrival_f[sl * self.Fm + fl] = self.now
            # <=1 flit per (lane, unit) per cycle: no scatter collisions.
            lens = self.buf_len_f.take(su)
            pos = (self.buf_head_f.take(su) + lens) % self.C
            self.buf_flit_f[su * self.C + pos] = fl
            self.buf_len_f[su] = lens + 1
            was_empty = lens == 0
            if was_empty.any():
                self.head_flit_f[su[was_empty]] = fl[was_empty]

    def _drain_ejection(self) -> None:
        if not self.pend_s.size:
            return
        s, f = self.pend_s, self.pend_f
        self.pend_s = np.zeros(0, dtype=np.int64)
        self.pend_f = np.zeros(0, dtype=np.int64)
        pf = self.PF[s]
        pid = f // pf
        idx = f - pid * pf
        dst = self.pkt_dst[s, pid]
        self.eject_credits[s, dst] += 1  # NIC consumes immediately
        tails = idx == pf - 1
        if not tails.any():
            return
        t_s = s[tails]
        t_pid = pid[tails]
        created = self.pkt_created[t_s, t_pid]
        tracked = created >= self.warmup
        if not tracked.any():
            return
        t_s = t_s[tracked]
        lat = (self.now - created[tracked]).tolist()
        np.add.at(self.delivered_flits, t_s, self.PF[t_s])
        np.add.at(self.tracked_remaining, t_s, -1)
        lists = self.lat_lists
        for lane, value in zip(t_s.tolist(), lat):
            lists[lane].append(value)

    def _arbitrate(self) -> None:
        now = self.now
        E, V, C = self.E, self.V, self.C
        eligible_at = self.config.router_delay - 1

        occ = self._occ
        np.greater(self.buf_len, 0, out=occ)
        occ[:, self.inj_unit] = self.inj_head < self.inj_avail
        occ &= self.active[:, None]
        s_c, u_c = np.nonzero(occ)  # row-major: ascending (lane, unit)
        if not s_c.size:
            return

        # Head flit per occupied unit (cache maintained at push/pop).
        hf = self.head_flit_f.take(s_c * self.NU + u_c)

        pf = self.PF.take(s_c)
        pid = hf // pf
        fidx = hf - pid * pf
        is_head = fidx == 0
        eligible = ~is_head | (
            now >= self.arrival_f.take(s_c * self.Fm + hf) + eligible_at
        )
        if not eligible.all():
            s_c, u_c, hf, pf, pid, fidx, is_head = (
                x[eligible] for x in (s_c, u_c, hf, pf, pid, fidx, is_head)
            )
            if not s_c.size:
                return

        sp = s_c * self.Pmax + pid
        hop = self.hop_f.take(s_c * self.Fm + hf)
        last = self.pkt_last_f.take(sp)
        is_ej = hop == last
        nxt = self.pkt_path_f.take(sp * self.Hmax + np.minimum(hop + 1, last))
        e = self.edge_id_f.take(self.unit_router.take(u_c) * self.R + nxt)
        vc = self.pkt_vcs_f.take(sp * self.W + np.minimum(hop, self.W - 1))
        dst = self.pkt_dst_f.take(sp)
        outport = np.where(is_ej, E + dst, e)
        # e == -1 on ejection rows: sev can go negative there, so wrap —
        # the garbage reads are masked out by the is_ej branch of np.where.
        sev = s_c * (E * V) + e * V + vc
        own = self.owner_f.take(sev, mode="wrap")
        viable = np.where(
            is_ej,
            self.eject_f.take(s_c * self.N + dst) > 0,
            ((own == pid) | ((own == -1) & is_head))
            & (self.credits_f.take(sev, mode="wrap") > 0),
        )

        # Group candidates by (lane, output port).  The stable sort keeps
        # ascending unit order inside each group — the scalar request
        # table's insertion order.
        g = s_c * (E + self.N) + outport
        so = np.argsort(g, kind="stable")
        gs = g[so]
        vs = viable[so]
        new_seg = np.empty(len(gs), dtype=bool)
        new_seg[0] = True
        np.not_equal(gs[1:], gs[:-1], out=new_seg[1:])
        starts = np.flatnonzero(new_seg)
        nseg = len(starts)
        counts = np.empty(nseg, dtype=np.int64)
        counts[:-1] = starts[1:] - starts[:-1]
        counts[-1] = len(gs) - starts[-1]
        ends = np.empty(nseg, dtype=np.int64)
        ends[:-1] = starts[1:] - 1
        ends[-1] = len(gs) - 1
        cs = np.cumsum(vs)
        seg_base = cs[starts] - vs[starts]
        vcount = cs[ends] - seg_base
        rank = cs - vs - np.repeat(seg_base, counts)

        ss = so[starts]
        seg_s = s_c[ss]
        seg_out = outport[ss]
        act = vcount > 0

        # Round-robin: advance (and read the pre-increment pointer) only
        # for groups with at least one viable candidate.
        rrv = np.zeros(len(starts), dtype=np.int64)
        lm = act & (seg_out < E)
        if lm.any():
            li, lo = seg_s[lm], seg_out[lm]
            cur = self.rr[li, lo]
            rrv[lm] = cur
            self.rr[li, lo] = cur + 1
        em = act & (seg_out >= E)
        if em.any():
            ei, eo = seg_s[em], seg_out[em] - E
            cur = self.ej_rr[ei, eo]
            rrv[em] = cur
            self.ej_rr[ei, eo] = cur + 1
        # rrv is zero outside act, so the clamped modulo leaves those at 0.
        target = rrv % np.maximum(vcount, 1)

        win = vs & (rank == np.repeat(target, counts))
        wpos = np.flatnonzero(win)
        if not wpos.size:
            return

        sel = so[wpos]  # winner rows in the original candidate arrays
        w_s = s_c[sel]
        w_u = u_c[sel]
        w_hf = hf[sel]
        w_pid = pid[sel]
        w_fidx = fidx[sel]
        w_pf = pf[sel]
        w_hop = hop[sel]
        w_isej = is_ej[sel]
        w_e = e[sel]
        w_vc = vc[sel]
        w_dst = dst[sel]
        # First-requester unit of each winner's group (<=1 winner/group,
        # winners and group starts are both ascending in sort position).
        w_first = u_c[so[starts[np.searchsorted(starts, wpos, side="right") - 1]]]

        # Pop the winning unit (one winner per output port, and a unit
        # requests at most one port — every indexed slot is distinct).
        w_inj = self.unit_is_inj[w_u]
        if w_inj.any():
            si = w_s[w_inj]
            ui = w_u[w_inj]
            nd = self.unit_node[ui]
            head = self.inj_head[si, nd] + 1
            self.inj_head[si, nd] = head
            # New head (clip: garbage past queue end is gated by occupancy).
            self.head_flit[si, ui] = self.inj_seq_f.take(
                si * self.inj_seq.shape[1] + head, mode="clip"
            )
        w_lnk = ~w_inj
        if w_lnk.any():
            sl = w_s[w_lnk]
            ul = w_u[w_lnk]
            su = sl * self.NU + ul
            head = (self.buf_head_f.take(su) + 1) % C
            self.buf_head_f[su] = head
            self.buf_len_f[su] -= 1
            self.head_flit_f[su] = self.buf_flit_f.take(su * C + head)
            when = (now + self.unit_credit_lat[ul]) % self.M
            cidx = sl * (E * V) + self.unit_credit_slot[ul]
            uw = np.unique(when)
            if uw.size == 1:
                self.credit_pend[int(uw[0])].append(cidx)
            else:
                for w in uw.tolist():
                    self.credit_pend[w].append(cidx[when == w])

        ej = w_isej
        if ej.any():
            se = w_s[ej]
            self.eject_credits[se, w_dst[ej]] -= 1
            # Queue for next cycle's drain in scalar eject-pipe order:
            # ascending (lane, first-requester unit of the winning group).
            order2 = np.lexsort((w_first[ej], se))
            self.pend_s = se[order2]
            self.pend_f = w_hf[ej][order2]

        lk = ~ej
        if lk.any():
            sl = w_s[lk]
            el = w_e[lk]
            vl = w_vc[lk]
            fl = w_hf[lk]
            self.flit_hop[sl, fl] = w_hop[lk] + 1
            # Wormhole ownership: head claims the VC, tail releases it
            # (tail wins for single-flit packets, as in the scalar core).
            hd = w_fidx[lk] == 0
            if hd.any():
                self.owner[sl[hd], el[hd], vl[hd]] = w_pid[lk][hd]
            tl = w_fidx[lk] == w_pf[lk] - 1
            if tl.any():
                self.owner[sl[tl], el[tl], vl[tl]] = -1
            self.credits[sl, el, vl] -= 1
            when = (now + self.link_lat[el]) % self.M
            su = sl * self.NU + self.link_unit[el, vl]
            uw = np.unique(when)
            if uw.size == 1:
                self.flit_pend[int(uw[0])].append((sl, su, fl))
            else:
                for w in uw.tolist():
                    m = when == w
                    self.flit_pend[w].append((sl[m], su[m], fl[m]))

    def _freeze_finished(self) -> None:
        now = self.now
        if now < self.measure_end:
            return
        fin = self.active & (self.tracked_remaining == 0)
        if now >= self.end_now:
            fin = self.active.copy()
        if not fin.any():
            return
        self.cycles_end[fin] = now
        self.active[fin] = False
        # Silence frozen lanes so they produce no further candidates.
        self.buf_len[fin] = 0
        self.inj_head[fin] = self.inj_avail[fin]
        EV = self.E * self.V
        active = self.active
        for m in range(self.M):
            bucket = self.credit_pend[m]
            if bucket:
                idx = bucket[0] if len(bucket) == 1 else np.concatenate(bucket)
                keep = active[idx // EV]
                self.credit_pend[m] = [idx[keep]] if keep.any() else []
            bucket = self.flit_pend[m]
            if bucket:
                if len(bucket) == 1:
                    sl, su, fl = bucket[0]
                else:
                    sl = np.concatenate([b[0] for b in bucket])
                    su = np.concatenate([b[1] for b in bucket])
                    fl = np.concatenate([b[2] for b in bucket])
                keep = active[sl]
                self.flit_pend[m] = (
                    [(sl[keep], su[keep], fl[keep])] if keep.any() else []
                )
        if self.pend_s.size:
            keep = self.active[self.pend_s]
            self.pend_s = self.pend_s[keep]
            self.pend_f = self.pend_f[keep]

    def run(self) -> None:
        measure_end = self.measure_end
        while self.active.any():
            cycle = self.now
            if cycle < measure_end:
                self._inject(cycle)
            self.now += 1
            self._deliver(self.now % self.M)
            self._drain_ejection()
            self._arbitrate()
            live = self.active
            backlog = (self.inj_avail - self.inj_head).max(axis=1)
            np.maximum(
                self.max_backlog, backlog, out=self.max_backlog, where=live
            )
            self._freeze_finished()

    # -- results -----------------------------------------------------------

    def results(self) -> list[tuple[SimResult, dict]]:
        out = []
        cfg = self.config
        for s, lane in enumerate(self.lanes):
            latencies = self.lat_lists[s]
            payload = {
                "injection_rate": lane.load,
                "cycles": int(self.cycles_end[s]),
                "created_packets": int(self.created_count[s]),
                "delivered_packets": len(latencies),
                "delivered_flits": int(self.delivered_flits[s]),
                "num_nodes": self.N,
                "measure_cycles": self.measure,
                "max_injection_backlog": int(self.max_backlog[s]),
                "saturation_delivery_fraction": cfg.saturation_delivery_fraction,
                "saturation_backlog": cfg.saturation_backlog,
            }
            ordered = np.sort(np.asarray(latencies, dtype=np.int64))
            if len(latencies) > LATENCY_HISTOGRAM_THRESHOLD:
                values, counts = np.unique(ordered, return_counts=True)
                payload["latency_hist"] = [
                    [int(v), int(c)] for v, c in zip(values, counts)
                ]
            else:
                payload["latencies"] = list(latencies)
            result = SimResult.from_dict(payload)
            # Prime the sorted-latency cache from the batch arrays so no
            # downstream consumer pays the per-result sort again.
            result.__dict__["sorted_latencies"] = ordered.tolist()
            out.append((result, payload))
        return out
