"""Packets and flits for the cycle-accurate model.

A packet carries its full :class:`~repro.routing.algorithms.Route`
(computed at injection — source routing, as in the paper's deterministic
setup) and is split into flits.  Flits are deliberately tiny mutable
objects; the simulator creates millions of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..routing.algorithms import Route

_packet_ids = count()


@dataclass
class Packet:
    """One network packet.

    Attributes:
        src / dst: *Node* ids (not router ids).
        route: Router-level route including the VC schedule.
        size: Length in flits.
        created: Cycle the source generated the packet.
        injected: Cycle the head flit left the NIC into the router.
        ejected: Cycle the tail flit reached the destination NIC.
        kind: Free-form tag used by trace traffic ("read", "write", "reply").
        wants_reply: Trace traffic: destination generates a reply on arrival.
    """

    src: int
    dst: int
    route: Route
    size: int
    created: int
    kind: str = "data"
    wants_reply: bool = False
    reply_size: int = 0
    pid: int = field(default_factory=_packet_ids.__next__)
    injected: int = -1
    ejected: int = -1

    def __post_init__(self) -> None:
        # Hot-path aliases: the simulator indexes the route's path/VC
        # schedule once per flit per cycle, and ``route.path`` costs two
        # attribute hops where ``path`` costs one.  ``last_hop`` is the
        # hop index at which a flit has reached its destination router;
        # ``ej_key`` is the ejection out-port key — both built once here
        # instead of once per arbitration attempt.
        self.path = self.route.path
        self.vcs = self.route.vcs
        self.last_hop = len(self.route.path) - 1
        self.ej_key = ("ej", self.dst)

    @property
    def latency(self) -> int:
        """Creation-to-tail-ejection latency (valid once delivered)."""
        if self.ejected < 0:
            raise ValueError("packet not delivered yet")
        return self.ejected - self.created

    def make_flits(self) -> list["Flit"]:
        return [
            Flit(
                packet=self,
                index=i,
                is_head=i == 0,
                is_tail=i == self.size - 1,
            )
            for i in range(self.size)
        ]


class Flit:
    """One flow-control unit.  ``hop`` counts router-to-router traversals
    completed, indexing into the packet's route and VC schedule."""

    __slots__ = ("packet", "index", "is_head", "is_tail", "hop", "arrival")

    def __init__(self, packet: Packet, index: int, is_head: bool, is_tail: bool):
        self.packet = packet
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail
        self.hop = 0
        self.arrival = -1  # cycle the flit entered its current buffer

    @property
    def current_router(self) -> int:
        return self.packet.route.path[self.hop]

    @property
    def at_destination(self) -> bool:
        return self.hop == len(self.packet.route.path) - 1

    @property
    def next_router(self) -> int:
        return self.packet.route.path[self.hop + 1]

    @property
    def next_vc(self) -> int:
        """VC the flit must use on its next link (fixed by the schedule)."""
        return self.packet.route.vcs[self.hop]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flit(p{self.packet.pid}#{self.index} hop={self.hop})"
