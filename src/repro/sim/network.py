"""The cycle-accurate NoC simulator.

Models flit-level virtual-channel wormhole switching with credit-based or
elastic flow control over any :class:`~repro.topos.base.Topology`:

* **Edge-buffer router** — 2-stage pipeline: a flit arriving at cycle
  ``t`` may arbitrate from ``t + router_delay - 1`` and reaches the next
  router after the wire latency.  Input buffers per (port, VC) sized by
  the active buffering strategy; credits flow back over the same wire.
* **Central-buffer router (CBR)** — 1-flit staging buffers per (port,
  VC); on an output conflict the whole packet is *atomically* granted
  central-buffer space (deadlock safety, section 4.3) and re-arbitrates
  from the CB after the 4-cycle buffered-path penalty.  The CB has a
  single read and a single write port (section 4.2).
* **Wormhole VC ownership** — an output (port, VC) belongs to one packet
  from head until tail, and the VC a packet uses on every hop is fixed at
  route time (hop-index VCs / datelines), so the channel dependency graph
  is acyclic by construction.
* **SMART links** — wire latency ``ceil(distance / H)`` cycles.

Routers and NICs advance in lockstep inside :meth:`NoCSimulator.run`; the
simulator also implements the :class:`~repro.routing.algorithms.QueueOracle`
protocol so UGAL can observe live channel occupancy.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field, replace

from ..routing import QueueOracle, RoutingAlgorithm, default_routing
from ..topos.base import Topology
from .config import SimConfig
from .links import CreditLink, ElasticLink, link_latency
from .packet import Flit, Packet

# Out-port keys: ints address neighbor routers; ("ej", node) tuples address
# the per-node ejection ports.


@dataclass
class _InputUnit:
    """One (input port, VC) FIFO."""

    capacity: int
    buffer: deque = field(default_factory=deque)

    @property
    def occupancy(self) -> int:
        return len(self.buffer)

    def has_space(self) -> bool:
        return len(self.buffer) < self.capacity


class _Router:
    """Per-router state: input units, credits, ownership, CB queues."""

    def __init__(self, index: int, neighbors: tuple[int, ...], config: SimConfig):
        self.index = index
        self.neighbors = neighbors
        self.config = config
        # (port_key, vc) -> _InputUnit; port_key is the upstream router id,
        # or ("inj", node) for injection ports.
        self.inputs: dict[tuple, _InputUnit] = {}
        self.credits: dict[tuple[int, int], int] = {}
        self.owner: dict[tuple[int, int], int | None] = {}
        self.rr: dict[object, int] = {}
        # Central buffer.
        self.cb_free = config.central_buffer_flits
        self.cb_queues: dict[tuple[int, int], deque] = {}
        self.cb_committed: dict[int, int] = {}  # pid -> flits still to enter CB
        # Per (out_port, vc): packet whose flits currently stream through the
        # CB queue.  A CB queue is "part of the output buffer of the
        # corresponding port and VC" (section 4.3), so it is wormhole-owned —
        # interleaving two packets in one FIFO would deadlock on ownership.
        self.cb_stream_owner: dict[tuple[int, int], int] = {}

    def input_keys(self) -> list[tuple]:
        return list(self.inputs)


#: Above this many tracked packets, :meth:`SimResult.to_dict` stores the
#: latency distribution as a sorted ``[value, count]`` histogram instead of
#: the raw per-packet list (latency order carries no information — every
#: derived statistic is order-independent).
LATENCY_HISTOGRAM_THRESHOLD = 512


@dataclass
class SimResult:
    """Outcome of one simulation run (measurement window only)."""

    injection_rate: float
    cycles: int
    created_packets: int
    delivered_packets: int
    delivered_flits: int
    latencies: list[int]
    num_nodes: int
    measure_cycles: int
    max_injection_backlog: int
    saturation_delivery_fraction: float = 0.90
    saturation_backlog: int = 120

    @property
    def avg_latency(self) -> float:
        """Mean packet latency in cycles (creation to tail ejection)."""
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        return float(ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))])

    @property
    def throughput(self) -> float:
        """Accepted flits per node per cycle during the measurement window."""
        return self.delivered_flits / (self.num_nodes * self.measure_cycles)

    @property
    def saturated(self) -> bool:
        """Offered load exceeded accepted load: packets left undelivered
        after the drain phase, or a large standing source backlog built up."""
        if self.created_packets == 0:
            return False
        threshold = self.saturation_delivery_fraction * self.created_packets
        undelivered = self.delivered_packets < threshold
        return undelivered or self.max_injection_backlog > self.saturation_backlog

    def to_dict(self) -> dict:
        """JSON-safe representation (see :meth:`from_dict` for the inverse).

        Large latency populations are compacted into a sorted histogram;
        mean/percentile statistics survive the round trip exactly, only
        the (meaningless) per-packet ordering is lost.
        """
        payload = {
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "created_packets": self.created_packets,
            "delivered_packets": self.delivered_packets,
            "delivered_flits": self.delivered_flits,
            "num_nodes": self.num_nodes,
            "measure_cycles": self.measure_cycles,
            "max_injection_backlog": self.max_injection_backlog,
            "saturation_delivery_fraction": self.saturation_delivery_fraction,
            "saturation_backlog": self.saturation_backlog,
        }
        if len(self.latencies) > LATENCY_HISTOGRAM_THRESHOLD:
            counts: dict[int, int] = {}
            for value in self.latencies:
                counts[value] = counts.get(value, 0) + 1
            payload["latency_hist"] = [[v, counts[v]] for v in sorted(counts)]
        else:
            payload["latencies"] = list(self.latencies)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimResult":
        if "latency_hist" in payload:
            latencies = [
                value for value, count in payload["latency_hist"] for _ in range(count)
            ]
        else:
            latencies = list(payload["latencies"])
        return cls(
            injection_rate=payload["injection_rate"],
            cycles=payload["cycles"],
            created_packets=payload["created_packets"],
            delivered_packets=payload["delivered_packets"],
            delivered_flits=payload["delivered_flits"],
            latencies=latencies,
            num_nodes=payload["num_nodes"],
            measure_cycles=payload["measure_cycles"],
            max_injection_backlog=payload["max_injection_backlog"],
            saturation_delivery_fraction=payload.get(
                "saturation_delivery_fraction", 0.90
            ),
            saturation_backlog=payload.get("saturation_backlog", 120),
        )


class NoCSimulator(QueueOracle):
    """Flit-level simulator over a topology + configuration + routing."""

    def __init__(
        self,
        topology: Topology,
        config: SimConfig | None = None,
        routing: RoutingAlgorithm | None = None,
        seed: int = 0,
    ):
        self.topology = topology
        self.config = config if config is not None else SimConfig()
        self.routing = routing if routing is not None else default_routing(topology)
        if self.routing.topology is not topology:
            raise ValueError("routing was built for a different topology")
        if self.routing.num_vcs > self.config.num_vcs:
            # The routing's deadlock-avoidance scheme dictates the VC count
            # (e.g. PFBF's diameter-4 hop-index scheme needs 4 VCs).
            self.config = replace(self.config, num_vcs=self.routing.num_vcs)
        self.rng = random.Random(seed)
        self.now = 0
        self._build()
        # Adaptive algorithms observe live congestion through this simulator.
        oracle = getattr(self.routing, "oracle", None)
        if oracle is not None and not isinstance(oracle, NoCSimulator):
            self.routing.oracle = self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        topo, cfg = self.topology, self.config
        self.routers = [
            _Router(r, tuple(sorted(topo.router_neighbors(r))), cfg)
            for r in range(topo.num_routers)
        ]
        self.links: dict[tuple[int, int], CreditLink | ElasticLink] = {}
        self.link_cycles: dict[tuple[int, int], int] = {}
        for i, j in topo.edges():
            lat = link_latency(topo.link_length_hops(i, j), cfg.hops_per_cycle)
            for a, b in ((i, j), (j, i)):
                self.link_cycles[(a, b)] = lat
                if cfg.elastic_links:
                    self.links[(a, b)] = ElasticLink(lat, cfg.num_vcs)
                else:
                    self.links[(a, b)] = CreditLink(lat)
        for router in self.routers:
            for neighbor in router.neighbors:
                lat = self.link_cycles[(neighbor, router.index)]
                depth = cfg.buffer_depth_for(lat)
                for vc in range(cfg.num_vcs):
                    router.inputs[(neighbor, vc)] = _InputUnit(depth)
            for node in topo.router_nodes(router.index):
                router.inputs[(("inj", node), 0)] = _InputUnit(10**9)
            for neighbor in router.neighbors:
                out_lat = self.link_cycles[(router.index, neighbor)]
                peer_depth = cfg.buffer_depth_for(out_lat)
                for vc in range(cfg.num_vcs):
                    router.credits[(neighbor, vc)] = peer_depth
                    router.owner[(neighbor, vc)] = None
        # NIC state.
        self.eject_credits = [cfg.ejection_queue_flits] * topo.num_nodes
        self.eject_pipe: deque[tuple[int, Flit]] = deque()
        self.injection_backlog = [0] * topo.num_nodes
        self._live_packets: set[int] = set()
        self._pending_replies: list[tuple[int, int, int]] = []
        # Occupancy estimate per directed channel, for UGAL.
        self._channel_occupancy: dict[tuple[int, int], int] = {
            key: 0 for key in self.links
        }

    # ------------------------------------------------------------------
    # QueueOracle (UGAL feedback)
    # ------------------------------------------------------------------

    def output_queue(self, router: int, neighbor: int) -> int:
        return self._channel_occupancy.get((router, neighbor), 0)

    # ------------------------------------------------------------------
    # Packet creation
    # ------------------------------------------------------------------

    def inject_packet(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        kind: str = "data",
        wants_reply: bool = False,
        reply_size: int = 0,
    ) -> Packet:
        """Create a packet at ``src_node``'s NIC, routed now."""
        src_router = self.topology.node_router(src_node)
        dst_router = self.topology.node_router(dst_node)
        route = self.routing.route(src_router, dst_router)
        packet = Packet(
            src=src_node,
            dst=dst_node,
            route=route,
            size=size,
            created=self.now,
            kind=kind,
            wants_reply=wants_reply,
            reply_size=reply_size,
        )
        unit = self.routers[src_router].inputs[(("inj", src_node), 0)]
        for flit in packet.make_flits():
            flit.arrival = self.now
            unit.buffer.append(flit)
        self.injection_backlog[src_node] = unit.occupancy
        self._live_packets.add(packet.pid)
        return packet

    # ------------------------------------------------------------------
    # One simulated cycle
    # ------------------------------------------------------------------

    def step(self) -> list[Packet]:
        """Advance one cycle; returns packets fully ejected this cycle."""
        self.now += 1
        self._deliver_credit_links()
        self._advance_elastic_links()
        delivered = self._drain_ejection()
        for router in self.routers:
            self._arbitrate(router)
        return delivered

    def _deliver_credit_links(self) -> None:
        if self.config.elastic_links:
            return
        for (src, dst), link in self.links.items():
            router = self.routers[dst]
            for flit, vc in link.arrivals(self.now):
                flit.arrival = self.now
                router.inputs[(src, vc)].buffer.append(flit)
            src_router = self.routers[src]
            for vc in link.credit_arrivals(self.now):
                src_router.credits[(dst, vc)] += 1
                self._channel_occupancy[(src, dst)] -= 1

    def _advance_elastic_links(self) -> None:
        if not self.config.elastic_links:
            return
        for (src, dst), link in self.links.items():
            router = self.routers[dst]

            def staging_free(vc: int, _router=router, _src=src) -> bool:
                return _router.inputs[(_src, vc)].has_space()

            for flit, vc in link.advance(staging_free):
                flit.arrival = self.now
                router.inputs[(src, vc)].buffer.append(flit)
                self._channel_occupancy[(src, dst)] -= 1

    def _drain_ejection(self) -> list[Packet]:
        """Flits reaching NICs this cycle; NICs drain one flit per cycle."""
        finished: list[Packet] = []
        while self.eject_pipe and self.eject_pipe[0][0] <= self.now:
            _, flit = self.eject_pipe.popleft()
            node = flit.packet.dst
            self.eject_credits[node] += 1  # NIC consumes immediately
            if flit.is_tail:
                packet = flit.packet
                packet.ejected = self.now
                self._live_packets.discard(packet.pid)
                finished.append(packet)
                if packet.wants_reply:
                    self._pending_replies.append(
                        (packet.dst, packet.src, packet.reply_size)
                    )
        return finished

    def issue_replies(self) -> list[Packet]:
        """Generate reply packets queued by request deliveries (trace mode)."""
        replies = []
        for src, dst, size in self._pending_replies:
            replies.append(self.inject_packet(src, dst, size, kind="reply"))
        self._pending_replies.clear()
        return replies

    # ------------------------------------------------------------------
    # Switch allocation
    # ------------------------------------------------------------------

    def _arbitrate(self, router: _Router) -> None:
        cfg = self.config
        eligible_at = cfg.router_delay - 1
        requests: dict[object, list[tuple]] = {}

        for key, unit in router.inputs.items():
            if not unit.buffer:
                continue
            flit: Flit = unit.buffer[0]
            # Head flits pay the pipeline (route computation + allocation);
            # body flits inherit the head's state and stream at link rate.
            if flit.is_head and self.now < flit.arrival + eligible_at:
                continue
            if flit.at_destination:
                out_key: object = ("ej", flit.packet.dst)
            else:
                out_key = flit.next_router
            requests.setdefault(out_key, []).append((key, unit, flit, "in"))

        # CB queues re-arbitrate alongside staged flits.  The CB is modeled
        # as per-output FIFOs: each output port can drain one CB flit per
        # cycle (the mux/demux sharing of Figure 8), while CB *writes*
        # stay limited to one per cycle.
        for (out_port, vc), queue in router.cb_queues.items():
            if not queue:
                continue
            flit = queue[0]
            if self.now < flit.arrival:
                continue
            requests.setdefault(out_port, []).append(((out_port, vc), queue, flit, "cb"))

        for out_key, candidates in requests.items():
            winner = self._pick_winner(router, out_key, candidates)
            granted = False
            if winner is not None:
                key, container, flit, origin = winner
                granted = self._traverse(router, out_key, flit, container, origin)
            if granted:
                continue
            # CBR: losing head flits (and flits of CB-committed packets) fall
            # into the central buffer when a whole-packet reservation fits.
            # Writes are per-input-port (banked SRAM / demux sharing): each
            # blocked staging buffer may spill at most one flit per cycle.
            if cfg.uses_central_buffer and isinstance(out_key, int):
                self._try_central_buffer(router, out_key, candidates)

    def _pick_winner(self, router: _Router, out_key, candidates: list[tuple]):
        """Round-robin among candidates that satisfy VC ownership + space."""
        viable = [
            c
            for c in candidates
            if self._can_traverse(router, out_key, c[2])
            and not (c[3] == "in" and c[2].packet.pid in router.cb_committed)
        ]
        if not viable:
            return None
        pointer = router.rr.get(out_key, 0)
        router.rr[out_key] = pointer + 1
        return viable[pointer % len(viable)]

    def _can_traverse(self, router: _Router, out_key, flit: Flit) -> bool:
        if not isinstance(out_key, int):  # ("ej", node) ejection port
            return self.eject_credits[flit.packet.dst] > 0
        vc = flit.next_vc
        owner = router.owner[(out_key, vc)]
        if owner is not None and owner != flit.packet.pid:
            return False
        if owner is None and not flit.is_head:
            return False
        if self.config.elastic_links:
            link: ElasticLink = self.links[(router.index, out_key)]  # type: ignore
            return link.can_accept(vc)
        return router.credits[(out_key, vc)] > 0

    def _traverse(self, router: _Router, out_key, flit: Flit, container, origin: str) -> bool:
        if not self._can_traverse(router, out_key, flit):
            return False
        self._pop_from(router, flit, container, origin)
        if origin == "cb" and flit.is_tail:
            router.cb_stream_owner.pop((out_key, flit.next_vc), None)
        if not isinstance(out_key, int):  # ejection
            self.eject_credits[flit.packet.dst] -= 1
            self.eject_pipe.append((self.now + 1, flit))
            if flit.is_head and flit.packet.injected < 0:
                flit.packet.injected = self.now
            return True
        vc = flit.next_vc
        if flit.is_head:
            router.owner[(out_key, vc)] = flit.packet.pid
            if flit.packet.injected < 0:
                flit.packet.injected = self.now
        if flit.is_tail:
            router.owner[(out_key, vc)] = None
        flit.hop += 1
        link = self.links[(router.index, out_key)]
        if self.config.elastic_links:
            link.push(flit, vc)  # type: ignore[union-attr]
        else:
            router.credits[(out_key, vc)] -= 1
            link.send_flit(flit, vc, self.now)  # type: ignore[union-attr]
        self._channel_occupancy[(router.index, out_key)] += 1
        return True

    def _pop_from(self, router: _Router, flit: Flit, container, origin: str) -> None:
        if origin == "cb":
            container.popleft()
            self.cb_release(router, 1)
            return
        unit: _InputUnit = container
        unit.buffer.popleft()
        key = self._input_key_of(router, flit)
        if isinstance(key[0], tuple) and key[0][0] == "inj":
            node = key[0][1]
            self.injection_backlog[node] = unit.occupancy
        elif not self.config.elastic_links:
            upstream = key[0]
            self.links[(upstream, router.index)].send_credit(key[1], self.now)  # type: ignore[union-attr]

    @staticmethod
    def cb_release(router: _Router, flits: int) -> None:
        router.cb_free += flits

    def _upstream_pressure(self, router: _Router, flit: Flit) -> bool:
        """Is a flit stuck in the incoming link right behind this one?"""
        if flit.hop == 0:
            return False  # injection conflicts wait in the (deep) NIC queue
        upstream = flit.packet.route.path[flit.hop - 1]
        vc = flit.packet.route.vcs[flit.hop - 1]
        link = self.links[(upstream, router.index)]
        if isinstance(link, ElasticLink):
            return vc in link.stages[-1]
        return link.in_flight > 0

    def _input_key_of(self, router: _Router, flit: Flit) -> tuple:
        if flit.hop == 0:
            return (("inj", flit.packet.src), 0)
        upstream = flit.packet.route.path[flit.hop - 1]
        vc = flit.packet.route.vcs[flit.hop - 1]
        return (upstream, vc)

    def _try_central_buffer(self, router: _Router, out_key, candidates: list[tuple]) -> bool:
        """Move one losing staged flit into the CB (atomic per packet).

        A packet only *opens* a CB reservation when its blocked head is
        holding up traffic — a flit is waiting in the link's final stage
        behind it — so the CB acts as a conflict overflow (its single
        R/W port would otherwise serialise the whole router).
        """
        for key, unit, flit, origin in candidates:
            if origin != "in":
                continue
            pid = flit.packet.pid
            vc = flit.next_vc
            committed = router.cb_committed.get(pid)
            if committed is None:
                if not flit.is_head:
                    continue  # only heads open a CB reservation
                if router.cb_stream_owner.get((out_key, vc)) is not None:
                    continue  # another packet streams through this CB queue
                if self.now - flit.arrival < self.config.cbr_patience:
                    continue  # transient conflict: keep retrying the bypass
                if not self._upstream_pressure(router, flit):
                    continue  # nothing waiting behind: stay on the bypass path
                if router.cb_free < flit.packet.size:
                    continue  # atomic allocation: all-or-nothing
                router.cb_free -= flit.packet.size
                router.cb_committed[pid] = flit.packet.size
                router.cb_stream_owner[(out_key, vc)] = pid
            self._pop_from(router, flit, unit, origin)
            flit.arrival = self.now + self.config.cbr_penalty
            router.cb_queues.setdefault((out_key, vc), deque()).append(flit)
            router.cb_committed[pid] -= 1
            if router.cb_committed[pid] == 0 or flit.is_tail:
                del router.cb_committed[pid]
            return True
        return False

    # ------------------------------------------------------------------
    # Top-level run loop
    # ------------------------------------------------------------------

    def run(
        self,
        source,
        warmup: int = 1000,
        measure: int = 3000,
        drain: int = 3000,
    ) -> SimResult:
        """Drive ``source`` through warmup + measurement (+ drain) phases.

        ``source`` implements ``packets_at(cycle, rng)`` yielding tuples
        ``(src_node, dst_node, size, kind, wants_reply, reply_size)``.
        Packets created during the measurement window are tracked for
        latency; injection stops after the window and the drain phase lets
        in-flight packets finish (undelivered tracked packets after the
        drain flag saturation).
        """
        tracked: dict[int, Packet] = {}
        latencies: list[int] = []
        delivered_flits = 0
        created = 0
        max_backlog = 0
        horizon = warmup + measure + drain
        measure_end = warmup + measure
        for _ in range(horizon):
            cycle = self.now  # packets for the upcoming cycle
            if cycle < measure_end:
                for spec in source.packets_at(cycle, self.rng):
                    packet = self.inject_packet(*spec)
                    if warmup <= cycle < measure_end:
                        created += 1
                        tracked[packet.pid] = packet
            finished = self.step()
            self.issue_replies()
            for packet in finished:
                if packet.pid in tracked:
                    latencies.append(packet.latency)
                    delivered_flits += packet.size
                    del tracked[packet.pid]
            backlog = max(self.injection_backlog, default=0)
            max_backlog = max(max_backlog, backlog)
            if self.now >= measure_end and not tracked:
                break
        return SimResult(
            injection_rate=getattr(source, "rate", 0.0),
            cycles=self.now,
            created_packets=created,
            delivered_packets=len(latencies),
            delivered_flits=delivered_flits,
            latencies=latencies,
            num_nodes=self.topology.num_nodes,
            measure_cycles=measure,
            max_injection_backlog=max_backlog,
            saturation_delivery_fraction=self.config.saturation_delivery_fraction,
            saturation_backlog=self.config.saturation_backlog,
        )
