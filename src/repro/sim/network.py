"""The cycle-accurate NoC simulator.

Models flit-level virtual-channel wormhole switching with credit-based or
elastic flow control over any :class:`~repro.topos.base.Topology`:

* **Edge-buffer router** — 2-stage pipeline: a flit arriving at cycle
  ``t`` may arbitrate from ``t + router_delay - 1`` and reaches the next
  router after the wire latency.  Input buffers per (port, VC) sized by
  the active buffering strategy; credits flow back over the same wire.
* **Central-buffer router (CBR)** — 1-flit staging buffers per (port,
  VC); on an output conflict the whole packet is *atomically* granted
  central-buffer space (deadlock safety, section 4.3) and re-arbitrates
  from the CB after the 4-cycle buffered-path penalty.  The CB has a
  single read and a single write port (section 4.2).
* **Wormhole VC ownership** — an output (port, VC) belongs to one packet
  from head until tail, and the VC a packet uses on every hop is fixed at
  route time (hop-index VCs / datelines), so the channel dependency graph
  is acyclic by construction.
* **SMART links** — wire latency ``ceil(distance / H)`` cycles.

**Scheduling.**  The core is *activity-tracked*: routers join an active
set when a flit is buffered in one of their input units or CB queues and
leave it once empty, and links are tracked while they carry in-flight
flits or credits, so :meth:`NoCSimulator.step` visits only components
that can make progress (below saturation almost everything is idle almost
always).  On top of that, :meth:`NoCSimulator.run` *fast-forwards*: when
no router can act before some future cycle — every buffered head flit is
still in its pipeline or CB-penalty wait and all link/ejection events are
scheduled later — ``now`` jumps straight to the next scheduled event
(link or credit arrival, pipeline-eligibility time, next injection),
skipping warmup gaps, drain tails, and low-load injection gaps.  Both
optimizations are exact: per-router state is resolved to port-indexed
lists once at build time, active components are visited in the same
order the naive lockstep core used, and skipped cycles consume the
injection RNG identically, so results are bit-identical to the
pre-optimization core (pinned by ``tests/test_golden_digests.py``).

The simulator also implements the
:class:`~repro.routing.algorithms.QueueOracle` protocol so UGAL can
observe live channel occupancy.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, replace
from functools import cached_property

from ..routing import QueueOracle, RoutingAlgorithm, ZeroQueues, default_routing
from ..topos.base import Topology
from .config import SimConfig
from .links import CreditLink, ElasticLink
from .packet import Flit, Packet
from .state import NetworkState

# Out-port keys: ints address neighbor routers; ("ej", node) tuples address
# the per-node ejection ports.


class _InputUnit:
    """One (input port, VC) FIFO, with its identity resolved at build time.

    ``node`` is set for injection units (the NIC it serves); link units
    carry ``upstream``/``vc`` and, under credit flow control, the link to
    return credits on — so the hot path never reconstructs tuple keys.
    ``index`` is the unit's position in the router's build order; the
    router's ``occupied`` set tracks these indices so arbitration visits
    only non-empty units.
    """

    __slots__ = ("capacity", "buffer", "index", "node", "upstream", "vc",
                 "credit_code", "credit_latency")

    def __init__(
        self,
        capacity: int,
        index: int,
        node: int | None = None,
        upstream: int | None = None,
        vc: int = 0,
        credit_latency: int = 0,
    ):
        self.capacity = capacity
        self.buffer: deque = deque()
        self.index = index
        self.node = node
        self.upstream = upstream
        self.vc = vc
        self.credit_code = -1  # event code of the upstream link's credit path
        self.credit_latency = credit_latency

    @property
    def occupancy(self) -> int:
        return len(self.buffer)

    def has_space(self) -> bool:
        return len(self.buffer) < self.capacity


class _Router:
    """Per-router state: input units, credits, ownership, CB queues.

    Input units live in ``in_units`` in a fixed build order (sorted
    neighbors x VCs, then injection ports) and credits/ownership are flat
    lists indexed by ``out_base[neighbor] + vc`` — no tuple-keyed dicts on
    the hot path.  ``buffered``/``cb_flits`` are incrementally maintained
    occupancy counters driving the simulator's active-router set.
    """

    __slots__ = (
        "index", "neighbors", "config", "in_units", "in_index", "occupied",
        "out_base", "out_code", "out_info", "credits", "owner", "rr",
        "buffered",
        "cb_free", "cb_flits", "cb_queues", "cb_committed", "cb_stream_owner",
    )

    def __init__(self, index: int, neighbors: tuple[int, ...], config: SimConfig):
        self.index = index
        self.neighbors = neighbors
        self.config = config
        self.in_units: list[_InputUnit] = []
        self.occupied: set[int] = set()  # indices of non-empty units
        # (port_key, vc) -> unit; port_key is the upstream router id, or
        # ("inj", node) for injection ports.  Cold-path lookups only.
        self.in_index: dict[tuple, _InputUnit] = {}
        self.out_base: dict[int, int] = {
            nbr: pos * config.num_vcs for pos, nbr in enumerate(neighbors)
        }
        self.out_code: dict[int, int] = {}  # neighbor -> flit event code
        # neighbor -> (credit/owner base, link, latency, event code,
        # occupancy ordinal, round-robin slot); one lookup serves a grant.
        self.out_info: dict[int, tuple] = {}
        size = len(neighbors) * config.num_vcs
        self.credits: list[int] = [0] * size
        self.owner: list[int | None] = [None] * size
        # Round-robin pointers, flat per output port (ejection ports use
        # the simulator's per-node table).
        self.rr: list[int] = [0] * len(neighbors)
        self.buffered = 0  # flits across all input units
        # Central buffer.
        self.cb_free = config.central_buffer_flits
        self.cb_flits = 0  # flits across all CB queues
        self.cb_queues: dict[tuple[int, int], deque] = {}
        self.cb_committed: dict[int, int] = {}  # pid -> flits still to enter CB
        # Per (out_port, vc): packet whose flits currently stream through the
        # CB queue.  A CB queue is "part of the output buffer of the
        # corresponding port and VC" (section 4.3), so it is wormhole-owned —
        # interleaving two packets in one FIFO would deadlock on ownership.
        self.cb_stream_owner: dict[tuple[int, int], int] = {}


#: Above this many tracked packets, :meth:`SimResult.to_dict` stores the
#: latency distribution as a sorted ``[value, count]`` histogram instead of
#: the raw per-packet list (latency order carries no information — every
#: derived statistic is order-independent).
LATENCY_HISTOGRAM_THRESHOLD = 512


@dataclass
class SimResult:
    """Outcome of one simulation run (measurement window only)."""

    injection_rate: float
    cycles: int
    created_packets: int
    delivered_packets: int
    delivered_flits: int
    latencies: list[int]
    num_nodes: int
    measure_cycles: int
    max_injection_backlog: int
    saturation_delivery_fraction: float = 0.90
    saturation_backlog: int = 120

    @cached_property
    def sorted_latencies(self) -> list[int]:
        """Ascending latencies, sorted once and cached (the latency list
        is treated as immutable once the result exists)."""
        return sorted(self.latencies)

    @property
    def avg_latency(self) -> float:
        """Mean packet latency in cycles (creation to tail ejection)."""
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        ordered = self.sorted_latencies
        return float(ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))])

    @property
    def throughput(self) -> float:
        """Accepted flits per node per cycle during the measurement window."""
        return self.delivered_flits / (self.num_nodes * self.measure_cycles)

    @property
    def saturated(self) -> bool:
        """Offered load exceeded accepted load: packets left undelivered
        after the drain phase, or a large standing source backlog built up."""
        if self.created_packets == 0:
            return False
        threshold = self.saturation_delivery_fraction * self.created_packets
        undelivered = self.delivered_packets < threshold
        return undelivered or self.max_injection_backlog > self.saturation_backlog

    def to_dict(self) -> dict:
        """JSON-safe representation (see :meth:`from_dict` for the inverse).

        Large latency populations are compacted into a sorted histogram;
        mean/percentile statistics survive the round trip exactly, only
        the (meaningless) per-packet ordering is lost.
        """
        payload = {
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "created_packets": self.created_packets,
            "delivered_packets": self.delivered_packets,
            "delivered_flits": self.delivered_flits,
            "num_nodes": self.num_nodes,
            "measure_cycles": self.measure_cycles,
            "max_injection_backlog": self.max_injection_backlog,
            "saturation_delivery_fraction": self.saturation_delivery_fraction,
            "saturation_backlog": self.saturation_backlog,
        }
        if len(self.latencies) > LATENCY_HISTOGRAM_THRESHOLD:
            counts: dict[int, int] = {}
            for value in self.latencies:
                counts[value] = counts.get(value, 0) + 1
            payload["latency_hist"] = [[v, counts[v]] for v in sorted(counts)]
        else:
            payload["latencies"] = list(self.latencies)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimResult":
        if "latency_hist" in payload:
            latencies = [
                value for value, count in payload["latency_hist"] for _ in range(count)
            ]
        else:
            latencies = list(payload["latencies"])
        return cls(
            injection_rate=payload["injection_rate"],
            cycles=payload["cycles"],
            created_packets=payload["created_packets"],
            delivered_packets=payload["delivered_packets"],
            delivered_flits=payload["delivered_flits"],
            latencies=latencies,
            num_nodes=payload["num_nodes"],
            measure_cycles=payload["measure_cycles"],
            max_injection_backlog=payload["max_injection_backlog"],
            saturation_delivery_fraction=payload.get(
                "saturation_delivery_fraction", 0.90
            ),
            saturation_backlog=payload.get("saturation_backlog", 120),
        )


class NoCSimulator(QueueOracle):
    """Flit-level simulator over a topology + configuration + routing."""

    def __init__(
        self,
        topology: Topology,
        config: SimConfig | None = None,
        routing: RoutingAlgorithm | None = None,
        seed: int = 0,
    ):
        self.topology = topology
        self.config = config if config is not None else SimConfig()
        self.routing = routing if routing is not None else default_routing(topology)
        if self.routing.topology is not topology:
            raise ValueError("routing was built for a different topology")
        if self.routing.num_vcs > self.config.num_vcs:
            # The routing's deadlock-avoidance scheme dictates the VC count
            # (e.g. PFBF's diameter-4 hop-index scheme needs 4 VCs).
            self.config = replace(self.config, num_vcs=self.routing.num_vcs)
        self.rng = random.Random(seed)
        self.now = 0
        self._build()
        # Adaptive algorithms observe live congestion through this
        # simulator: the default (degenerate) ZeroQueues oracle and any
        # stale simulator left by a previous run are replaced with self,
        # so route choice reads this run's credit/occupancy state at
        # injection time.  A custom QueueOracle (anything else, including
        # ZeroQueues subclasses) was attached deliberately and is kept.
        oracle = getattr(self.routing, "oracle", None)
        if oracle is not None and (
            type(oracle) is ZeroQueues or isinstance(oracle, NoCSimulator)
        ):
            self.routing.oracle = self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        topo, cfg = self.topology, self.config
        self._elastic = cfg.elastic_links
        self._eligible_at = cfg.router_delay - 1
        # Structure (neighbor order, unit layout, link order, latencies,
        # credit grants) comes from the shared NetworkState derivation;
        # the batch kernel builds its arrays from the very same layout.
        layout = NetworkState.build(topo, cfg)
        self.layout = layout
        self.routers = [_Router(rs.index, rs.neighbors, cfg) for rs in layout.routers]
        self.links: dict[tuple[int, int], CreditLink | ElasticLink] = {}
        self.link_cycles: dict[tuple[int, int], int] = dict(layout.link_cycles)
        for a, b in layout.link_order:
            lat = layout.link_cycles[(a, b)]
            if cfg.elastic_links:
                self.links[(a, b)] = ElasticLink(lat, cfg.num_vcs)
            else:
                self.links[(a, b)] = CreditLink(lat)
        self._inj_units: list[_InputUnit] = [None] * topo.num_nodes  # type: ignore
        for router, rs in zip(self.routers, layout.routers):
            for spec in rs.units:
                if spec.is_injection:
                    unit = _InputUnit(spec.capacity, spec.index, node=spec.node)
                    router.in_units.append(unit)
                    router.in_index[(("inj", spec.node), 0)] = unit
                    self._inj_units[spec.node] = unit
                else:
                    unit = _InputUnit(
                        spec.capacity, spec.index,
                        upstream=spec.upstream, vc=spec.vc,
                        credit_latency=spec.credit_latency,
                    )
                    router.in_units.append(unit)
                    router.in_index[(spec.upstream, spec.vc)] = unit
            router.credits[:] = rs.credit_init
        # Per-link destination units ([vc] -> unit).
        self._link_in_units: dict[tuple[int, int], list[_InputUnit]] = {}
        # Channel occupancy (UGAL's congestion estimate) as a flat list
        # indexed by link ordinal, with the (src, dst) -> ordinal map kept
        # for the cold QueueOracle lookup.
        self._occ_ordinal: dict[tuple[int, int], int] = {}
        self._occupancy: list[int] = [0] * len(self.links)
        # Event codes: each directed credit link gets an even integer;
        # code + 1 is its credit return path.  Wheel slots hold plain int
        # codes, and the handler tables resolve a code back to everything
        # its delivery needs.  Elastic links are cycle-driven instead:
        # ``_elastic_info`` carries their per-advance state.
        self._flit_handlers: dict[int, tuple] = {}
        self._credit_handlers: dict[int, tuple] = {}
        self._elastic_info: dict[tuple[int, int], tuple] = {}
        for ordinal, (src, dst) in enumerate(self.links):
            units = [
                self.routers[dst].in_index[(src, vc)] for vc in range(cfg.num_vcs)
            ]
            self._link_in_units[(src, dst)] = units
            self._occ_ordinal[(src, dst)] = ordinal
            link = self.links[(src, dst)]
            src_router = self.routers[src]
            if cfg.elastic_links:
                self._elastic_info[(src, dst)] = (
                    link, units, self.routers[dst], ordinal
                )
            else:
                src_router.out_code[dst] = 2 * ordinal
                self._flit_handlers[2 * ordinal] = (self.routers[dst], units)
                self._credit_handlers[2 * ordinal + 1] = (
                    src_router.credits, src_router.out_base[dst], ordinal,
                )
                for vc in range(cfg.num_vcs):
                    units[vc].credit_code = 2 * ordinal + 1
            # One consolidated grant-time record per output port: the old
            # per-grant chain of out_base / links / out_code / occupancy
            # lookups collapses to a single dict hit.
            src_router.out_info[dst] = (
                src_router.out_base[dst], link, link.latency,
                src_router.out_code.get(dst, -1), ordinal,
                src_router.neighbors.index(dst),
            )
        # Activity tracking: components that can make progress this cycle.
        # Credit links are event-scheduled on a calendar wheel (arrival
        # cycle -> event codes; cheaper than a heap since any cycle's
        # events are processed together and order within a cycle is
        # immaterial); elastic links advance every cycle while they hold
        # flits, so they live in an active set.
        self._active_routers: set[int] = set()
        # Wheel slots carry the payloads themselves: (code, flit, vc) for
        # a flit crossing a wire, (code, vc) for a returning credit — the
        # wheel *is* the credit-link transport (CreditLink objects remain
        # as the standalone/unit-tested model).  Per-wire in-flight counts
        # are only maintained when the CBR spill heuristic needs them.
        self._event_wheel: dict[int, list[tuple]] = {}
        self._track_inflight = cfg.uses_central_buffer and not cfg.elastic_links
        self._credit_inflight: list[int] = [0] * len(self.links)
        self._active_elastic_links: set[tuple[int, int]] = set()
        # Hoisted per-cycle scratch (cleared after use, never reallocated).
        self._requests: dict[object, list] = {}
        self._viable: list = []
        # NIC state.
        self.eject_credits = [cfg.ejection_queue_flits] * topo.num_nodes
        self._ej_rr = [0] * topo.num_nodes  # ejection-port round-robin
        self.eject_pipe: deque[tuple[int, Flit]] = deque()
        self.injection_backlog = [0] * topo.num_nodes
        self._nonzero_backlogs: dict[int, int] = {}
        self._backlog_current = 0
        self._backlog_dirty = False
        self._live_packets: set[int] = set()
        self._pending_replies: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # QueueOracle (UGAL feedback)
    # ------------------------------------------------------------------

    def output_queue(self, router: int, neighbor: int) -> int:
        """Live congestion on the ``router -> neighbor`` channel.

        ``_occupancy`` increments when a flit wins arbitration onto the
        link and decrements when its credit returns (credit-flow links)
        or when it drains into the staging buffer (elastic links) — so
        for credit links this is exactly the downstream credit deficit
        (flits in flight plus flits still buffered at the neighbor), and
        for elastic links the flits occupying the link pipeline.  This
        is the state adaptive algorithms read at injection time; it is
        maintained unconditionally (cheap array bumps), so attaching an
        adaptive routing never changes static-routing results.
        """
        ordinal = self._occ_ordinal.get((router, neighbor))
        return 0 if ordinal is None else self._occupancy[ordinal]

    # ------------------------------------------------------------------
    # Packet creation
    # ------------------------------------------------------------------

    def inject_packet(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        kind: str = "data",
        wants_reply: bool = False,
        reply_size: int = 0,
    ) -> Packet:
        """Create a packet at ``src_node``'s NIC, routed now."""
        src_router = self.topology.node_router(src_node)
        dst_router = self.topology.node_router(dst_node)
        route = self.routing.route(src_router, dst_router)
        packet = Packet(
            src=src_node,
            dst=dst_node,
            route=route,
            size=size,
            created=self.now,
            kind=kind,
            wants_reply=wants_reply,
            reply_size=reply_size,
        )
        unit = self._inj_units[src_node]
        buffer = unit.buffer
        router = self.routers[src_router]
        if not buffer:
            router.occupied.add(unit.index)
        for flit in packet.make_flits():
            flit.arrival = self.now
            buffer.append(flit)
        router.buffered += size
        self._active_routers.add(src_router)
        self._set_backlog(src_node, len(buffer))
        self._live_packets.add(packet.pid)
        return packet

    def _set_backlog(self, node: int, value: int) -> None:
        self.injection_backlog[node] = value
        if value:
            self._nonzero_backlogs[node] = value
        else:
            self._nonzero_backlogs.pop(node, None)
        self._backlog_dirty = True

    def _current_backlog(self) -> int:
        """Max standing NIC backlog, recomputed only when one changed."""
        if self._backlog_dirty:
            values = self._nonzero_backlogs.values()
            self._backlog_current = max(values) if values else 0
            self._backlog_dirty = False
        return self._backlog_current

    # ------------------------------------------------------------------
    # One simulated cycle
    # ------------------------------------------------------------------

    def step(self) -> list[Packet]:
        """Advance one cycle; returns packets fully ejected this cycle.

        Only *active* components are visited: links carrying flits or
        credits, then routers holding buffered flits (in ascending index
        order — the order the lockstep core used, which fixes the
        ejection-FIFO and therefore latency-list ordering).
        """
        self.now += 1
        if self._elastic:
            self._advance_elastic_links()
        else:
            self._deliver_credit_links()
        delivered = self._drain_ejection()
        active = self._active_routers
        if active:
            routers = self.routers
            for index in sorted(active):
                router = routers[index]
                self._arbitrate(router)
                if not router.buffered and not router.cb_flits:
                    active.discard(index)
        return delivered

    def _deliver_credit_links(self) -> None:
        """Pop this cycle's link events and drain the matching FIFOs.

        One event code is scheduled per sent flit/credit; a FIFO drain
        triggered by an earlier event may leave later same-cycle events
        pointing at an already-empty queue, which is a harmless no-op.
        Cross-link delivery order is immaterial (each link feeds its own
        per-(port, VC) staging buffers and credit counters), so wheel
        order and the lockstep core's dict order produce identical state.
        """
        now = self.now
        entries = self._event_wheel.pop(now, None)
        if entries is None:
            return
        occupancy = self._occupancy
        active = self._active_routers
        flit_handlers = self._flit_handlers
        credit_handlers = self._credit_handlers
        track = self._track_inflight
        for entry in entries:
            code = entry[0]
            if code & 1:
                router_credits, base, ordinal = credit_handlers[code]
                router_credits[base + entry[1]] += 1
                occupancy[ordinal] -= 1
            else:
                router, units = flit_handlers[code]
                flit = entry[1]
                flit.arrival = now
                unit = units[entry[2]]
                buffer = unit.buffer
                if not buffer:
                    router.occupied.add(unit.index)
                buffer.append(flit)
                router.buffered += 1
                active.add(router.index)
                if track:
                    self._credit_inflight[code >> 1] -= 1

    def _advance_elastic_links(self) -> None:
        """One cycle of elastic pipeline motion for every in-flight link.

        This open-codes :meth:`ElasticLink.advance` (which remains the
        standalone model) and fuses last-stage delivery into the walk:
        per active link per cycle there are no method or closure calls,
        and a delivered flit lands in its staging buffer directly.
        """
        now = self.now
        occupancy = self._occupancy
        info = self._elastic_info
        active = self._active_elastic_links
        active_routers = self._active_routers
        for key in list(active):
            link, units, router, ordinal = info[key]
            stages = link.stages
            rr = link._rr
            num_vcs = link.num_vcs
            last = link.latency - 1
            for stage_index in range(last, -1, -1):
                stage = stages[stage_index]
                if not stage:
                    continue
                next_stage = stages[stage_index + 1] if stage_index != last else None
                start = rr[stage_index]
                for offset in range(num_vcs):
                    vc = (start + offset) % num_vcs
                    if vc not in stage:
                        continue
                    if next_stage is None:
                        unit = units[vc]
                        buffer = unit.buffer
                        if len(buffer) >= unit.capacity:
                            continue  # staging full: this VC stalls
                        rr[stage_index] = (vc + 1) % num_vcs
                        flit = stage.pop(vc)
                        flit.arrival = now
                        if not buffer:
                            router.occupied.add(unit.index)
                        buffer.append(flit)
                        router.buffered += 1
                        occupancy[ordinal] -= 1
                        link._in_flight -= 1
                        active_routers.add(router.index)
                        break
                    if vc not in next_stage:
                        rr[stage_index] = (vc + 1) % num_vcs
                        next_stage[vc] = stage.pop(vc)
                        break
            if not link._in_flight:
                active.discard(key)

    def _drain_ejection(self) -> list[Packet]:
        """Flits reaching NICs this cycle; NICs drain one flit per cycle."""
        finished: list[Packet] = []
        pipe = self.eject_pipe
        if not pipe or pipe[0][0] > self.now:
            return finished
        now = self.now
        eject_credits = self.eject_credits
        while pipe and pipe[0][0] <= now:
            _, flit = pipe.popleft()
            packet = flit.packet
            eject_credits[packet.dst] += 1  # NIC consumes immediately
            if flit.is_tail:
                packet.ejected = now
                self._live_packets.discard(packet.pid)
                finished.append(packet)
                if packet.wants_reply:
                    self._pending_replies.append(
                        (packet.dst, packet.src, packet.reply_size)
                    )
        return finished

    def issue_replies(self) -> list[Packet]:
        """Generate reply packets queued by request deliveries (trace mode)."""
        replies = []
        for src, dst, size in self._pending_replies:
            replies.append(self.inject_packet(src, dst, size, kind="reply"))
        self._pending_replies.clear()
        return replies

    # ------------------------------------------------------------------
    # Switch allocation
    # ------------------------------------------------------------------

    def _arbitrate(self, router: _Router) -> None:
        """Switch allocation for one router-cycle, fully inlined.

        This is the single hottest function in the repository, so the
        viability test (the old ``_can_traverse``), round-robin pick, and
        winner traversal are spelled out inline: per-``out_key`` state
        (owner/credit base index, outbound link, ejection credit) is
        resolved once instead of once per candidate, and no per-candidate
        function calls remain.  Request-table insertion order, round-robin
        pointer updates, and grant side effects replicate the lockstep
        core operation for operation.
        """
        now = self.now
        eligible_at = self._eligible_at
        occupied = router.occupied
        requests = None

        # Fast paths for the by-far most common sub-saturation shapes.
        # One occupied unit and nothing in the CB: a single candidate with
        # no possible output conflict — grant (or CB-spill) directly, with
        # no request table, viable list, or loop.  The side effects (round
        # robin advance on viability, pop/credit/owner/wheel updates)
        # mirror the general path below operation for operation.
        n_occupied = len(occupied)
        if not router.cb_flits and n_occupied == 1:
            unit = router.in_units[next(iter(occupied))]
            flit: Flit = unit.buffer[0]
            hop = flit.hop
            packet = flit.packet
            if flit.is_head:
                if now < flit.arrival + eligible_at:
                    return
            cb_committed = router.cb_committed
            if hop == packet.last_hop:  # ejection port
                dst = packet.dst
                if self.eject_credits[dst] <= 0 or (
                    cb_committed and packet.pid in cb_committed
                ):
                    return
                self._ej_rr[dst] += 1
                buffer = unit.buffer
                buffer.popleft()
                if not buffer:
                    occupied.discard(unit.index)
                router.buffered -= 1
                node = unit.node
                if node is not None:
                    value = len(buffer)
                    self.injection_backlog[node] = value
                    if value:
                        self._nonzero_backlogs[node] = value
                    else:
                        self._nonzero_backlogs.pop(node, None)
                    self._backlog_dirty = True
                elif unit.credit_code >= 0:
                    when = now + unit.credit_latency
                    wheel = self._event_wheel
                    try:
                        wheel[when].append((unit.credit_code, unit.vc))
                    except KeyError:
                        wheel[when] = [(unit.credit_code, unit.vc)]
                self.eject_credits[dst] -= 1
                self.eject_pipe.append((now + 1, flit))
                if flit.is_head and packet.injected < 0:
                    packet.injected = now
                return
            out_key = packet.path[hop + 1]
            base, link, latency, out_code, ordinal, rr_slot = (
                router.out_info[out_key]
            )
            vc = packet.vcs[hop]
            index = base + vc
            owner_list = router.owner
            owner = owner_list[index]
            if owner is None:
                viable_one = flit.is_head
            else:
                viable_one = owner == packet.pid
            if viable_one:
                if self._elastic:
                    viable_one = vc not in link.stages[0]
                else:
                    viable_one = router.credits[index] > 0
                if viable_one and cb_committed and packet.pid in cb_committed:
                    viable_one = False
            if not viable_one:
                if self.config.uses_central_buffer:
                    self._try_central_buffer(router, out_key, [(unit, flit, True)])
                return
            router.rr[rr_slot] += 1
            buffer = unit.buffer
            buffer.popleft()
            if not buffer:
                occupied.discard(unit.index)
            router.buffered -= 1
            node = unit.node
            if node is not None:
                value = len(buffer)
                self.injection_backlog[node] = value
                if value:
                    self._nonzero_backlogs[node] = value
                else:
                    self._nonzero_backlogs.pop(node, None)
                self._backlog_dirty = True
            elif unit.credit_code >= 0:
                when = now + unit.credit_latency
                wheel = self._event_wheel
                try:
                    wheel[when].append((unit.credit_code, unit.vc))
                except KeyError:
                    wheel[when] = [(unit.credit_code, unit.vc)]
            if flit.is_head:
                owner_list[index] = packet.pid
                if packet.injected < 0:
                    packet.injected = now
            if flit.is_tail:
                owner_list[index] = None
            flit.hop = hop + 1
            if self._elastic:
                link.push(flit, vc)
                self._active_elastic_links.add((router.index, out_key))
            else:
                router.credits[index] -= 1
                when = now + latency
                wheel = self._event_wheel
                try:
                    wheel[when].append((out_code, flit, vc))
                except KeyError:
                    wheel[when] = [(out_code, flit, vc)]
                if self._track_inflight:
                    self._credit_inflight[ordinal] += 1
            self._occupancy[ordinal] += 1
            return

        # Two occupied units, CB empty: the potential conflict (same
        # out_key) is one direct comparison; the request table degenerates
        # to literal tuples feeding the general grant loop.
        if not router.cb_flits and n_occupied == 2:
            units = router.in_units
            first, second = occupied
            if first > second:
                first, second = second, first
            unit = units[first]
            flit = unit.buffer[0]
            cand1 = cand2 = None
            if not (flit.is_head and now < flit.arrival + eligible_at):
                packet = flit.packet
                if flit.hop == packet.last_hop:
                    out_key: object = packet.ej_key
                else:
                    out_key = packet.path[flit.hop + 1]
                cand1 = (unit, flit, True)
            unit = units[second]
            flit = unit.buffer[0]
            if not (flit.is_head and now < flit.arrival + eligible_at):
                packet = flit.packet
                if flit.hop == packet.last_hop:
                    out_key2: object = packet.ej_key
                else:
                    out_key2 = packet.path[flit.hop + 1]
                cand2 = (unit, flit, True)
            if cand1 is None:
                if cand2 is None:
                    return
                grants = ((out_key2, (cand2,)),)
            elif cand2 is None:
                grants = ((out_key, (cand1,)),)
            elif out_key == out_key2:
                grants = ((out_key, (cand1, cand2)),)
            else:
                grants = ((out_key, (cand1,)), (out_key2, (cand2,)))
        else:
            requests = self._requests  # hoisted: cleared after use
            if router.buffered:
                units = router.in_units
                # Ascending index order == build order == the order the
                # lockstep core walked the full (port, VC) dict, which
                # fixes the requests ordering the CB spill path depends on.
                for index in sorted(occupied):
                    unit = units[index]
                    flit = unit.buffer[0]
                    # Head flits pay the pipeline (route computation +
                    # allocation); body flits inherit the head's state and
                    # stream at link rate.
                    if flit.is_head and now < flit.arrival + eligible_at:
                        continue
                    packet = flit.packet
                    if flit.hop == packet.last_hop:
                        out_key = packet.ej_key
                    else:
                        out_key = packet.path[flit.hop + 1]
                    candidates = requests.get(out_key)
                    if candidates is None:
                        requests[out_key] = [(unit, flit, True)]
                    else:
                        candidates.append((unit, flit, True))

            # CB queues re-arbitrate alongside staged flits.  The CB is
            # modeled as per-output FIFOs: each output port can drain one
            # CB flit per cycle (the mux/demux sharing of Figure 8), while
            # CB *writes* stay limited to one per cycle.
            if router.cb_flits:
                for (out_port, _vc), queue in router.cb_queues.items():
                    if not queue:
                        continue
                    flit = queue[0]
                    if now < flit.arrival:
                        continue
                    candidates = requests.get(out_port)
                    if candidates is None:
                        requests[out_port] = [(queue, flit, False)]
                    else:
                        candidates.append((queue, flit, False))

            if not requests:
                return
            grants = requests.items()

        elastic = self._elastic
        uses_cb = self.config.uses_central_buffer
        cb_committed = router.cb_committed
        viable = self._viable  # hoisted: cleared before each use
        router_index = router.index
        wheel = self._event_wheel
        track_inflight = self._track_inflight
        for out_key, candidates in grants:
            winner = None
            if type(out_key) is int:
                base, link, latency, out_code, ordinal, rr_slot = (
                    router.out_info[out_key]
                )
                owner_list = router.owner
                credits_list = router.credits
                viable.clear()
                for candidate in candidates:
                    flit = candidate[1]
                    packet = flit.packet
                    vc = packet.vcs[flit.hop]
                    owner = owner_list[base + vc]
                    if owner is not None:
                        if owner != packet.pid:
                            continue
                    elif not flit.is_head:
                        continue  # body flits only follow their own head
                    if elastic:
                        if vc in link.stages[0]:  # inline can_accept
                            continue
                    elif credits_list[base + vc] <= 0:
                        continue
                    if candidate[2] and cb_committed and packet.pid in cb_committed:
                        continue  # committed packets re-arbitrate from the CB
                    viable.append(candidate)
                if viable:
                    rr = router.rr
                    pointer = rr[rr_slot]
                    rr[rr_slot] = pointer + 1
                    if len(viable) == 1:
                        winner = viable[0]
                    else:
                        winner = viable[pointer % len(viable)]
                    container, flit, from_input = winner
                    packet = flit.packet
                    vc = packet.vcs[flit.hop]
                    index = base + vc
                    if from_input:  # inline input-unit pop
                        unit_buffer = container.buffer
                        unit_buffer.popleft()
                        if not unit_buffer:
                            occupied.discard(container.index)
                        router.buffered -= 1
                        node = container.node
                        if node is not None:
                            value = len(unit_buffer)
                            self.injection_backlog[node] = value
                            if value:
                                self._nonzero_backlogs[node] = value
                            else:
                                self._nonzero_backlogs.pop(node, None)
                            self._backlog_dirty = True
                        elif container.credit_code >= 0:
                            when = now + container.credit_latency
                            try:
                                wheel[when].append(
                                    (container.credit_code, container.vc)
                                )
                            except KeyError:
                                wheel[when] = [(container.credit_code, container.vc)]
                    else:  # CB queue pop
                        container.popleft()
                        router.cb_free += 1
                        router.cb_flits -= 1
                        if flit.is_tail:
                            router.cb_stream_owner.pop((out_key, vc), None)
                    if flit.is_head:
                        owner_list[index] = packet.pid
                        if packet.injected < 0:
                            packet.injected = now
                    if flit.is_tail:
                        owner_list[index] = None
                    flit.hop += 1
                    if elastic:
                        link.push(flit, vc)
                        self._active_elastic_links.add((router_index, out_key))
                    else:
                        credits_list[index] -= 1
                        when = now + latency
                        try:
                            wheel[when].append((out_code, flit, vc))
                        except KeyError:
                            wheel[when] = [(out_code, flit, vc)]
                        if track_inflight:
                            self._credit_inflight[ordinal] += 1
                    self._occupancy[ordinal] += 1
                # CBR: losing head flits (and flits of CB-committed
                # packets) fall into the central buffer when a
                # whole-packet reservation fits.  Writes are
                # per-input-port (banked SRAM / demux sharing): each
                # blocked staging buffer may spill at most one flit/cycle.
                if winner is None and uses_cb:
                    self._try_central_buffer(router, out_key, candidates)
            else:
                # ("ej", node) ejection port: one shared viability test.
                dst = out_key[1]
                if self.eject_credits[dst] > 0:
                    viable.clear()
                    for candidate in candidates:
                        flit = candidate[1]
                        if (
                            candidate[2]
                            and cb_committed
                            and flit.packet.pid in cb_committed
                        ):
                            continue
                        viable.append(candidate)
                    if viable:
                        ej_rr = self._ej_rr
                        pointer = ej_rr[dst]
                        ej_rr[dst] = pointer + 1
                        if len(viable) == 1:
                            container, flit, from_input = viable[0]
                        else:
                            container, flit, from_input = viable[pointer % len(viable)]
                        packet = flit.packet
                        # Ejecting candidates always come from input units
                        # (the CB only fronts router-to-router ports), so
                        # the inline pop handles just that shape.
                        unit_buffer = container.buffer
                        unit_buffer.popleft()
                        if not unit_buffer:
                            occupied.discard(container.index)
                        router.buffered -= 1
                        node = container.node
                        if node is not None:
                            value = len(unit_buffer)
                            self.injection_backlog[node] = value
                            if value:
                                self._nonzero_backlogs[node] = value
                            else:
                                self._nonzero_backlogs.pop(node, None)
                            self._backlog_dirty = True
                        elif container.credit_code >= 0:
                            when = now + container.credit_latency
                            try:
                                wheel[when].append(
                                    (container.credit_code, container.vc)
                                )
                            except KeyError:
                                wheel[when] = [(container.credit_code, container.vc)]
                        self.eject_credits[dst] -= 1
                        self.eject_pipe.append((now + 1, flit))
                        if flit.is_head and packet.injected < 0:
                            packet.injected = now
        if requests is not None:
            requests.clear()

    def _pop_input(self, router: _Router, unit: _InputUnit) -> None:
        """Dequeue the head flit of an input unit (CB spill path; the
        arbitration grant paths inline this same bookkeeping)."""
        unit.buffer.popleft()
        if not unit.buffer:
            router.occupied.discard(unit.index)
        router.buffered -= 1
        if unit.node is not None:
            self._set_backlog(unit.node, len(unit.buffer))
        elif unit.credit_code >= 0:
            when = self.now + unit.credit_latency
            wheel = self._event_wheel
            slot = wheel.get(when)
            if slot is None:
                wheel[when] = [(unit.credit_code, unit.vc)]
            else:
                slot.append((unit.credit_code, unit.vc))

    def _upstream_pressure(self, router: _Router, flit: Flit) -> bool:
        """Is a flit stuck in the incoming link right behind this one?"""
        if flit.hop == 0:
            return False  # injection conflicts wait in the (deep) NIC queue
        upstream = flit.packet.path[flit.hop - 1]
        vc = flit.packet.vcs[flit.hop - 1]
        link = self.links[(upstream, router.index)]
        if isinstance(link, ElasticLink):
            return vc in link.stages[-1]
        # Credit-mode flits ride the event wheel; the per-wire counter is
        # maintained exactly for this query (CBR + credit links only).
        return self._credit_inflight[self._occ_ordinal[(upstream, router.index)]] > 0

    def _try_central_buffer(self, router: _Router, out_key, candidates: list[tuple]) -> bool:
        """Move one losing staged flit into the CB (atomic per packet).

        A packet only *opens* a CB reservation when its blocked head is
        holding up traffic — a flit is waiting in the link's final stage
        behind it — so the CB acts as a conflict overflow (its single
        R/W port would otherwise serialise the whole router).
        """
        for unit, flit, from_input in candidates:
            if not from_input:
                continue
            packet = flit.packet
            pid = packet.pid
            vc = packet.vcs[flit.hop]
            committed = router.cb_committed.get(pid)
            if committed is None:
                if not flit.is_head:
                    continue  # only heads open a CB reservation
                if router.cb_stream_owner.get((out_key, vc)) is not None:
                    continue  # another packet streams through this CB queue
                if self.now - flit.arrival < self.config.cbr_patience:
                    continue  # transient conflict: keep retrying the bypass
                if not self._upstream_pressure(router, flit):
                    continue  # nothing waiting behind: stay on the bypass path
                if router.cb_free < packet.size:
                    continue  # atomic allocation: all-or-nothing
                router.cb_free -= packet.size
                router.cb_committed[pid] = packet.size
                router.cb_stream_owner[(out_key, vc)] = pid
            self._pop_input(router, unit)
            flit.arrival = self.now + self.config.cbr_penalty
            queue = router.cb_queues.get((out_key, vc))
            if queue is None:
                queue = router.cb_queues[(out_key, vc)] = deque()
            queue.append(flit)
            router.cb_flits += 1
            router.cb_committed[pid] -= 1
            if router.cb_committed[pid] == 0 or flit.is_tail:
                del router.cb_committed[pid]
            return True
        return False

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------

    def _next_event_time(self) -> int | None:
        """Earliest future ``now`` at which network state can change.

        Returns ``self.now + 1`` whenever anything could act next cycle
        (eligible or blocked flits, elastic pipelines, pending replies);
        a later cycle when everything buffered is waiting out a pipeline
        or CB delay and all link/ejection events are scheduled beyond the
        next cycle; ``None`` when the network holds no state at all.
        Conservative by construction — fast-forwarding to the returned
        cycle is exact, never an approximation.
        """
        floor = self.now + 1
        best: int | None = None
        if self._pending_replies:
            return floor
        if self.eject_pipe:
            t = self.eject_pipe[0][0]
            if t <= floor:
                return floor
            best = t
        if self._active_elastic_links:
            return floor  # elastic stages advance every cycle
        if self._event_wheel:
            t = min(self._event_wheel)
            if t <= floor:
                return floor
            if best is None or t < best:
                best = t
        eligible_at = self._eligible_at
        for index in self._active_routers:
            router = self.routers[index]
            if router.buffered:
                units = router.in_units
                for unit_index in router.occupied:
                    flit = units[unit_index].buffer[0]
                    if not flit.is_head:
                        return floor  # a body flit can stream immediately
                    t = flit.arrival + eligible_at
                    if t <= floor:
                        return floor  # eligible (possibly blocked): retry
                    if best is None or t < best:
                        best = t
            if router.cb_flits:
                for queue in router.cb_queues.values():
                    if not queue:
                        continue
                    t = queue[0].arrival
                    if t <= floor:
                        return floor
                    if best is None or t < best:
                        best = t
        return best

    # ------------------------------------------------------------------
    # Top-level run loop
    # ------------------------------------------------------------------

    def run(
        self,
        source,
        warmup: int = 1000,
        measure: int = 3000,
        drain: int = 3000,
    ) -> SimResult:
        """Drive ``source`` through warmup + measurement (+ drain) phases.

        ``source`` implements ``packets_at(cycle, rng)`` yielding tuples
        ``(src_node, dst_node, size, kind, wants_reply, reply_size)``.
        Packets created during the measurement window are tracked for
        latency; injection stops after the window and the drain phase lets
        in-flight packets finish (undelivered tracked packets after the
        drain flag saturation).

        When the network cannot act before the next scheduled event, the
        loop fast-forwards ``now`` to it instead of idling cycle by cycle.
        Skipped injection cycles still consume ``packets_at`` in order (a
        cycle that turns out to inject becomes the jump target), so the
        RNG stream — and therefore the result — is identical to the
        lockstep loop's.  Disable via ``SimConfig(fast_forward=False)``.
        """
        tracked: dict[int, Packet] = {}
        latencies: list[int] = []
        delivered_flits = 0
        created = 0
        max_backlog = 0
        measure_end = warmup + measure
        end_now = self.now + warmup + measure + drain
        fast_forward = self.config.fast_forward
        pending: tuple[int, list] | None = None  # pre-drawn injection cycle
        next_draw = self.now  # first cycle whose packets_at is unconsumed
        while self.now < end_now:
            cycle = self.now  # packets for the upcoming cycle
            if cycle < measure_end:
                if pending is not None and pending[0] == cycle:
                    specs = pending[1]
                    pending = None
                elif cycle >= next_draw:
                    specs = source.packets_at(cycle, self.rng)
                    next_draw = cycle + 1
                else:
                    specs = ()  # drawn empty during a fast-forward scan
                for spec in specs:
                    packet = self.inject_packet(*spec)
                    if warmup <= cycle:
                        created += 1
                        tracked[packet.pid] = packet
            finished = self.step()
            if self._pending_replies:
                self.issue_replies()
            for packet in finished:
                if packet.pid in tracked:
                    latencies.append(packet.latency)
                    delivered_flits += packet.size
                    del tracked[packet.pid]
            backlog = self._current_backlog()
            if backlog > max_backlog:
                max_backlog = backlog
            if self.now >= measure_end and not tracked:
                break
            if not fast_forward:
                continue
            next_event = self._next_event_time()
            if next_event == self.now + 1:
                continue
            limit = end_now
            if not tracked and measure_end < limit:
                # The lockstep loop would break the moment ``now`` reaches
                # the end of the measurement window with nothing tracked.
                limit = measure_end
            target = next_event if next_event is not None else limit
            if target > limit:
                target = limit
            jump = target - 1  # pre-step cycle of the next event
            # The jump would skip every injection cycle in [now, jump - 1]
            # (the *current* ``now`` is itself the next unprocessed
            # injection cycle), so their ``packets_at`` draws must still
            # be consumed, in order.  A cycle that turns out to inject
            # becomes the jump target instead.
            scan = self.now
            while scan <= jump and scan < measure_end:
                if scan >= next_draw:
                    specs = list(source.packets_at(scan, self.rng))
                    next_draw = scan + 1
                    if specs:
                        pending = (scan, specs)
                        jump = scan  # injection is the earlier event
                        break
                scan += 1
            if jump > self.now:
                self.now = jump
        return SimResult(
            injection_rate=getattr(source, "rate", 0.0),
            cycles=self.now,
            created_packets=created,
            delivered_packets=len(latencies),
            delivered_flits=delivered_flits,
            latencies=latencies,
            num_nodes=self.topology.num_nodes,
            measure_cycles=measure,
            max_injection_backlog=max_backlog,
            saturation_delivery_fraction=self.config.saturation_delivery_fraction,
            saturation_backlog=self.config.saturation_backlog,
        )
