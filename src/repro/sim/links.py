"""Link models: credit-based pipelined wires and elastic (EB/ElastiStore) links.

* :class:`CreditLink` — a fixed-latency pipe.  Flits sent at cycle ``t``
  arrive at ``t + latency``; the upstream router only sends with a credit
  in hand, and credits return with the same wire latency.  This is the
  conventional edge-buffer design whose buffers must cover the RTT.

* :class:`ElasticLink` — the paper's EB/ElastiStore wire (section 4.1):
  the repeaters themselves become master-slave latches, one slave latch
  per VC with a shared master per stage.  Each stage holds at most one
  flit per VC but advances at most one flit per cycle (the shared
  master), which reproduces ElastiStore's worst-case 1/|VC| throughput
  loss when all but one VC are blocked.  Backpressure is ready/valid —
  no credits and no deep buffers.

With SMART (section 3.2.2) a wire of physical length ``d`` hops has
``ceil(d / H)`` cycles of latency; :func:`link_latency` centralises that.
"""

from __future__ import annotations

import math
from collections import deque

from .packet import Flit


def link_latency(distance_hops: int, hops_per_cycle: int = 1) -> int:
    """Cycles to traverse a wire of the given physical length (>= 1)."""
    return max(1, math.ceil(max(distance_hops, 1) / hops_per_cycle))


class CreditLink:
    """Fixed-latency flit pipe with symmetric credit return path.

    This is the standalone (unit-tested) wire model.  The simulator's
    event wheel carries credit-link flits and credits itself — it only
    reads ``latency`` from these objects at build time — so the transit
    queues here are exercised by direct users and tests, not by
    :class:`~repro.sim.NoCSimulator`.
    """

    def __init__(self, latency: int):
        if latency < 1:
            raise ValueError("link latency must be >= 1")
        self.latency = latency
        self.flits: deque[tuple[int, Flit, int]] = deque()
        self.credits: deque[tuple[int, int]] = deque()

    def send_flit(self, flit: Flit, vc: int, now: int) -> None:
        self.flits.append((now + self.latency, flit, vc))

    def send_credit(self, vc: int, now: int) -> None:
        self.credits.append((now + self.latency, vc))

    def arrivals(self, now: int) -> list[tuple[Flit, int]]:
        """Flits whose transit completes at ``now`` (FIFO per link)."""
        out = []
        while self.flits and self.flits[0][0] <= now:
            _, flit, vc = self.flits.popleft()
            out.append((flit, vc))
        return out

    def credit_arrivals(self, now: int) -> list[int]:
        out = []
        while self.credits and self.credits[0][0] <= now:
            out.append(self.credits.popleft()[1])
        return out

    @property
    def in_flight(self) -> int:
        return len(self.flits)


class ElasticLink:
    """Pipeline of elastic stages; per-VC slots, one advance per stage/cycle.

    The downstream router drains stage ``latency - 1`` through
    :meth:`pop_ready`; the upstream router offers flits via
    :meth:`can_accept` / :meth:`push`.
    """

    def __init__(self, latency: int, num_vcs: int):
        if latency < 1:
            raise ValueError("link latency must be >= 1")
        self.latency = latency
        self.num_vcs = num_vcs
        # stages[s][vc] is the flit in stage s's slave latch for vc.
        self.stages: list[dict[int, Flit]] = [{} for _ in range(latency)]
        self._rr = [0] * latency  # round-robin pointer per stage's master latch
        self._in_flight = 0  # incrementally maintained across push/advance

    def can_accept(self, vc: int) -> bool:
        return vc not in self.stages[0]

    def push(self, flit: Flit, vc: int) -> None:
        if vc in self.stages[0]:
            raise RuntimeError("elastic stage 0 busy for this VC")
        self.stages[0][vc] = flit
        self._in_flight += 1

    def advance(self, downstream_free) -> list[tuple[Flit, int]]:
        """One cycle of pipeline motion, last stage first.

        Each non-empty stage round-robins over the VCs whose flit can move
        forward (inlined here — this runs once per in-flight link per
        cycle, the elastic hot path).

        Args:
            downstream_free: callable ``(vc) -> bool`` — can the router's
                staging buffer accept a flit on this VC right now?

        Returns:
            Flits delivered into the downstream router this cycle.
        """
        delivered: list[tuple[Flit, int]] = []
        stages = self.stages
        rr = self._rr
        num_vcs = self.num_vcs
        last = self.latency - 1
        for stage_index in range(last, -1, -1):
            stage = stages[stage_index]
            if not stage:
                continue
            next_stage = stages[stage_index + 1] if stage_index != last else None
            start = rr[stage_index]
            for offset in range(num_vcs):
                vc = (start + offset) % num_vcs
                if vc not in stage:
                    continue
                if next_stage is None:
                    if not downstream_free(vc):
                        continue
                    rr[stage_index] = (vc + 1) % num_vcs
                    delivered.append((stage.pop(vc), vc))
                    self._in_flight -= 1
                    break
                if vc not in next_stage:
                    rr[stage_index] = (vc + 1) % num_vcs
                    next_stage[vc] = stage.pop(vc)
                    break
        return delivered

    @property
    def in_flight(self) -> int:
        """Flits anywhere in the pipeline — an O(1) counter, not a scan
        (the simulator polls this per active link per cycle)."""
        return self._in_flight
