"""Command-line interface to the Slim NoC reproduction.

Subcommands (all sharing the experiment engine — parallel workers and a
content-addressed on-disk result cache):

* ``info``    — configuration, cost profile, and a quick latency probe
  for a catalog symbol or node count (``python -m repro info sn1296``;
  the bare legacy form ``python -m repro sn1296`` still works).
* ``sweep``   — latency-load curves for one network under one or more
  patterns: ``python -m repro sweep sn200 --patterns RND,ADV2
  --loads 0.02:0.5:0.04 --workers 8``.
* ``compare`` — several networks under one pattern (the Figure 12-14
  layout): ``python -m repro compare sn200 fbf4 t2d4 --pattern RND``.
* ``workloads`` — PARSEC/SPLASH benchmark models across networks with
  the power/EDP join (the Figure 18 layout): ``python -m repro
  workloads sn200 fbf3 --benches barnes,fft,ocean-c --workers 8``.
* ``cache``   — result-store maintenance: ``cache stats`` (size plus
  reclaimable bytes from superseded schema/spec versions) / ``cache
  clear`` / ``cache gc [--max-bytes N] [--max-age DAYS]`` (LRU eviction
  by last use; unreachable entries always go first) / ``cache export
  PACK`` / ``cache merge STORE...`` (move entries between stores by
  content key; remote ``http://`` stores are valid on either side).
* ``serve``   — share a result store over HTTP: ``python -m repro serve
  --store results.sqlite --port 8123 [--token T]`` turns any local
  store into a rendezvous point that every shard host can use as its
  ``--cache-dir``; add ``--queue`` to also coordinate a fault-tolerant
  work queue for an elastic worker fleet (see
  :mod:`repro.engine.store.http` and :mod:`repro.engine.queue`).
* ``work``    — join a coordinator's work queue as an elastic worker:
  ``python -m repro work http://host:8123 --workers 4``.  Workers claim
  leased spec batches, heartbeat while simulating, and write results
  back through the shared store; they can join late, crash, or be
  killed — expired leases return their specs to the queue.
* ``perf``    — simulator-core timing harness: ``python -m repro perf
  [--quick] [--check]`` reports simulated cycles/sec against the
  committed ``benchmarks/BENCH_sim_core.json`` baseline and the pre-
  optimization reference (see :mod:`repro.perf`).

Repeating a ``sweep``/``compare`` with identical parameters performs
zero new simulations — every point is served from the cache.  Stores
are pluggable through explicit ``--cache-dir`` location schemes:
``dir:PATH`` (or a plain directory path) keeps the JSON tree,
``sqlite:PATH`` packs the store into one WAL-mode SQLite file,
``http://host:port`` talks to a ``repro serve`` endpoint
(``REPRO_CACHE_TOKEN`` supplies the bearer token when required), and
``s3://bucket/prefix`` / ``obj:http://host:port/bucket/prefix`` write
straight into an object-store bucket (boto3 for real S3, or any
S3-compatible endpoint named by ``REPRO_OBJECT_ENDPOINT`` — no
coordinator host at all).  The historical suffix-sniffed forms
(``*.sqlite``/``*.db``/``*.pack`` paths, ``REPRO_CACHE_BACKEND=sqlite``)
keep working as deprecated aliases that log a one-line warning.

Campaigns too large for one machine split with ``--shard INDEX/COUNT``
(disjoint, covering, stable under reordering; ``--shard-balance cost``
weighs points by predicted work instead of count) and rendezvous by
merge::

    host-a$ python -m repro sweep sn200 --loads 0.02:0.5:0.02 \\
                --shard 0/2 --cache-dir shard-a.sqlite --workers 8
    host-b$ python -m repro sweep sn200 --loads 0.02:0.5:0.02 \\
                --shard 1/2 --cache-dir shard-b.sqlite --workers 8
    # ship shard-b.sqlite to host-a, then:
    host-a$ python -m repro cache merge shard-a.sqlite shard-b.sqlite
    host-a$ python -m repro sweep sn200 --loads 0.02:0.5:0.02
    # ^ assembles the full curves as a pure cache read (0 simulations)

or over the network, with no file shipping::

    host-c$ python -m repro serve --store results.sqlite --port 8123
    host-a$ python -m repro sweep sn200 --loads 0.02:0.5:0.02 \\
                --shard 0/2 --cache-dir http://host-c:8123 --workers 8
    host-b$ python -m repro sweep sn200 --loads 0.02:0.5:0.02 \\
                --shard 1/2 --cache-dir http://host-c:8123 --workers 8
    any   $ python -m repro sweep sn200 --loads 0.02:0.5:0.02 \\
                --cache-dir http://host-c:8123   # pure cache read

Static shards assume every host survives; the work queue does not.
``serve --queue`` plus any number of ``repro work`` processes drains
the same campaign fault-tolerantly — leases expire when a worker dies
and its specs are re-issued, completed results are never recomputed::

    host-c$ python -m repro serve --store results.sqlite --queue
    host-a$ python -m repro work http://host-c:8123 --workers 8
    host-b$ python -m repro work http://host-c:8123 --workers 8
    any   $ python -m repro sweep sn200 --loads 0.02:0.5:0.02 \\
                --queue http://host-c:8123   # submit, wait, assemble
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

from .analysis import format_table
from .engine import (
    EXECUTOR_ENV,
    EXECUTORS,
    ROUTING_BUILDERS,
    ExperimentEngine,
    QueueClient,
    QueueWorker,
    RemoteStoreError,
    ResultCache,
    build_sweep_specs,
    build_workload_specs,
    estimate_campaign_seconds,
    jobs_for_specs,
    run_compare,
    run_sweep,
    shard_specs,
    spec_load,
)
from .obs import (
    ProgressLine,
    configure_logging,
    default_calibration,
    format_duration,
    get_logger,
)
from .power import TECH_45NM, network_area, static_power
from .sim import BUFFERING_STRATEGIES, NoCSimulator, SimConfig
from .topos import catalog_symbols
from .traffic import SyntheticSource, workload_names

_log = get_logger("cli")

COMMANDS = (
    "info",
    "sweep",
    "compare",
    "adaptive",
    "workloads",
    "cache",
    "serve",
    "work",
    "perf",
)


def parse_loads(text: str) -> list[float]:
    """``"0.02:0.5:0.04"`` (start:stop:step, stop-inclusive) or a comma list."""
    if ":" in text:
        parts = [float(x) for x in text.split(":")]
        if len(parts) != 3:
            raise argparse.ArgumentTypeError("range loads must be start:stop:step")
        start, stop, step = parts
        if step <= 0 or stop < start:
            raise argparse.ArgumentTypeError("need step > 0 and stop >= start")
        loads, value = [], start
        while value <= stop + 1e-9:
            loads.append(round(value, 10))
            value += step
        return loads
    loads = [float(x) for x in text.split(",") if x]
    if not loads:
        raise argparse.ArgumentTypeError("need at least one load")
    return loads


def parse_shard(text: str) -> tuple[int, int]:
    """``"0/2"`` → ``(index, count)``, validated."""
    try:
        index_text, count_text = text.split("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "shard must be INDEX/COUNT, e.g. 0/2"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError("need count >= 1 and 0 <= index < count")
    return index, count


def _build_config(args: argparse.Namespace) -> SimConfig:
    if args.preset is not None:
        config = BUFFERING_STRATEGIES[args.preset]()
    else:
        config = SimConfig()
    return config.with_smart() if args.smart else config


def _build_engine(args: argparse.Namespace) -> ExperimentEngine:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    executor = getattr(args, "executor", None)
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV, "") or "pool"
        if executor not in EXECUTORS:
            executor = "pool"
    # CLI campaigns run calibrated: executed specs feed the measured-cost
    # table, and cost-balanced shards / ETAs read it back.  Library users
    # opt in explicitly (ExperimentEngine(calibration=...)).
    return ExperimentEngine(
        cache=cache,
        max_workers=args.workers,
        calibration=default_calibration(),
        executor=executor,
    )


def _save_calibration(engine: ExperimentEngine) -> None:
    """Persist the measured-cost table if this run taught it anything."""
    calibration = engine.calibration
    if calibration is None or not calibration.dirty:
        return
    try:
        path = calibration.save()
    except OSError as exc:
        _log.warning("could not save the cost-calibration table: %s", exc)
    else:
        _log.debug("updated cost calibration at %s", path)


def _progress(done: int, total: int, spec, cached: bool) -> None:
    tag = "cache" if cached else "sim"
    print(
        f"  [{done}/{total}] {spec.topology} {spec.source.label} ({tag})",
        file=sys.stderr,
    )


def _synthetic_grid(
    args: argparse.Namespace,
    config: SimConfig,
    networks: list[str],
    patterns: list[str],
) -> tuple[list[list], dict[str, int], dict[str, str]]:
    """The campaign's spec grid, grouped as the campaign layer shards it.

    Returns ``(groups, node_counts, symbols)``: one spec group per
    independent shard partition (``sweep`` partitions each pattern
    separately — one ``run_sweep`` call each — while ``compare``
    partitions all networks together), the token → node-count map the
    cost model needs, and the token → catalog-symbol map queue workers
    rebuild topologies from.  Built with the same
    :func:`build_sweep_specs` the campaign layer uses, so content
    hashes — and therefore shard membership and queue keys — match the
    real run exactly.
    """
    groups: list[list] = []
    node_counts: dict[str, int] = {}
    symbols: dict[str, str] = {}
    for pattern in patterns:
        group: list = []
        for network in networks:
            specs, topo_map = build_sweep_specs(
                network,
                pattern,
                args.loads,
                config=config,
                packet_flits=args.packet_flits,
                routing=getattr(args, "routing", "default"),
                seed=args.seed,
                warmup=args.warmup,
                measure=args.measure,
                drain=args.drain,
            )
            group.extend(specs)
            for token, topo in topo_map.items():
                node_counts[token] = topo.num_nodes
                symbols[token] = network
        groups.append(group)
    return groups, node_counts, symbols


def _workload_grid(
    args: argparse.Namespace, benches: list[str]
) -> tuple[list[list], dict[str, int]]:
    """Spec grid for a workload campaign (one shard partition)."""
    config = SimConfig().with_smart(not args.no_smart)
    group: list = []
    node_counts: dict[str, int] = {}
    for network in args.networks:
        specs, topo_map = build_workload_specs(
            network,
            benches,
            config=config,
            intensity_scale=args.intensity_scale,
            seed=args.seed,
            warmup=args.warmup,
            measure=args.measure,
            drain=args.drain,
        )
        group.extend(specs)
        for token, topo in topo_map.items():
            node_counts[token] = topo.num_nodes
    return [group], node_counts


def _campaign_progress(
    args: argparse.Namespace,
    engine: ExperimentEngine,
    groups: list[list],
    node_counts: dict[str, int],
):
    """Progress reporting for a campaign: ``(callback, line_or_None)``.

    Default is the classic per-point stderr printer; ``--progress``
    swaps in a live single-line display with hit counts and an ETA from
    the calibrated cost table (falling back to observed pace until the
    table covers the campaign); ``--quiet`` disables both.
    """
    if args.quiet:
        return None, None
    if not getattr(args, "progress", False):
        return _progress, None
    calibration = engine.calibration
    if getattr(args, "shard", None) is not None:
        # A sharded run only completes its own slice; size the line (and
        # its pending cost) to that slice, computed with the same
        # partition function the campaign layer uses.
        index, count = args.shard
        specs = []
        for group in groups:
            specs.extend(
                shard_specs(
                    group,
                    index,
                    count,
                    balance=args.shard_balance,
                    node_counts=node_counts,
                    calibration=calibration,
                )
            )
    else:
        specs = [spec for group in groups for spec in group]

    def cost_fn(spec) -> float | None:
        nodes = node_counts.get(spec.topology)
        if nodes is None or calibration is None:
            return None
        return calibration.seconds_for(
            nodes, spec.warmup + spec.measure + spec.drain, spec_load(spec)
        )

    line = ProgressLine(total=len(specs), cost_fn=cost_fn)
    line.add_pending(specs)

    def callback(done: int, total: int, spec, cached: bool) -> None:
        line.update(spec, cached)

    return callback, line


def _print_shard_eta(
    args: argparse.Namespace,
    engine: ExperimentEngine,
    groups: list[list],
    node_counts: dict[str, int],
) -> None:
    """Announce the sharded slice and its calibrated time estimate."""
    index, count = args.shard
    owned: list = []
    for group in groups:
        owned.extend(
            shard_specs(
                group,
                index,
                count,
                balance=args.shard_balance,
                node_counts=node_counts,
                calibration=engine.calibration,
            )
        )
    total = sum(len(group) for group in groups)
    seconds = estimate_campaign_seconds(owned, node_counts, engine.calibration)
    if seconds is not None:
        print(
            f"  shard {index}/{count}: {len(owned)} of {total} points, "
            f"est ~{format_duration(seconds)} simulation time (calibrated, "
            "cache hits not counted)",
            file=sys.stderr,
        )
    else:
        print(
            f"  shard {index}/{count}: {len(owned)} of {total} points "
            "(no calibrated ETA — the cost table has no measurements for "
            "this grid yet)",
            file=sys.stderr,
        )


def _print_stage_seconds(stats) -> None:
    """One-line per-stage timing breakdown after a campaign."""
    stages = stats.stage_seconds
    if not stages.get("total"):
        return
    print(
        f"  stages: cache-lookup {stages.get('cache_lookup', 0.0):.2f}s, "
        f"dispatch {stages.get('dispatch', 0.0):.2f}s "
        f"(simulate {stages.get('simulate', 0.0):.2f}s summed), "
        f"write-back {stages.get('write_back', 0.0):.2f}s, "
        f"total {stages.get('total', 0.0):.2f}s"
    )


def _curve_rows(curve) -> list[list]:
    return [
        [
            f"{p.load:g}",
            "saturated" if p.saturated else round(p.latency, 2),
            round(p.throughput, 4),
        ]
        for p in curve.points
    ]


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="simulation worker processes (default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="miss dispatch tier: 'pool' (scalar core, default), 'batch' "
        "(NumPy lockstep kernel for shape-compatible specs; needs the "
        "optional numpy dependency), or 'auto' (batch when available "
        "and the group is big enough to win per the cost calibration); "
        "REPRO_EXECUTOR sets the default",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result store: a cache directory (default .repro_cache), a "
        "sqlite:/dir: URL, an http:// 'repro serve' endpoint, or an "
        "s3://bucket/prefix / obj:http://host:port/bucket/prefix "
        "object-store bucket (.sqlite/.db/.pack paths still work as "
        "deprecated aliases)",
    )
    parser.add_argument(
        "--shard",
        type=parse_shard,
        default=None,
        metavar="INDEX/COUNT",
        help="run only this shard of the campaign grid (e.g. 0/2; "
        "partitioned by spec content hash — disjoint, covering, "
        "order-independent); merge the shard stores with 'cache merge' "
        "(or point every shard at one 'repro serve' store), then rerun "
        "unsharded to assemble results from cache",
    )
    parser.add_argument(
        "--shard-balance",
        choices=("hash", "cost"),
        default="hash",
        help="shard partition: 'hash' for even point counts (default), "
        "'cost' to balance predicted work (load x network size x "
        "simulated cycles) across shards",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live one-line progress on stderr (done/total, cache hits, "
        "ETA from the measured-cost calibration table) instead of "
        "per-point lines",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-point progress on stderr",
    )


def _add_sim_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--loads",
        type=parse_loads,
        default=[0.008, 0.06, 0.16, 0.30],
        help="comma list or start:stop:step range (flits/node/cycle)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(BUFFERING_STRATEGIES),
        default=None,
        help="buffering strategy preset",
    )
    parser.add_argument(
        "--smart",
        action="store_true",
        help="enable SMART links (H=9)",
    )
    parser.add_argument(
        "--routing",
        default="default",
        choices=sorted(ROUTING_BUILDERS),
        help="routing scheme (default: per-topology paper default; "
        "ugal-l/ugal-g/deflect/xy-adapt read live congestion state)",
    )
    parser.add_argument("--packet-flits", type=int, default=6)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup", type=int, default=300)
    parser.add_argument("--measure", type=int, default=800)
    parser.add_argument("--drain", type=int, default=1500)
    parser.add_argument(
        "--no-stop",
        action="store_true",
        help="simulate every load, even past saturation",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="catalog symbols: " + " ".join(catalog_symbols()),
    )
    sub = parser.add_subparsers(dest="command")

    info = sub.add_parser("info", help="summarize one network")
    info.add_argument("network", help="catalog symbol or node count")

    sweep = sub.add_parser("sweep", help="latency-load curves for one network")
    sweep.add_argument("network", help="catalog symbol or node count")
    sweep.add_argument(
        "--patterns",
        default="RND",
        help="comma list of pattern acronyms (default RND)",
    )
    sweep.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also write curves + engine stats as JSON",
    )
    sweep.add_argument(
        "--queue",
        default=None,
        metavar="URL",
        help="submit the grid to a 'repro serve --queue' coordinator, "
        "wait for the worker fleet to drain it, then assemble the "
        "curves from the shared store (a pure cache read); "
        "incompatible with --shard",
    )
    _add_sim_options(sweep)
    _add_engine_options(sweep)

    compare = sub.add_parser("compare", help="several networks, one pattern")
    compare.add_argument(
        "networks", nargs="+", help="catalog symbols or node counts"
    )
    compare.add_argument("--pattern", default="RND")
    compare.add_argument(
        "--model",
        action="store_true",
        help="use the analytical large-scale model instead of "
        "cycle-accurate simulation (for N=1296)",
    )
    _add_sim_options(compare)
    _add_engine_options(compare)

    adaptive = sub.add_parser(
        "adaptive",
        help="Fig 20-style adaptive-routing study (routing x traffic x load)",
    )
    adaptive.add_argument(
        "networks",
        nargs="*",
        default=["sn200", "cm4"],
        help="catalog symbols (default: sn200 cm4)",
    )
    adaptive.add_argument(
        "--routings",
        default="default,valiant,ugal-l,deflect",
        help="comma list of routing names (default: "
        "default,valiant,ugal-l,deflect)",
    )
    adaptive.add_argument(
        "--traffic",
        default="ADV1,burst:ADV1:64+192",
        help="comma list of traffic tokens — pattern acronyms or "
        "burst:/hotspot:/transient: variants (default: ADV1 steady + bursty)",
    )
    adaptive.add_argument(
        "--loads",
        type=parse_loads,
        default=[0.02, 0.06, 0.10, 0.14, 0.18, 0.22],
        help="comma list or start:stop:step range (flits/node/cycle)",
    )
    adaptive.add_argument("--seed", type=int, default=1)
    adaptive.add_argument("--warmup", type=int, default=300)
    adaptive.add_argument("--measure", type=int, default=800)
    adaptive.add_argument("--drain", type=int, default=1500)
    adaptive.add_argument(
        "--no-stop",
        action="store_true",
        help="simulate every load, even past saturation",
    )
    adaptive.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also write all curves + engine stats as JSON",
    )
    _add_engine_options(adaptive)

    workloads = sub.add_parser(
        "workloads",
        help="PARSEC/SPLASH workload models with the power/EDP join (Fig 18)",
    )
    workloads.add_argument(
        "networks",
        nargs="+",
        help="catalog symbols (cycle times are per symbol)",
    )
    workloads.add_argument(
        "--benches",
        default="barnes,fft,ocean-c,water-s",
        help="comma list of benchmark names "
        "(default barnes,fft,ocean-c,water-s)",
    )
    workloads.add_argument(
        "--baseline",
        default=None,
        help="EDP normalisation network (default: first network)",
    )
    workloads.add_argument(
        "--intensity-scale",
        type=float,
        default=1.0,
        help="multiply each benchmark's injection intensity",
    )
    workloads.add_argument(
        "--no-smart",
        action="store_true",
        help="disable SMART links (Figure 18 uses SMART)",
    )
    workloads.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also write rows as JSON to this path",
    )
    workloads.add_argument("--seed", type=int, default=3)
    workloads.add_argument("--warmup", type=int, default=300)
    workloads.add_argument("--measure", type=int, default=600)
    workloads.add_argument("--drain", type=int, default=1200)
    _add_engine_options(workloads)

    cache = sub.add_parser(
        "cache",
        help="result-store maintenance",
        description="Result-store maintenance.  A two-host campaign "
        "rendezvous looks like: run each shard with --shard I/N "
        "--cache-dir shard-I.sqlite, ship the packs to one host, "
        "'cache merge shard-0.sqlite shard-1.sqlite', then rerun "
        "unsharded — a pure cache read.",
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "gc", "export", "merge")
    )
    cache.add_argument(
        "stores",
        nargs="*",
        metavar="STORE",
        help="export: one destination store; merge: source stores to "
        "copy in (directories, sqlite:/dir: URLs, http:// endpoints, "
        "or s3://bucket/prefix buckets)",
    )
    cache.add_argument("--cache-dir", default=None)
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: evict LRU entries until the store fits",
    )
    cache.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="gc: evict entries untouched for this many days",
    )

    serve = sub.add_parser(
        "serve",
        help="share a result store over HTTP (sharded-campaign rendezvous)",
        description="Serve a local result store over the JSON/HTTP wire "
        "protocol so shard hosts can use it as their --cache-dir "
        "(http://HOST:PORT) — results rendezvous over the network "
        "instead of shipping pack files.  With --queue the server also "
        "coordinates a fault-tolerant work queue that 'repro work' "
        "processes drain.  Stop with Ctrl-C or SIGTERM: in-flight "
        "requests finish, queue state is persisted, and the store is "
        "closed cleanly (an ordinary pack/directory afterwards).",
    )
    serve.add_argument(
        "--store",
        default="store.sqlite",
        help="store to serve: a .sqlite/.db/.pack file (default "
        "store.sqlite, created on first write), a cache directory, or "
        "a sqlite:/dir: URL",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; use 0.0.0.0 to accept "
        "other hosts)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8123,
        help="TCP port (default 8123; 0 picks a free port)",
    )
    serve.add_argument(
        "--token",
        default=None,
        help="require 'Authorization: Bearer TOKEN' on every request "
        "(default: REPRO_CACHE_TOKEN if set; clients send the same "
        "variable)",
    )
    serve.add_argument(
        "--queue",
        action="store_true",
        help="coordinate a work queue on this store (endpoints "
        "queue/submit..queue/status); state persists through the store "
        "and is rebuilt on restart",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=60.0,
        help="work-queue lease duration; a worker silent this long "
        "forfeits its batch back to the queue (default 60)",
    )
    serve.add_argument(
        "--quarantine-after",
        type=int,
        default=2,
        help="park a spec after it fails this many distinct workers "
        "(default 2)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="park a spec after this many failed attempts in total, "
        "regardless of worker identity (default 5)",
    )
    serve.add_argument(
        "--fail-every",
        type=int,
        default=0,
        metavar="N",
        help="chaos testing: fail every Nth store request with an "
        "injected 503 (0 disables; /health and /metrics are exempt)",
    )

    work = sub.add_parser(
        "work",
        help="join a 'repro serve --queue' coordinator as an elastic worker",
        description="Claim leased spec batches from a coordinator's work "
        "queue, simulate them, and write results back through the shared "
        "store.  Any number of workers may run concurrently and join or "
        "leave mid-campaign; a killed worker's lease expires and its "
        "specs are re-issued to the survivors.  SIGINT/SIGTERM drains "
        "gracefully: the in-flight batch finishes and its lease is "
        "settled before exit (a second signal exits immediately).",
    )
    work.add_argument("url", help="coordinator URL (http://host:8123)")
    work.add_argument(
        "--id",
        dest="worker_id",
        default=None,
        help="worker identity shown in queue/status and quarantine "
        "reports (default host-pid)",
    )
    work.add_argument(
        "--max-specs",
        type=int,
        default=4,
        help="specs to claim per lease (default 4)",
    )
    work.add_argument(
        "--poll",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="idle wait between claims while the queue is empty "
        "(default 2)",
    )
    work.add_argument(
        "--workers",
        type=int,
        default=1,
        help="simulation worker processes for claimed batches (default 1)",
    )
    work.add_argument(
        "--token",
        default=None,
        help="bearer token (default: REPRO_CACHE_TOKEN if set)",
    )
    work.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the worker's tally as JSON to this path on exit",
    )

    # Listed for --help only; dispatch short-circuits to repro.perf.
    sub.add_parser(
        "perf",
        help="simulator-core timing harness "
        "(see python -m repro perf --help)",
        add_help=False,
    )
    return parser


def cmd_info(args: argparse.Namespace) -> int:
    from .engine import resolve_topology

    topology = resolve_topology(args.network)
    area = network_area(topology, TECH_45NM, edge_buffer_flits=None)
    power = static_power(topology, TECH_45NM, edge_buffer_flits=None)
    sim = NoCSimulator(topology, SimConfig().with_smart(), seed=1)
    probe = sim.run(
        SyntheticSource(topology, "RND", 0.05), warmup=200, measure=500, drain=1000
    )
    print(
        format_table(
            ["property", "value"],
            [
                ["name", topology.name],
                ["nodes", topology.num_nodes],
                ["routers", topology.num_routers],
                ["network radix k'", topology.network_radix],
                ["router radix k", topology.router_radix],
                ["diameter", topology.diameter],
                ["avg wire [hops]", round(topology.average_wire_length(), 2)],
                ["area [mm^2]", round(area.total, 1)],
                ["static power [W]", round(power.total, 2)],
                ["latency @0.05 RND [cyc]", round(probe.avg_latency, 1)],
                ["throughput @0.05", round(probe.throughput, 4)],
            ],
            title="Network summary (45nm, SMART, RTT buffers)",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    config = _build_config(args)
    patterns = [p for p in args.patterns.split(",") if p]
    if args.queue is not None:
        return _sweep_queued(args, config, patterns)
    curves = {}
    with _build_engine(args) as engine:
        groups, node_counts, _symbols = _synthetic_grid(
            args, config, [args.network], patterns
        )
        progress, line = _campaign_progress(args, engine, groups, node_counts)
        if args.shard is not None and not args.quiet:
            _print_shard_eta(args, engine, groups, node_counts)
        for pattern in patterns:
            before = engine.total_stats.snapshot()
            curve = run_sweep(
                engine,
                args.network,
                pattern,
                args.loads,
                config=config,
                packet_flits=args.packet_flits,
                routing=args.routing,
                seed=args.seed,
                warmup=args.warmup,
                measure=args.measure,
                drain=args.drain,
                stop_after_saturation=not args.no_stop,
                shard=args.shard,
                shard_balance=args.shard_balance,
                progress=progress,
            )
            curves[pattern] = curve
            if line is not None:
                line.finish()
            stats = engine.total_stats.since(before)
            if args.shard is not None:
                title = (
                    f"{args.network} / {pattern} "
                    f"[shard {args.shard[0]}/{args.shard[1]}: "
                    f"{len(curve.points)} of {len(args.loads)} points]"
                )
            else:
                title = (
                    f"{args.network} / {pattern} (sat throughput "
                    f"{curve.saturation_throughput():.4f})"
                )
            print(
                format_table(
                    ["load", "latency [cyc]", "throughput"],
                    _curve_rows(curve),
                    title=title,
                )
            )
            print(
                f"  engine: {stats.cache_hits} cached, "
                f"{stats.executed} simulated, {stats.workers} workers\n"
            )
        total = engine.total_stats
        _print_stage_seconds(total)
        _save_calibration(engine)
    if args.json_path:
        payload = {
            "network": args.network,
            "shard": None if args.shard is None else list(args.shard),
            "curves": {p: c.to_dict() for p, c in curves.items()},
            "engine": total.to_dict(),
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json_path}")
    return 0


def _sweep_queued(
    args: argparse.Namespace, config: SimConfig, patterns: list[str]
) -> int:
    """``sweep --queue URL``: submit the grid, wait for the fleet, then
    assemble the curves from the coordinator's store.

    The submit is idempotent (keys are content hashes), so rerunning a
    crashed submit-and-wait is safe; specs whose results are already in
    the store are marked done at submit time and never re-issued.  The
    final assembly is the ordinary unsharded sweep pointed at the
    coordinator URL — a pure cache read once the queue drains.
    """
    if args.shard is not None:
        raise ValueError(
            "--queue and --shard are mutually exclusive: the queue "
            "balances work across the fleet dynamically"
        )
    if args.no_cache:
        raise ValueError(
            "--queue needs the cache: results rendezvous in the "
            "coordinator's store"
        )
    url = args.queue
    groups, node_counts, symbols = _synthetic_grid(
        args, config, [args.network], patterns
    )
    specs = [spec for group in groups for spec in group]
    jobs = jobs_for_specs(specs, node_counts, default_calibration())
    client = QueueClient(url)
    reply = client.submit(jobs, symbols)
    if not args.quiet:
        print(
            f"  queue: submitted {len(jobs)} specs to {url} "
            f"({reply['accepted']} accepted, {reply['cached']} already "
            f"cached, {reply['duplicates']} already queued)",
            file=sys.stderr,
        )
    _wait_for_queue(args, client)
    # The queue is drained: every result is in the coordinator's store.
    # Assemble with the ordinary sweep path (saturation staging and all)
    # pointed at that store — zero simulations by construction.
    args.queue = None
    args.cache_dir = url
    return cmd_sweep(args)


def _wait_for_queue(args: argparse.Namespace, client: QueueClient) -> dict:
    """Poll ``queue/status`` until the campaign drains.

    Shows a live progress line (unless ``--quiet``) with claimed-vs-done
    counts and an ETA extrapolated from the fleet's observed completion
    pace.  Quarantined specs fail the wait loudly: their results will
    never arrive, so assembling curves would silently re-simulate them
    locally — surfacing the poison is the better failure.
    """
    poll = max(0.2, getattr(args, "poll", 1.0) or 1.0)
    started = time.monotonic()
    base_done: int | None = None
    status: dict = {}
    try:
        while True:
            status = client.status()
            done = status["done"]
            if base_done is None:
                base_done = done
            if not args.quiet:
                elapsed = time.monotonic() - started
                pace = (done - base_done) / elapsed if elapsed > 0 else 0.0
                remaining = status["total"] - done - status["quarantined"]
                eta = (
                    f", eta ~{format_duration(remaining / pace)}"
                    if pace > 0 and remaining > 0
                    else ""
                )
                workers = len(status["workers"])
                print(
                    f"\r  queue: {done}/{status['total']} done, "
                    f"{status['leased']} leased, {status['pending']} "
                    f"pending, {workers} worker(s){eta}    ",
                    end="",
                    file=sys.stderr,
                )
            if status["drained"]:
                break
            time.sleep(poll)
    finally:
        if not args.quiet:
            print(file=sys.stderr)
    if status.get("quarantined"):
        for item in status["quarantine"]:
            print(
                f"  quarantined {item['key'][:12]}… after "
                f"{item['attempts']} attempts by "
                f"{len(item['workers'])} worker(s): {item['error']}",
                file=sys.stderr,
            )
        raise ValueError(
            f"{status['quarantined']} spec(s) were quarantined by the "
            "queue; fix the poison specs (or the workers) and resubmit"
        )
    return status


def cmd_adaptive(args: argparse.Namespace) -> int:
    from .analysis import adaptive_study

    if args.shard is not None:
        print("error: adaptive does not support --shard", file=sys.stderr)
        return 2
    routings = [r for r in args.routings.split(",") if r]
    traffic = [t for t in args.traffic.split(",") if t]
    with _build_engine(args) as engine:
        study = adaptive_study(
            engine,
            args.networks,
            routings,
            traffic,
            args.loads,
            seed=args.seed,
            warmup=args.warmup,
            measure=args.measure,
            drain=args.drain,
            stop_after_saturation=not args.no_stop,
        )
        stats = engine.total_stats
        _save_calibration(engine)
    print(study.format_table())
    print(
        f"  engine: {stats.cache_hits} cached, "
        f"{stats.executed} simulated, {stats.workers} workers\n"
    )
    _print_stage_seconds(stats)
    if args.json_path:
        payload = {"study": study.to_dict(), "engine": stats.to_dict()}
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json_path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _build_config(args)
    if args.model and args.shard is not None:
        raise ValueError("--shard applies to simulation campaigns, not --model")
    with _build_engine(args) as engine:
        if args.model:
            from dataclasses import replace

            from .analysis import model_curves
            from .engine import resolve_topology

            curves = model_curves(
                {symbol: resolve_topology(symbol) for symbol in args.networks},
                args.pattern,
                args.loads,
                config=replace(config, packet_flits=args.packet_flits),
                cache=engine.cache if engine.cache is not None else False,
                seed=args.seed,
            )
        else:
            groups, node_counts, _symbols = _synthetic_grid(
                args, config, args.networks, [args.pattern]
            )
            progress, line = _campaign_progress(args, engine, groups, node_counts)
            if args.shard is not None and not args.quiet:
                _print_shard_eta(args, engine, groups, node_counts)
            curves = run_compare(
                engine,
                {symbol: symbol for symbol in args.networks},
                args.pattern,
                args.loads,
                config=config,
                packet_flits=args.packet_flits,
                routing=args.routing,
                seed=args.seed,
                warmup=args.warmup,
                measure=args.measure,
                drain=args.drain,
                stop_after_saturation=not args.no_stop,
                shard=args.shard,
                shard_balance=args.shard_balance,
                progress=progress,
            )
            if line is not None:
                line.finish()
        stats = engine.total_stats
        _save_calibration(engine)
    if args.shard is None:
        rows = []
        for label in args.networks:
            curve = curves[label]
            rows.append(
                [
                    label,
                    round(curve.zero_load_latency(), 2),
                    f"{curve.saturation_throughput():.4f}",
                    len(curve.points),
                ]
            )
        print(
            format_table(
                ["network", "zero-load latency", "sat throughput", "points"],
                rows,
                title=f"Pattern {args.pattern} over "
                f"{min(args.loads):g}..{max(args.loads):g}",
            )
        )
    else:
        computed = sum(len(curves[label].points) for label in args.networks)
        grid = len(args.networks) * len(args.loads)
        print(
            f"shard {args.shard[0]}/{args.shard[1]}: computed {computed} "
            f"of {grid} grid points (merge stores, then rerun unsharded "
            "to assemble curves)"
        )
    print(
        f"  engine: {stats.cache_hits} cached, {stats.executed} simulated, "
        f"{stats.workers} workers\n"
    )
    _print_stage_seconds(stats)
    for label in args.networks:
        print(
            format_table(
                ["load", "latency [cyc]", "throughput"],
                _curve_rows(curves[label]),
                title=f"{label} / {args.pattern}",
            )
        )
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from .analysis import edp_gain, edp_table, workload_table

    benches = [b for b in args.benches.split(",") if b]
    unknown = set(benches) - set(workload_names())
    if unknown:
        raise ValueError(
            f"unknown benchmarks {sorted(unknown)}; options: {workload_names()}"
        )
    baseline = args.baseline or args.networks[0]
    if baseline not in args.networks:
        raise ValueError(f"baseline {baseline!r} is not among the networks")
    if args.shard is not None:
        return _workloads_shard(args, benches)
    with _build_engine(args) as engine:
        groups, node_counts = _workload_grid(args, benches)
        progress, line = _campaign_progress(args, engine, groups, node_counts)
        table = workload_table(
            args.networks,
            benches,
            smart=not args.no_smart,
            intensity_scale=args.intensity_scale,
            seed=args.seed,
            warmup=args.warmup,
            measure=args.measure,
            drain=args.drain,
            engine=engine,
            progress=progress,
        )
        if line is not None:
            line.finish()
        stats = engine.total_stats
        _save_calibration(engine)
    edp = edp_table(table, baseline)
    for bench in benches:
        rows = [
            [
                symbol,
                round(table[symbol][bench].avg_latency, 1),
                round(table[symbol][bench].throughput, 4),
                round(table[symbol][bench].total_power_w, 2),
                f"{table[symbol][bench].energy_delay_product:.3e}",
                round(edp[bench][symbol], 3),
            ]
            for symbol in args.networks
        ]
        print(
            format_table(
                [
                    "network",
                    "latency [cyc]",
                    "thr [f/n/c]",
                    "power [W]",
                    "EDP [Js]",
                    f"EDP/{baseline}",
                ],
                rows,
                title=f"Workload '{bench}' "
                f"({'no SMART' if args.no_smart else 'SMART'}, 45nm)",
            )
        )
        print()
    others = [sym for sym in args.networks if sym != baseline]
    if others and len(benches) > 1:
        gains = "  ".join(
            f"{sym}: {edp_gain(edp, sym, baseline):+.0%}" for sym in others
        )
        print(f"  EDP gain vs {baseline} (geomean): {gains}")
    print(
        f"  engine: {stats.cache_hits} cached, {stats.executed} simulated, "
        f"{stats.workers} workers"
    )
    _print_stage_seconds(stats)
    if args.json_path:
        payload = {
            "baseline": baseline,
            "rows": [
                table[symbol][bench].to_dict()
                for symbol in args.networks
                for bench in benches
            ],
            "edp_normalized": edp,
            "engine": {
                "cache_hits": stats.cache_hits,
                "simulated": stats.executed,
            },
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json_path}")
    return 0


def _workloads_shard(args: argparse.Namespace, benches) -> int:
    """Cache-population pass for one shard of a workload campaign.

    The power/EDP join needs the full (network × benchmark) table, so a
    shard run only simulates its slice of the grid; merge the shard
    stores and rerun unsharded for the joined report.
    """
    from .engine import workload_compare

    config = SimConfig().with_smart(not args.no_smart)
    with _build_engine(args) as engine:
        groups, node_counts = _workload_grid(args, benches)
        progress, line = _campaign_progress(args, engine, groups, node_counts)
        if not args.quiet:
            _print_shard_eta(args, engine, groups, node_counts)
        table = workload_compare(
            engine,
            {symbol: symbol for symbol in args.networks},
            benches,
            config=config,
            intensity_scale=args.intensity_scale,
            seed=args.seed,
            warmup=args.warmup,
            measure=args.measure,
            drain=args.drain,
            shard=args.shard,
            shard_balance=args.shard_balance,
            progress=progress,
        )
        if line is not None:
            line.finish()
        stats = engine.total_stats
        _save_calibration(engine)
    computed = sum(len(cells) for cells in table.values())
    grid = len(args.networks) * len(benches)
    print(
        f"shard {args.shard[0]}/{args.shard[1]}: computed {computed} of "
        f"{grid} grid points (merge stores, then rerun unsharded for the "
        "power/EDP join)"
    )
    print(
        f"  engine: {stats.cache_hits} cached, {stats.executed} simulated, "
        f"{stats.workers} workers"
    )
    if args.json_path:
        payload = {
            "shard": list(args.shard),
            "computed": computed,
            "grid": grid,
            "engine": stats.to_dict(),
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json_path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .engine import JobQueue, RemoteStore, StoreServer, open_backend
    from .engine.store import TOKEN_ENV

    backend = open_backend(args.store)
    if isinstance(backend, RemoteStore):
        raise ValueError("serve needs a local store, not another server's URL")
    token = args.token if args.token is not None else os.environ.get(TOKEN_ENV)
    queue = None
    if args.queue:
        queue = JobQueue.load(
            backend,
            lease_seconds=args.lease_seconds,
            quarantine_workers=args.quarantine_after,
            max_attempts=args.max_attempts,
        )
    server = StoreServer(
        backend,
        host=args.host,
        port=args.port,
        token=token or None,
        queue=queue,
        fail_every=args.fail_every,
    )
    auth = "token required" if token else "no auth"
    mode = "store + work queue" if queue is not None else "store"
    print(
        f"serving {backend.location} at {server.url} ({mode}, {auth}); "
        "Ctrl-C or SIGTERM to stop",
        file=sys.stderr,
    )
    if args.fail_every:
        print(
            f"  chaos: failing every {args.fail_every}th request with 503",
            file=sys.stderr,
        )
    # Graceful shutdown: the accept loop runs on a daemon thread while
    # the main thread waits on an event the signal handlers set.  close()
    # then stops accepting, joins in-flight request threads, persists
    # queue state, and closes the backing store — a Ctrl-C mid-campaign
    # never drops a SQLite write or the queue's bookkeeping.
    stop = threading.Event()

    def handle_signal(signum, frame) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, handle_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    server.start()
    try:
        stop.wait()
        print("shutting down: draining requests, closing store", file=sys.stderr)
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.close()
    return 0


def cmd_work(args: argparse.Namespace) -> int:
    worker = QueueWorker(
        args.url,
        worker_id=args.worker_id,
        max_specs=args.max_specs,
        poll_seconds=args.poll,
        max_workers=args.workers,
        token=args.token,
    )
    signals_seen = 0

    def handle_signal(signum, frame) -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen == 1:
            print(
                "\ndraining: finishing the in-flight batch, then exiting "
                "(signal again to quit now)",
                file=sys.stderr,
            )
            worker.request_stop()
        else:
            raise SystemExit(130)

    previous = {
        sig: signal.signal(sig, handle_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        stats = worker.run()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(
        f"worker {worker.worker_id}: {stats.leases} leases, "
        f"{stats.done} done ({stats.cache_hits} cached, "
        f"{stats.executed} simulated), {stats.failed} failed, "
        f"{stats.released} released"
    )
    if args.json_path:
        payload = {"worker": worker.worker_id, **stats.to_dict()}
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json_path}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action in ("export", "merge"):
        return _cache_transfer(cache, args)
    if args.stores:
        raise ValueError(f"cache {args.action} takes no STORE arguments")
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.location}")
        return 0
    if args.action == "gc":
        report = cache.gc(max_bytes=args.max_bytes, max_age_days=args.max_age)
        print(
            format_table(
                ["property", "value"],
                [
                    ["store", cache.location],
                    ["scanned", report.scanned_entries],
                    ["removed", report.removed_entries],
                    ["removed [MB]", round(report.removed_bytes / 1e6, 2)],
                    ["kept", report.kept_entries],
                    ["kept [MB]", round(report.kept_bytes / 1e6, 2)],
                ],
                title="Result cache gc (LRU by mtime)",
            )
        )
        return 0
    stats = cache.stats()
    print(
        format_table(
            ["property", "value"],
            [
                ["store", cache.location],
                ["backend", type(cache.backend).__name__],
                ["entries", stats.entries],
                ["size [MB]", round(stats.size_mb, 2)],
                ["reclaimable entries", stats.reclaimable_entries],
                ["reclaimable [MB]", round(stats.reclaimable_bytes / 1e6, 2)],
            ],
            title="Result cache",
        )
    )
    return 0


def _cache_transfer(cache: ResultCache, args: argparse.Namespace) -> int:
    """``cache export PACK`` / ``cache merge STORE...``: move entries
    between stores by content key (skip-if-present, conflicts counted)."""
    from .engine import merge_stores, open_backend
    from .obs import TransferLine

    def transfer(destination, source):
        # The live line streams per copied page: keys moved (however
        # they resolved), bytes, and a pace ETA against the source's
        # total entry count.
        line = TransferLine(source.stats().entries, label="transfer")
        report = merge_stores(
            destination,
            source,
            progress=lambda delta: line.advance(
                keys=delta.copied + delta.skipped + delta.conflicts,
                nbytes=delta.copied_bytes,
            ),
        )
        line.finish()
        return report

    if args.action == "export":
        if len(args.stores) != 1:
            raise ValueError("cache export takes exactly one destination store")
        destination = open_backend(args.stores[0])
        report = transfer(destination, cache.backend)
        print(
            f"exported {cache.location} -> {destination.location}: "
            f"{report.copied} copied "
            f"({round(report.copied_bytes / 1e6, 2)} MB), "
            f"{report.skipped} already present, "
            f"{report.conflicts} conflicts kept theirs"
        )
        destination.close()
        return 0
    if not args.stores:
        raise ValueError("cache merge needs at least one source store")
    for source_location in args.stores:
        source = open_backend(source_location)
        report = transfer(cache.backend, source)
        print(
            f"merged {source.location} -> {cache.location}: "
            f"{report.copied} copied "
            f"({round(report.copied_bytes / 1e6, 2)} MB), "
            f"{report.skipped} already present, "
            f"{report.conflicts} conflicts kept ours"
        )
        source.close()
    return 0


def main(argv: list[str]) -> int:
    # One logging setup for every subcommand (REPRO_LOG / REPRO_LOG_FORMAT);
    # the library itself never calls this — embedders configure their own.
    configure_logging()
    if not argv or argv[0] in ("-h", "--help"):
        build_parser().print_help()
        return 0
    if argv[0] == "perf":
        # The perf harness owns its own argparse surface (see repro.perf).
        from .perf import main as perf_main

        return perf_main(argv[1:])
    if argv[0] not in COMMANDS:
        argv = ["info", *argv]  # legacy: ``python -m repro sn1296``
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "sweep": cmd_sweep,
        "compare": cmd_compare,
        "adaptive": cmd_adaptive,
        "workloads": cmd_workloads,
        "cache": cmd_cache,
        "serve": cmd_serve,
        "work": cmd_work,
    }[args.command]
    try:
        return handler(args)
    except (ValueError, LookupError, RemoteStoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
