"""Command-line summary: ``python -m repro [symbol|N]``.

Prints the configuration, cost profile, and a quick latency probe for a
catalog network (``python -m repro sn1296``) or the best Slim NoC design
for a node count (``python -m repro 800``).
"""

from __future__ import annotations

import sys

from .analysis import format_table
from .core import SlimNoC
from .core.slimnoc import design_for_nodes
from .power import TECH_45NM, network_area, static_power
from .sim import NoCSimulator, SimConfig
from .topos import catalog_symbols, make_network
from .traffic import SyntheticSource


def _resolve(argument: str):
    if argument.isdigit():
        config = design_for_nodes(int(argument))
        layout = "sn_gr" if config.square_group_grid else "sn_subgr"
        return SlimNoC(config.q, config.concentration, layout=layout)
    return make_network(argument)


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("catalog symbols:", " ".join(catalog_symbols()))
        return 0
    topology = _resolve(argv[0])
    area = network_area(topology, TECH_45NM, edge_buffer_flits=None)
    power = static_power(topology, TECH_45NM, edge_buffer_flits=None)
    sim = NoCSimulator(topology, SimConfig().with_smart(), seed=1)
    probe = sim.run(
        SyntheticSource(topology, "RND", 0.05), warmup=200, measure=500, drain=1000
    )
    print(format_table(
        ["property", "value"],
        [
            ["name", topology.name],
            ["nodes", topology.num_nodes],
            ["routers", topology.num_routers],
            ["network radix k'", topology.network_radix],
            ["router radix k", topology.router_radix],
            ["diameter", topology.diameter],
            ["avg wire [hops]", round(topology.average_wire_length(), 2)],
            ["area [mm^2]", round(area.total, 1)],
            ["static power [W]", round(power.total, 2)],
            ["latency @0.05 RND [cyc]", round(probe.avg_latency, 1)],
            ["throughput @0.05", round(probe.throughput, 4)],
        ],
        title="Network summary (45nm, SMART, RTT buffers)",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
