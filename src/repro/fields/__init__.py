"""Finite-field substrate for Slim NoC graph generation."""

from .finite_field import FiniteField, finite_field
from .primes import factor_prime_power, is_prime, is_prime_power, prime_powers_up_to

__all__ = [
    "FiniteField",
    "finite_field",
    "factor_prime_power",
    "is_prime",
    "is_prime_power",
    "prime_powers_up_to",
]
