"""Small-number primality and prime-power utilities.

Slim NoC parameters ``q`` are tiny prime powers (q <= 37 in the paper's
analyses), so straightforward trial division is both adequate and the most
readable choice.
"""

from __future__ import annotations


def is_prime(n: int) -> bool:
    """Return True when ``n`` is a prime number."""
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


def factor_prime_power(n: int) -> tuple[int, int]:
    """Decompose ``n`` as ``p ** m`` with ``p`` prime.

    Raises:
        ValueError: when ``n`` is not a prime power.
    """
    if n < 2:
        raise ValueError(f"{n} is not a prime power")
    for p in range(2, n + 1):
        if not is_prime(p):
            continue
        if n % p != 0:
            continue
        m = 0
        remaining = n
        while remaining % p == 0:
            remaining //= p
            m += 1
        if remaining != 1:
            raise ValueError(f"{n} is not a prime power")
        return p, m
    raise ValueError(f"{n} is not a prime power")


def is_prime_power(n: int) -> bool:
    """Return True when ``n`` is ``p ** m`` for a prime ``p`` and ``m >= 1``."""
    try:
        factor_prime_power(n)
    except ValueError:
        return False
    return True


def prime_powers_up_to(limit: int) -> list[int]:
    """All prime powers ``<= limit`` in increasing order (excluding 1)."""
    return [n for n in range(2, limit + 1) if is_prime_power(n)]
