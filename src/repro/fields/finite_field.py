"""Finite fields GF(p^m) with integer-coded elements.

Slim NoC's key construction trick (paper section 3.5.2) is to build the
underlying MMS graphs over *non-prime* finite fields such as GF(4), GF(8),
and GF(9).  This module provides those fields:

* Elements are encoded as integers ``0 .. q-1``.  For an extension field
  GF(p^m) the integer's base-``p`` digits are the coefficients of a
  polynomial over GF(p) (little-endian: digit ``i`` multiplies ``x**i``).
* Multiplication reduces modulo a monic irreducible polynomial found by
  deterministic search (smallest encoded polynomial first, so fields are
  reproducible run to run).
* Full operation tables are precomputed; all per-element operations are
  O(1) lookups afterwards, which keeps graph generation fast.

The paper's Table 3 presents GF(9) and GF(8) through addition, product,
and additive-inverse tables with symbolic element names
(``0 1 2 u v w x y z``); :meth:`FiniteField.format_table` reproduces that
presentation.
"""

from __future__ import annotations

from functools import lru_cache

from .primes import factor_prime_power

#: Symbolic element names used by the paper's Table 3.  The first elements
#: are named after their integer value; subsequent ones use letters starting
#: at "u" as in the paper (GF(9) = {0,1,2,u,v,w,x,y,z}).
_LETTERS = "uvwxyzijklmnopqrst"


def _poly_mul_mod(a: tuple[int, ...], b: tuple[int, ...], p: int) -> tuple[int, ...]:
    """Multiply two coefficient tuples over GF(p) (no modulus reduction)."""
    result = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            result[i + j] = (result[i + j] + ca * cb) % p
    return tuple(result)


def _poly_divmod(num: tuple[int, ...], den: tuple[int, ...], p: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Polynomial division over GF(p); returns (quotient, remainder)."""
    num_list = list(num)
    deg_den = _degree(den)
    lead_inv = pow(den[deg_den], p - 2, p) if p > 2 else den[deg_den]
    quotient = [0] * max(1, len(num_list) - deg_den)
    while _degree(tuple(num_list)) >= deg_den and any(num_list):
        deg_num = _degree(tuple(num_list))
        if deg_num < deg_den:
            break
        coeff = (num_list[deg_num] * lead_inv) % p
        shift = deg_num - deg_den
        quotient[shift] = coeff
        for i, c in enumerate(den):
            num_list[i + shift] = (num_list[i + shift] - coeff * c) % p
    return tuple(quotient), tuple(num_list[:deg_den] or [0])


def _degree(poly: tuple[int, ...]) -> int:
    for i in range(len(poly) - 1, -1, -1):
        if poly[i] != 0:
            return i
    return -1


def _int_to_poly(value: int, p: int, m: int) -> tuple[int, ...]:
    digits = []
    for _ in range(m):
        digits.append(value % p)
        value //= p
    return tuple(digits)


def _poly_to_int(poly: tuple[int, ...], p: int) -> int:
    value = 0
    for digit in reversed(poly):
        value = value * p + digit
    return value


def _is_irreducible(poly: tuple[int, ...], p: int) -> bool:
    """Trial division by all monic polynomials of degree 1 .. deg/2."""
    deg = _degree(poly)
    for d in range(1, deg // 2 + 1):
        # Enumerate monic polynomials of degree d: p**d choices of lower
        # coefficients.
        for low in range(p**d):
            candidate = _int_to_poly(low, p, d) + (1,)
            _, rem = _poly_divmod(poly, candidate, p)
            if _degree(rem) < 0:
                return False
    return True


def _find_irreducible(p: int, m: int) -> tuple[int, ...]:
    """Smallest (by integer encoding) monic irreducible of degree m over GF(p)."""
    for low in range(p**m):
        candidate = _int_to_poly(low, p, m) + (1,)
        if _is_irreducible(candidate, p):
            return candidate
    raise RuntimeError(f"no irreducible polynomial of degree {m} over GF({p})")


class FiniteField:
    """The finite field with ``q = p ** m`` elements.

    Elements are plain integers ``0 .. q-1``; the field object carries the
    arithmetic.  Instances are cached (see :func:`finite_field`) because the
    tables are immutable.

    Attributes:
        q: Field order.
        p: Field characteristic.
        m: Extension degree (``q == p ** m``).
        modulus: Coefficient tuple of the irreducible polynomial used for
            reduction (little-endian); ``None`` semantics never occur — for
            prime fields this is ``(−a, 1)``-style degree-1 placeholder and
            unused.
    """

    def __init__(self, q: int):
        self.q = q
        self.p, self.m = factor_prime_power(q)
        if self.m == 1:
            self.modulus: tuple[int, ...] = (0, 1)
        else:
            self.modulus = _find_irreducible(self.p, self.m)
        self._build_tables()
        self._xi = self._find_primitive_element()
        self._build_logs()

    # -- construction ----------------------------------------------------

    def _build_tables(self) -> None:
        q, p, m = self.q, self.p, self.m
        add = [[0] * q for _ in range(q)]
        mul = [[0] * q for _ in range(q)]
        polys = [_int_to_poly(v, p, m) for v in range(q)]
        for a in range(q):
            for b in range(a, q):
                s = tuple((polys[a][i] + polys[b][i]) % p for i in range(m))
                add[a][b] = add[b][a] = _poly_to_int(s, p)
                prod = _poly_mul_mod(polys[a], polys[b], p)
                if _degree(prod) >= m:
                    _, prod = _poly_divmod(prod, self.modulus, p)
                prod = tuple(prod) + (0,) * (m - len(prod))
                mul[a][b] = mul[b][a] = _poly_to_int(prod[:m], p)
        self._add = add
        self._mul = mul
        neg = [0] * q
        for a in range(q):
            for b in range(q):
                if add[a][b] == 0:
                    neg[a] = b
                    break
        self._neg = neg

    def _find_primitive_element(self) -> int:
        """Smallest element whose powers enumerate every nonzero element."""
        for candidate in range(2, self.q):
            seen = set()
            value = 1
            for _ in range(self.q - 1):
                value = self._mul[value][candidate]
                seen.add(value)
            if len(seen) == self.q - 1:
                return candidate
        if self.q == 2:
            return 1
        raise RuntimeError(f"no primitive element found in GF({self.q})")

    def _build_logs(self) -> None:
        log = {1: 0}
        antilog = [1] * (self.q - 1)
        value = 1
        for exponent in range(1, self.q - 1):
            value = self._mul[value][self._xi]
            log[value] = exponent
            antilog[exponent] = value
        self._log = log
        self._antilog = antilog

    # -- arithmetic ------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        return self._add[a][b]

    def neg(self, a: int) -> int:
        return self._neg[a]

    def sub(self, a: int, b: int) -> int:
        return self._add[a][self._neg[b]]

    def mul(self, a: int, b: int) -> int:
        return self._mul[a][b]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return self._antilog[(self.q - 1 - self._log[a]) % (self.q - 1)]

    def power(self, a: int, n: int) -> int:
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("0 cannot be raised to a negative power")
            return 0
        return self._antilog[(self._log[a] * n) % (self.q - 1)]

    @property
    def primitive_element(self) -> int:
        """A generator ``ξ`` of the multiplicative group."""
        return self._xi

    def elements(self) -> range:
        return range(self.q)

    def nonzero_elements(self) -> range:
        return range(1, self.q)

    # -- presentation (paper Table 3) -------------------------------------

    def element_name(self, a: int) -> str:
        """Symbolic name matching the paper's Table 3 convention."""
        if a < self.p:
            return str(a)
        return _LETTERS[a - self.p]

    def addition_table(self) -> list[list[int]]:
        return [row[:] for row in self._add]

    def multiplication_table(self) -> list[list[int]]:
        return [row[:] for row in self._mul]

    def negation_table(self) -> list[int]:
        """Additive inverses, the ``-el`` column of the paper's Table 3."""
        return self._neg[:]

    def format_table(self, kind: str) -> str:
        """Render an operation table with symbolic names.

        Args:
            kind: ``"+"`` for addition, ``"*"`` for product, ``"-"`` for the
                additive-inverse (two-column) table.
        """
        names = [self.element_name(a) for a in range(self.q)]
        if kind == "-":
            lines = ["el -el"]
            lines += [f"{names[a]:>2} {names[self._neg[a]]:>3}" for a in range(self.q)]
            return "\n".join(lines)
        if kind == "+":
            table = self._add
        elif kind == "*":
            table = self._mul
        else:
            raise ValueError(f"unknown table kind {kind!r}")
        header = f"{kind} | " + " ".join(names)
        rows = [
            f"{names[a]} | " + " ".join(names[table[a][b]] for b in range(self.q))
            for a in range(self.q)
        ]
        return "\n".join([header] + rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FiniteField(q={self.q}, p={self.p}, m={self.m})"


@lru_cache(maxsize=None)
def finite_field(q: int) -> FiniteField:
    """Cached constructor: the field of order ``q`` (a prime power)."""
    return FiniteField(q)
