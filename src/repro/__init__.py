"""repro — Slim NoC (ASPLOS'18) reproduction library.

A complete reimplementation of the Slim NoC system: MMS diameter-2 graphs
over prime and non-prime finite fields, NoC placement/buffer/cost models,
four physical layouts, a flit-level cycle-accurate simulator (edge-buffer
and central-buffer routers, elastic and SMART links), baseline topologies
(torus, concentrated mesh, Flattened Butterfly, partitioned FBF,
Dragonfly, folded Clos), synthetic and PARSEC/SPLASH-like traffic, and
analytical area/power/energy models.

Quickstart::

    from repro import SlimNoC, NoCSimulator, SyntheticSource

    sn = SlimNoC(q=5, concentration=4, layout="sn_subgr")  # SN-S, 200 nodes
    sim = NoCSimulator(sn)
    result = sim.run(SyntheticSource(sn, "RND", rate=0.05))
    print(result.avg_latency, result.throughput)
"""

from .analysis import (
    LargeScaleModel,
    SweepResult,
    compare_networks,
    format_table,
    geometric_mean,
    relative_improvement,
    sweep_loads,
)
from .core import (
    SlimNoC,
    SlimNoCConfig,
    enumerate_configurations,
    mms_graph,
    sn_large,
    sn_power_of_two,
    sn_small,
)
from .engine import (
    ExperimentEngine,
    ExperimentSpec,
    ResultCache,
    default_engine,
)
from .fields import FiniteField, finite_field
from .power import (
    TECH_22NM,
    TECH_45NM,
    EnergyMetrics,
    dynamic_power,
    make_metrics,
    network_area,
    static_power,
)
from .routing import (
    DimensionOrderRouting,
    StaticMinimalRouting,
    UGALRouting,
    default_routing,
)
from .sim import BUFFERING_STRATEGIES, NoCSimulator, SimConfig, SimResult, cbr
from .topos import (
    ConcentratedMesh,
    Dragonfly,
    FlattenedButterfly,
    FoldedClos,
    PartitionedFBF,
    Topology,
    Torus2D,
    cycle_time_ns,
    make_network,
)
from .traffic import SyntheticSource, WorkloadSource, workload_names

__version__ = "1.0.0"

__all__ = [
    "SlimNoC",
    "SlimNoCConfig",
    "enumerate_configurations",
    "mms_graph",
    "sn_small",
    "sn_large",
    "sn_power_of_two",
    "FiniteField",
    "finite_field",
    "Topology",
    "Torus2D",
    "ConcentratedMesh",
    "FlattenedButterfly",
    "PartitionedFBF",
    "Dragonfly",
    "FoldedClos",
    "make_network",
    "cycle_time_ns",
    "NoCSimulator",
    "SimConfig",
    "SimResult",
    "cbr",
    "BUFFERING_STRATEGIES",
    "StaticMinimalRouting",
    "DimensionOrderRouting",
    "UGALRouting",
    "default_routing",
    "SyntheticSource",
    "WorkloadSource",
    "workload_names",
    "network_area",
    "static_power",
    "dynamic_power",
    "EnergyMetrics",
    "make_metrics",
    "TECH_45NM",
    "TECH_22NM",
    "sweep_loads",
    "compare_networks",
    "SweepResult",
    "LargeScaleModel",
    "ExperimentSpec",
    "ExperimentEngine",
    "ResultCache",
    "default_engine",
    "geometric_mean",
    "relative_improvement",
    "format_table",
]
