"""McKay–Miller–Širáň (MMS) graphs: the Slim Fly / Slim NoC backbone.

An MMS graph for a prime power ``q = 4w + u`` (``u`` in {-1, 0, +1}) has
``Nr = 2 q**2`` vertices of degree ``k' = (3q - u) / 2`` and diameter 2,
closely approaching the Moore bound.  Vertices carry labels ``[G|a,b]``
(paper section 3.2.1): ``G`` is the subgroup *type*, ``a`` the subgroup id,
``b`` the position within the subgroup, with ``a`` and ``b`` ranging over
the finite field GF(q).

Connection rules (paper equations 8-10)::

    [0|a,b] ~ [0|a,b']   iff  b - b'  in X
    [1|m,c] ~ [1|m,c']   iff  c - c'  in X'
    [0|a,b] ~ [1|m,c]    iff  b = m*a + c

with all arithmetic in GF(q).  The generator sets ``X`` and ``X'`` are:

* ``q = 4w + 1``: even and odd powers of a primitive element ``ξ``
  (the construction given explicitly in the paper).
* ``q = 4w - 1``: Hafner's split sets
  ``X = {ξ^0, ξ^2, .., ξ^(2w-2)} ∪ {ξ^(2w-1), ξ^(2w+1), .., ξ^(4w-3)}``
  and ``X' = ξ·X`` (both closed under negation because
  ``-1 = ξ^(2w-1)``).
* ``q = 4w`` (characteristic 2, the *non-prime* fields GF(4), GF(8) the
  paper highlights): the paper builds these "using an exhaustive search";
  we do the same — a deterministic search over generator-set pairs of the
  right cardinality, accepting the first pair whose graph is
  ``k'``-regular with diameter 2.  Results are cached per ``q``.

Every constructed graph is verified (regularity + diameter 2) before being
returned, so downstream code can rely on the topology invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations

from ..fields import FiniteField, finite_field, is_prime_power


@dataclass(frozen=True)
class MMSParams:
    """Closed-form parameters of the MMS graph for a given ``q``."""

    q: int
    u: int
    nr: int
    network_radix: int

    @property
    def intra_degree(self) -> int:
        """Links to the same subgroup: ``k' - q``."""
        return self.network_radix - self.q

    @property
    def moore_bound(self) -> int:
        """Max vertices of any diameter-2 graph with this degree: ``1 + k' + k'(k'-1)``."""
        k = self.network_radix
        return 1 + k + k * (k - 1)

    @property
    def moore_ratio(self) -> float:
        """Fraction of the Moore bound achieved (MMS graphs reach ~0.89)."""
        return self.nr / self.moore_bound


def u_for_q(q: int) -> int:
    """The ``u`` in ``q = 4w + u``; even prime powers use the ``u = 0`` branch."""
    if not is_prime_power(q):
        raise ValueError(f"q={q} must be a prime power")
    if q % 4 == 1:
        return 1
    if q % 4 == 3:
        return -1
    if q % 2 == 0:
        return 0
    raise ValueError(f"q={q} is not expressible as 4w+u with u in {{-1,0,1}}")


def mms_params(q: int) -> MMSParams:
    """Validated closed-form MMS parameters for prime power ``q``."""
    if not is_prime_power(q):
        raise ValueError(f"q={q} must be a prime power")
    u = u_for_q(q)
    radix = (3 * q - u) // 2
    return MMSParams(q=q, u=u, nr=2 * q * q, network_radix=radix)


# ---------------------------------------------------------------------------
# Generator sets
# ---------------------------------------------------------------------------


def _analytic_generator_sets(field: FiniteField, u: int) -> tuple[frozenset[int], frozenset[int]]:
    """Hafner's analytic sets for odd q (u = +1 or -1)."""
    q = field.q
    xi = field.primitive_element
    if u == 1:
        even = [field.power(xi, e) for e in range(0, q - 2, 2)]
        odd = [field.power(xi, e) for e in range(1, q - 1, 2)]
        return frozenset(even), frozenset(odd)
    if u == -1:
        w = (q + 1) // 4
        head = [field.power(xi, e) for e in range(0, 2 * w - 1, 2)]
        tail = [field.power(xi, e) for e in range(2 * w - 1, 4 * w - 2, 2)]
        x_set = frozenset(head + tail)
        x_prime = frozenset(field.mul(xi, e) for e in x_set)
        return x_set, x_prime
    raise ValueError(f"analytic generator sets undefined for u={u}")


def _neighbor_masks(field: FiniteField, x_set: frozenset[int], x_prime: frozenset[int]) -> list[int]:
    """Adjacency as one bitmask per vertex (fast diameter-2 checking).

    Vertex index: ``G * q**2 + a * q + b`` with field elements ``a, b``.
    """
    q = field.q
    nr = 2 * q * q
    masks = [0] * nr
    for a in range(q):
        base0 = a * q
        base1 = q * q + a * q
        for b in range(q):
            v0 = base0 + b
            v1 = base1 + b
            for d in x_set:
                masks[v0] |= 1 << (base0 + field.add(b, d))
            for d in x_prime:
                masks[v1] |= 1 << (base1 + field.add(b, d))
    for a in range(q):  # type-0 subgroup id
        for b in range(q):
            v0 = a * q + b
            for m in range(q):  # type-1 subgroup id
                c = field.sub(b, field.mul(m, a))
                v1 = q * q + m * q + c
                masks[v0] |= 1 << v1
                masks[v1] |= 1 << v0
    return masks


def _is_diameter_two(masks: list[int]) -> bool:
    nr = len(masks)
    full = (1 << nr) - 1
    for v in range(nr):
        reach = masks[v] | (1 << v)
        neighbors = masks[v]
        while neighbors:
            low = neighbors & -neighbors
            reach |= masks[low.bit_length() - 1]
            neighbors ^= low
        if reach != full:
            return False
    return True


def _is_regular(masks: list[int], degree: int) -> bool:
    return all(mask.bit_count() == degree for mask in masks)


@lru_cache(maxsize=None)
def _searched_generator_sets(q: int) -> tuple[frozenset[int], frozenset[int]]:
    """Deterministic search for ``u = 0`` fields (characteristic 2).

    Mirrors the paper's "derived using an exhaustive search": iterate
    generator-set pairs in a fixed order and accept the first pair whose
    graph is regular with diameter 2.
    """
    field = finite_field(q)
    params = mms_params(q)
    size = params.intra_degree
    candidates = list(combinations(range(1, q), size))
    for x_tuple in candidates:
        x_set = frozenset(x_tuple)
        for xp_tuple in candidates:
            x_prime = frozenset(xp_tuple)
            masks = _neighbor_masks(field, x_set, x_prime)
            if not _is_regular(masks, params.network_radix):
                continue
            if _is_diameter_two(masks):
                return x_set, x_prime
    raise RuntimeError(f"no diameter-2 generator sets found for q={q}")


def generator_sets(q: int) -> tuple[frozenset[int], frozenset[int]]:
    """The generator sets ``(X, X')`` used to wire the MMS graph for ``q``."""
    params = mms_params(q)
    field = finite_field(q)
    if params.u == 0:
        return _searched_generator_sets(q)
    x_set, x_prime = _analytic_generator_sets(field, params.u)
    return x_set, x_prime


# ---------------------------------------------------------------------------
# The graph itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RouterLabel:
    """Paper-style router label ``[G|a,b]`` with 1-based ``a`` and ``b``."""

    group_type: int
    subgroup: int
    position: int

    def __str__(self) -> str:
        return f"[{self.group_type}|{self.subgroup},{self.position}]"


class MMSGraph:
    """A verified MMS graph over GF(q).

    Vertices are integers ``0 .. nr-1``; :meth:`label` translates to the
    paper's ``[G|a,b]`` view (1-based), and :meth:`index_of` translates
    back.  Construction raises when the resulting graph violates the
    degree or diameter invariants, so instances are always valid.
    """

    def __init__(self, q: int):
        self.params = mms_params(q)
        self.field = finite_field(q)
        self.x_set, self.x_prime = generator_sets(q)
        self._masks = _neighbor_masks(self.field, self.x_set, self.x_prime)
        if not _is_regular(self._masks, self.params.network_radix):
            raise RuntimeError(f"MMS graph for q={q} is not {self.params.network_radix}-regular")
        if not _is_diameter_two(self._masks):
            raise RuntimeError(f"MMS graph for q={q} does not have diameter 2")
        self.neighbors: list[tuple[int, ...]] = []
        for mask in self._masks:
            neigh = []
            while mask:
                low = mask & -mask
                neigh.append(low.bit_length() - 1)
                mask ^= low
            self.neighbors.append(tuple(neigh))

    # -- sizes -------------------------------------------------------------

    @property
    def q(self) -> int:
        return self.params.q

    @property
    def num_routers(self) -> int:
        return self.params.nr

    @property
    def network_radix(self) -> int:
        return self.params.network_radix

    def num_edges(self) -> int:
        return self.params.nr * self.params.network_radix // 2

    # -- label <-> index -----------------------------------------------------

    def label(self, index: int) -> RouterLabel:
        """``[G|a,b]`` label (1-based a, b) for a 0-based vertex index."""
        q = self.q
        group_type, rest = divmod(index, q * q)
        a, b = divmod(rest, q)
        return RouterLabel(group_type=group_type, subgroup=a + 1, position=b + 1)

    def index_of(self, label: RouterLabel) -> int:
        """Inverse of :meth:`label`; matches the paper's ``i = G q² + (a-1)q + b``."""
        q = self.q
        return label.group_type * q * q + (label.subgroup - 1) * q + (label.position - 1)

    def subgroup_of(self, index: int) -> tuple[int, int]:
        """(type, subgroup-id) pair, both 0-based, for a vertex."""
        q = self.q
        group_type, rest = divmod(index, q * q)
        return group_type, rest // q

    def group_of(self, index: int) -> int:
        """Merged-group id: subgroups (0, a) and (1, a) form group ``a``."""
        return self.subgroup_of(index)[1]

    # -- structural queries ----------------------------------------------

    def are_connected(self, i: int, j: int) -> bool:
        return bool(self._masks[i] >> j & 1)

    def edges(self) -> list[tuple[int, int]]:
        return [(i, j) for i in range(self.num_routers) for j in self.neighbors[i] if i < j]

    def diameter(self) -> int:
        """Exact diameter by BFS (always 2 for valid MMS graphs)."""
        nr = self.num_routers
        full = (1 << nr) - 1
        worst = 0
        for v in range(nr):
            reach = 1 << v
            frontier = 1 << v
            depth = 0
            while reach != full:
                new_frontier = 0
                m = frontier
                while m:
                    low = m & -m
                    new_frontier |= self._masks[low.bit_length() - 1]
                    m ^= low
                frontier = new_frontier & ~reach
                reach |= new_frontier
                depth += 1
                if depth > nr:
                    raise RuntimeError("graph is disconnected")
            worst = max(worst, depth)
        return worst

    def average_shortest_path(self) -> float:
        """Mean router-to-router hop distance (diameter-2 graphs: in (1, 2))."""
        nr = self.num_routers
        total = 0
        count = nr * (nr - 1)
        for v in range(nr):
            direct = self._masks[v].bit_count()
            total += direct + 2 * (nr - 1 - direct)
        return total / count


@lru_cache(maxsize=None)
def mms_graph(q: int) -> MMSGraph:
    """Cached MMS graph for prime power ``q``."""
    return MMSGraph(q)
