"""Slim NoC physical layouts (paper section 3.3, Figure 4b).

Each layout maps a router label ``[G|a,b]`` (1-based ``a``, ``b`` in
``1..q``) to 1-based 2D grid coordinates:

* ``sn_basic``  — subgroups of the same type stacked together:
  ``(b, a + G*q)``; simple but lengthens inter-subgroup wires.
* ``sn_subgr``  — subgroups of different types interleaved pairwise:
  ``(b, 2a - (1 - G))``; shortens inter-subgroup wires (best for SN-S).
* ``sn_gr``     — subgroups merged pairwise into groups, groups tiled "as
  close to a square as possible" (best for SN-L).  The printed formula in
  the paper is corrupted by PDF extraction; this implementation realises
  the stated intent and reproduces Figure 7b exactly: for q=9, 9 groups of
  6x3 routers in a 3x3 group grid, an 18x9-router die.
* ``sn_rand``   — routers shuffled over the q x 2q slots (seeded, used as
  the paper's strawman baseline).

All four return ``{router_index: (x, y)}`` with router indices following
the paper's ``i = G*q^2 + (a-1)*q + b`` convention (0-based here).
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable

from .mms import MMSGraph

Coordinate = tuple[int, int]
LayoutFn = Callable[[MMSGraph], dict[int, Coordinate]]


def _iter_labels(q: int):
    """Yield (index, G, a, b) with 1-based a, b in the paper's index order."""
    index = 0
    for group_type in (0, 1):
        for a in range(1, q + 1):
            for b in range(1, q + 1):
                yield index, group_type, a, b
                index += 1


def layout_basic(graph: MMSGraph) -> dict[int, Coordinate]:
    """``[G|a,b] -> (b, a + G*q)``: same-type subgroups stacked together."""
    q = graph.q
    return {
        index: (b, a + group_type * q)
        for index, group_type, a, b in _iter_labels(q)
    }


def layout_subgroup(graph: MMSGraph) -> dict[int, Coordinate]:
    """``[G|a,b] -> (b, 2a - (1 - G))``: type-0/type-1 subgroups interleaved."""
    q = graph.q
    return {
        index: (b, 2 * a - (1 - group_type))
        for index, group_type, a, b in _iter_labels(q)
    }


def group_tile_shape(q: int) -> tuple[int, int]:
    """(width, height) of one merged group's tile in the group layout.

    ``height = ceil(sqrt(q))`` makes the die near-square: for q=9 each
    group is 6x3 and the die is 18x9 routers, exactly Figure 7b.
    """
    height = math.ceil(math.sqrt(q))
    width = math.ceil(2 * q / height)
    return width, height


def layout_group(graph: MMSGraph) -> dict[int, Coordinate]:
    """Merged groups tiled in a near-square grid (Figure 7b).

    Group ``a`` holds subgroups ``(0, a)`` and ``(1, a)``; its 2q routers
    fill a ``width x height`` tile row-major by within-group index
    ``(b - 1) + G*q``.  Groups themselves tile a ``ceil(sqrt(q))``-wide
    grid.
    """
    q = graph.q
    width, height = group_tile_shape(q)
    group_cols = math.ceil(math.sqrt(q))
    coords: dict[int, Coordinate] = {}
    for index, group_type, a, b in _iter_labels(q):
        within = (b - 1) + group_type * q
        local_x = within % width
        local_y = within // width
        group_x = (a - 1) % group_cols
        group_y = (a - 1) // group_cols
        coords[index] = (group_x * width + local_x + 1, group_y * height + local_y + 1)
    return coords


def layout_random(graph: MMSGraph, seed: int = 0) -> dict[int, Coordinate]:
    """Routers shuffled uniformly over the q x 2q slots (strawman)."""
    q = graph.q
    slots = [(x, y) for y in range(1, 2 * q + 1) for x in range(1, q + 1)]
    rng = random.Random(seed)
    rng.shuffle(slots)
    return {index: slots[index] for index in range(graph.num_routers)}


#: Registry of the paper's four layouts (Figure 4b / section 3.3).
LAYOUTS: dict[str, LayoutFn] = {
    "sn_basic": layout_basic,
    "sn_subgr": layout_subgroup,
    "sn_gr": layout_group,
    "sn_rand": layout_random,
}


def layout_coordinates(graph: MMSGraph, layout: str, seed: int = 0) -> dict[int, Coordinate]:
    """Coordinates for ``graph`` under a named layout.

    Args:
        graph: The MMS graph to lay out.
        layout: One of ``sn_basic``, ``sn_subgr``, ``sn_gr``, ``sn_rand``.
        seed: Shuffle seed, used by ``sn_rand`` only.
    """
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; options: {sorted(LAYOUTS)}")
    if layout == "sn_rand":
        return layout_random(graph, seed=seed)
    return LAYOUTS[layout](graph)
