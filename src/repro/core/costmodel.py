"""Buffer-size and cost models (paper sections 3.2.2-3.2.3, Eqs. 4-6).

All buffer quantities are expressed in flits with the paper's on-chip
normalisation ``b / L = 1`` flit per link cycle (128-bit links carrying
128-bit flits), so the edge-buffer size reduces to
``δij = Tij * |VC|`` flits with round-trip time
``Tij = 2 * ceil(dist / H) + 3`` (two router cycles + one serialisation
cycle; ``H`` hops per link cycle — 1 without SMART, ~9 with SMART at
45 nm / 1 GHz).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..topos.base import Topology

#: SMART link reach at 1 GHz, 45 nm (paper section 5.1 sets H=9).
SMART_HOPS_PER_CYCLE = 9


def round_trip_cycles(distance_hops: int, hops_per_cycle: int = 1) -> int:
    """``Tij`` of the buffer model: link RTT plus pipeline overheads."""
    if distance_hops < 0:
        raise ValueError("distance must be non-negative")
    if hops_per_cycle < 1:
        raise ValueError("H must be >= 1")
    return 2 * math.ceil(distance_hops / hops_per_cycle) + 3


def edge_buffer_flits(distance_hops: int, vcs: int, hops_per_cycle: int = 1) -> int:
    """``δij = Tij * b * |VC| / L`` in flits (with b/L = 1 flit/cycle)."""
    return round_trip_cycles(distance_hops, hops_per_cycle) * vcs


def average_wire_length(topology: Topology) -> float:
    """The paper's ``M`` (Eq. 4): mean Manhattan link length in hops."""
    return topology.average_wire_length()


def total_edge_buffers(topology: Topology, vcs: int = 2, hops_per_cycle: int = 1) -> int:
    """``Δeb`` (Eq. 5): sum of δij over all *directed* connected pairs.

    Eq. 5 iterates i and j over all routers, so each undirected link
    contributes a buffer at both of its endpoints.
    """
    total = 0
    for i, j in topology.edges():
        delta = edge_buffer_flits(topology.link_length_hops(i, j), vcs, hops_per_cycle)
        total += 2 * delta
    return total


def total_central_buffers(topology: Topology, cb_flits: int, vcs: int = 2) -> int:
    """``Δcb`` (Eq. 6): ``Nr * (δcb + 2 k' |VC|)`` — CB plus I/O staging."""
    return topology.num_routers * (cb_flits + 2 * topology.network_radix * vcs)


def per_router_edge_buffers(
    topology: Topology, vcs: int = 2, hops_per_cycle: int = 1
) -> list[int]:
    """Total input-buffer flits at each router (Figure 5b/5c quantity)."""
    totals = [0] * topology.num_routers
    for i, j in topology.edges():
        delta = edge_buffer_flits(topology.link_length_hops(i, j), vcs, hops_per_cycle)
        totals[i] += delta
        totals[j] += delta
    return totals


def per_router_central_buffer(topology: Topology, cb_flits: int, vcs: int = 2) -> int:
    """One router's CB + staging total (the CBR20/CBR40 lines of Fig. 5)."""
    return cb_flits + 2 * topology.network_radix * vcs


def link_distance_histogram(topology: Topology, bin_width: int = 2) -> dict[tuple[int, int], float]:
    """Probability mass per distance range (Figure 6).

    Returns ``{(lo, hi): probability}`` with half-open paper-style ranges
    "1-2", "3-4", ... expressed as inclusive (lo, hi) bounds.
    """
    links = topology.edges()
    if not links:
        return {}
    histogram: dict[tuple[int, int], int] = {}
    for i, j in links:
        dist = topology.link_length_hops(i, j)
        lo = ((max(dist, 1) - 1) // bin_width) * bin_width + 1
        histogram[(lo, lo + bin_width - 1)] = histogram.get((lo, lo + bin_width - 1), 0) + 1
    total = len(links)
    return {bucket: count / total for bucket, count in sorted(histogram.items())}


@dataclass(frozen=True)
class BufferBudget:
    """Summary of a network's buffer cost under one buffering scheme."""

    scheme: str
    total_flits: int
    per_router_flits: float

    @classmethod
    def edge(cls, topology: Topology, vcs: int = 2, hops_per_cycle: int = 1) -> "BufferBudget":
        total = total_edge_buffers(topology, vcs, hops_per_cycle)
        return cls("edge", total, total / topology.num_routers)

    @classmethod
    def central(cls, topology: Topology, cb_flits: int, vcs: int = 2) -> "BufferBudget":
        total = total_central_buffers(topology, cb_flits, vcs)
        return cls(f"cbr{cb_flits}", total, total / topology.num_routers)


def theorem1_bounds(num_nodes: int) -> tuple[float, float]:
    """Theorem 1 scaling: ``M = Θ(N^(1/3))`` — returns (lower, upper) guide values.

    Used by tests to check the measured average wire length of the
    subgroup layout scales with the cube root of the node count.
    """
    cube_root = num_nodes ** (1.0 / 3.0)
    return 0.25 * cube_root, 4.0 * cube_root
