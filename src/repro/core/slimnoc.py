"""Slim NoC topology, configuration enumeration (Table 2), and presets.

A :class:`SlimNoC` couples an MMS graph with a concentration ``p`` and a
physical layout, exposing the common :class:`~repro.topos.base.Topology`
interface used throughout the library.

:func:`enumerate_configurations` regenerates the paper's Table 2 — all
Slim NoC configurations with ``N <= limit`` nodes, flagged for
power-of-two node counts (bold rows) and square group grids (shaded rows).
:data:`SN_S`, :data:`SN_L`, and :data:`SN_1024` are the paper's three
ready-to-use designs (section 3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..fields import prime_powers_up_to
from ..fields.primes import factor_prime_power
from ..topos.base import Coordinate, Topology
from .layouts import layout_coordinates
from .mms import MMSGraph, mms_graph, mms_params


@dataclass(frozen=True)
class SlimNoCConfig:
    """One row of the paper's Table 2."""

    q: int
    concentration: int
    network_radix: int
    num_routers: int
    num_nodes: int
    is_prime_field: bool

    @property
    def ideal_concentration(self) -> int:
        """``ceil(k'/2)``, the paper's starred column."""
        return math.ceil(self.network_radix / 2)

    @property
    def subscription(self) -> float:
        """Over/under-subscription ``p / ceil(k'/2)`` (Table 2 ``**`` column)."""
        return self.concentration / self.ideal_concentration

    @property
    def kappa(self) -> int:
        """The paper's density/contention tradeoff ``κ = p - ceil(k'/2)``."""
        return self.concentration - self.ideal_concentration

    @property
    def power_of_two_nodes(self) -> bool:
        """Bold rows of Table 2: N is a power of two."""
        return self.num_nodes & (self.num_nodes - 1) == 0

    @property
    def square_group_grid(self) -> bool:
        """Grey rows of Table 2: equally many groups on each die side."""
        side = math.isqrt(self.q)
        return side * side == self.q

    @property
    def square_node_count(self) -> bool:
        """Dark-grey rows: additionally N is a perfect square."""
        side = math.isqrt(self.num_nodes)
        return self.square_group_grid and side * side == self.num_nodes

    @property
    def router_radix(self) -> int:
        return self.network_radix + self.concentration


def config_for(q: int, concentration: int) -> SlimNoCConfig:
    """The Slim NoC configuration for a given ``q`` and concentration."""
    params = mms_params(q)
    _, extension_degree = factor_prime_power(q)
    return SlimNoCConfig(
        q=q,
        concentration=concentration,
        network_radix=params.network_radix,
        num_routers=params.nr,
        num_nodes=params.nr * concentration,
        is_prime_field=extension_degree == 1,
    )


def enumerate_configurations(limit: int = 1300) -> list[SlimNoCConfig]:
    """All Slim NoC configurations with ``N <= limit`` (Table 2).

    Concentrations range over the paper's 66%-133% subscription band:
    ``ceil(2/3 * ideal) <= p <= floor(4/3 * ideal)``.
    """
    configs = []
    for q in prime_powers_up_to(limit):
        params = mms_params(q)
        if 2 * params.nr > limit:  # even p=1... the paper never goes below 2
            break
        ideal = math.ceil(params.network_radix / 2)
        p_min = max(2, math.ceil(2 * ideal / 3))
        p_max = math.floor(4 * ideal / 3)
        for p in range(p_min, p_max + 1):
            config = config_for(q, p)
            if config.num_nodes <= limit:
                configs.append(config)
    return configs


def design_for_nodes(
    target_nodes: int,
    max_kappa: int = 2,
    allow_underpopulated: bool = True,
) -> SlimNoCConfig:
    """Construct an SN for a fixed network size (paper section 3.5.3).

    Step 1 verifies feasibility: ``N`` must factor as ``p * 2 q**2`` with
    ``q`` a prime power (when ``allow_underpopulated`` is set, a slightly
    larger configuration is acceptable — the paper's "removing some nodes
    from selected tiles" strategy).  Step 2 verifies the density/
    contention tradeoff ``κ = p - ceil(k'/2)`` stays within ``max_kappa``.

    Returns:
        The smallest acceptable configuration with ``num_nodes >= target``.

    Raises:
        ValueError: when no configuration satisfies the constraints.
    """
    if target_nodes < 2:
        raise ValueError("target size must be at least 2 nodes")
    candidates: list[SlimNoCConfig] = []
    for q in prime_powers_up_to(max(4, math.isqrt(target_nodes) + 2)):
        params = mms_params(q)
        exact_p, remainder = divmod(target_nodes, params.nr)
        p_options = {exact_p, exact_p + 1} if remainder else {exact_p}
        for p in p_options:
            if p < 1:
                continue
            config = config_for(q, p)
            if abs(config.kappa) > max_kappa:
                continue
            if config.num_nodes == target_nodes:
                candidates.append(config)
            elif allow_underpopulated and config.num_nodes > target_nodes:
                candidates.append(config)
    if not candidates:
        raise ValueError(
            f"no Slim NoC configuration reaches N={target_nodes} "
            f"with |kappa| <= {max_kappa}"
        )
    exact = [c for c in candidates if c.num_nodes == target_nodes]
    pool = exact if exact else candidates
    return min(pool, key=lambda c: (c.num_nodes, abs(c.kappa)))


class SlimNoC(Topology):
    """Slim NoC: an MMS graph with concentration ``p`` and a physical layout.

    Args:
        q: Prime power controlling the MMS graph (``Nr = 2 q**2``).
        concentration: Nodes per router (the paper's ``p``).
        layout: One of ``sn_basic``, ``sn_subgr``, ``sn_gr``, ``sn_rand``.
        seed: Placement seed for ``sn_rand``.
    """

    def __init__(self, q: int, concentration: int, layout: str = "sn_subgr", seed: int = 0):
        super().__init__(concentration)
        self.graph: MMSGraph = mms_graph(q)
        self.layout = layout
        self._seed = seed
        self.name = layout if layout.startswith("sn_") else f"sn_{layout}"
        self.config = config_for(q, concentration)

    @property
    def q(self) -> int:
        return self.graph.q

    def _build_adjacency(self) -> list[tuple[int, ...]]:
        return list(self.graph.neighbors)

    def _build_coordinates(self) -> dict[int, Coordinate]:
        return layout_coordinates(self.graph, self.layout, seed=self._seed)

    def with_layout(self, layout: str, seed: int = 0) -> "SlimNoC":
        """A copy of this network under a different physical layout."""
        return SlimNoC(self.q, self.concentration, layout=layout, seed=seed)


def sn_small(layout: str = "sn_subgr") -> SlimNoC:
    """SN-S (section 3.4): q=5, p=4, N=200 — near-future manycore scale."""
    return SlimNoC(q=5, concentration=4, layout=layout)


def sn_large(layout: str = "sn_gr") -> SlimNoC:
    """SN-L (section 3.4): q=9 (GF(9)), p=8, N=1296 — future >1k-core chips."""
    return SlimNoC(q=9, concentration=8, layout=layout)


def sn_power_of_two(layout: str = "sn_subgr") -> SlimNoC:
    """SN-1024 (section 3.4): q=8 (GF(8)), p=8, N=1024 — Epiphany-class."""
    return SlimNoC(q=8, concentration=8, layout=layout)


#: Ready-to-use designs from paper section 3.4.
SN_S = ("SN-S", sn_small)
SN_L = ("SN-L", sn_large)
SN_1024 = ("SN-1024", sn_power_of_two)
