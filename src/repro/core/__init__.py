"""Slim NoC core: MMS graphs, configurations, layouts, and cost models."""

from .costmodel import (
    BufferBudget,
    average_wire_length,
    edge_buffer_flits,
    link_distance_histogram,
    per_router_central_buffer,
    per_router_edge_buffers,
    round_trip_cycles,
    total_central_buffers,
    total_edge_buffers,
)
from .layouts import LAYOUTS, layout_coordinates
from .mms import MMSGraph, MMSParams, RouterLabel, generator_sets, mms_graph, mms_params
from .placement import (
    max_wire_crossings,
    satisfies_wire_constraint,
    technology_wire_limit,
    wire_crossing_counts,
    wire_path,
)
from .slimnoc import (
    SN_1024,
    SN_L,
    SN_S,
    SlimNoC,
    SlimNoCConfig,
    config_for,
    enumerate_configurations,
    sn_large,
    sn_power_of_two,
    sn_small,
)

__all__ = [
    "MMSGraph",
    "MMSParams",
    "RouterLabel",
    "mms_graph",
    "mms_params",
    "generator_sets",
    "SlimNoC",
    "SlimNoCConfig",
    "config_for",
    "enumerate_configurations",
    "sn_small",
    "sn_large",
    "sn_power_of_two",
    "SN_S",
    "SN_L",
    "SN_1024",
    "LAYOUTS",
    "layout_coordinates",
    "wire_path",
    "wire_crossing_counts",
    "max_wire_crossings",
    "technology_wire_limit",
    "satisfies_wire_constraint",
    "round_trip_cycles",
    "edge_buffer_flits",
    "average_wire_length",
    "total_edge_buffers",
    "total_central_buffers",
    "per_router_edge_buffers",
    "per_router_central_buffer",
    "link_distance_histogram",
    "BufferBudget",
]
