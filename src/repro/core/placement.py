"""Wire placement model (paper section 3.2.1, equations 1-3).

Connected routers are wired along a shortest Manhattan path.  When the two
routers share neither row nor column there are two L-shaped candidates;
the paper breaks the tie by the *larger* coordinate span: if the X-span
exceeds the Y-span the wire leaves router ``i`` vertically first
(the "bottom-left" path through ``(x_i, y_j)``), otherwise horizontally
first (the "top-right" path through ``(x_j, y_i)``).

Equation 3 bounds, for every grid slot, the number of wires routed over
that slot by the technology limit ``W``; :func:`wire_crossing_counts` and
:func:`max_wire_crossings` evaluate the left-hand side, and
:func:`technology_wire_limit` the right-hand side.
"""

from __future__ import annotations

import math
from collections import Counter

from ..topos.base import Coordinate

#: Wiring density (wires per mm, single intermediate metal layer) and core
#: area (mm^2) per technology node — paper section 3.3.2 assumptions.
WIRING_DENSITY_PER_MM = {45: 3_500, 22: 7_000, 11: 14_000}
CORE_AREA_MM2 = {45: 4.0, 22: 1.0, 11: 0.25}


def x_dominant(ci: Coordinate, cj: Coordinate) -> bool:
    """The paper's Φ(i,j): True when |xi-xj| > |yi-yj|."""
    return abs(ci[0] - cj[0]) > abs(ci[1] - cj[1])


def wire_path(ci: Coordinate, cj: Coordinate) -> list[Coordinate]:
    """Every grid slot the wire from ``ci`` to ``cj`` passes over.

    Includes both endpoints; follows the Eq. 1/2 tie-break.  The result is
    the union of the two line segments of the chosen L-shape.
    """
    xi, yi = ci
    xj, yj = cj
    slots: list[Coordinate] = []
    if x_dominant(ci, cj):
        # Leave i vertically first: (xi,yi) -> (xi,yj) -> (xj,yj).
        for y in _inclusive(yi, yj):
            slots.append((xi, y))
        for x in _inclusive(xi, xj):
            if (x, yj) != (xi, yj):
                slots.append((x, yj))
    else:
        # Leave i horizontally first: (xi,yi) -> (xj,yi) -> (xj,yj).
        for x in _inclusive(xi, xj):
            slots.append((x, yi))
        for y in _inclusive(yi, yj):
            if (xj, y) != (xj, yi):
                slots.append((xj, y))
    return slots


def _inclusive(a: int, b: int) -> range:
    return range(a, b + 1) if a <= b else range(a, b - 1, -1)


def wire_crossing_counts(
    edges: list[tuple[int, int]], coords: dict[int, Coordinate]
) -> Counter[Coordinate]:
    """Wires routed over each grid slot (left-hand side of Eq. 3).

    Wire endpoints count toward their own slots, matching the paper's
    "wires placed over a router and its attached nodes".
    """
    counts: Counter[Coordinate] = Counter()
    for i, j in edges:
        for slot in wire_path(coords[i], coords[j]):
            counts[slot] += 1
    return counts


def max_wire_crossings(edges: list[tuple[int, int]], coords: dict[int, Coordinate]) -> int:
    """The worst slot's wire count — must stay <= ``W`` (Eq. 3)."""
    counts = wire_crossing_counts(edges, coords)
    return max(counts.values()) if counts else 0


def technology_wire_limit(
    technology_nm: int, concentration: int, link_width_bits: int = 128
) -> int:
    """Maximum parallel links routable over one router tile (the ``W`` of Eq. 3).

    ``W`` = wiring density x tile side / link width: a tile holding ``p``
    cores has side ``sqrt(p * core_area)``; each link needs
    ``link_width_bits`` wires.
    """
    if technology_nm not in WIRING_DENSITY_PER_MM:
        raise ValueError(f"unknown technology node {technology_nm}nm")
    tile_side_mm = math.sqrt(concentration * CORE_AREA_MM2[technology_nm])
    raw_wires = WIRING_DENSITY_PER_MM[technology_nm] * tile_side_mm
    return int(raw_wires // link_width_bits)


def satisfies_wire_constraint(
    edges: list[tuple[int, int]],
    coords: dict[int, Coordinate],
    technology_nm: int,
    concentration: int,
    link_width_bits: int = 128,
) -> bool:
    """Check Eq. 3 for every slot of the given placement."""
    limit = technology_wire_limit(technology_nm, concentration, link_width_bits)
    return max_wire_crossings(edges, coords) <= limit
