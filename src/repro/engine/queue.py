"""Fault-tolerant campaign work queue: leases, heartbeats, quarantine.

Static ``--shard I/N`` partitioning divides a campaign *before* anyone
runs it — a crashed host strands its slice, a slow host gates the whole
campaign, and a late-joining machine has nothing to claim.  The queue
inverts that: a campaign is *submitted* once (heaviest specs first, by
predicted cost) to the ``repro serve`` coordinator, and an elastic fleet
of ``python -m repro work http://coordinator`` processes drains it.
Workers may join, leave, crash, or be SIGKILLed at any point:

* **Leases.**  :meth:`JobQueue.claim` hands a worker a batch of specs
  under a lease with a deadline.  :meth:`JobQueue.heartbeat` extends the
  deadline while the worker simulates; a lease whose deadline passes is
  *expired* — its unfinished specs return to the pending queue (counted
  in ``repro_queue_requeued_total{reason="expired"}``) for any other
  worker to claim.  Expiry is checked lazily at the top of every queue
  operation, so no background timer is needed: the next claim,
  heartbeat, or status poll sweeps the dead.
* **Zero re-simulation.**  Results flow through the ordinary cache
  protocol (workers run an :class:`~repro.engine.runner.ExperimentEngine`
  whose cache *is* the coordinator's store), so a spec that was already
  simulated — by a previous campaign, a killed worker that managed to
  flush its write-back, or a duplicate lease after an expiry — is a
  cache hit, never a second simulation.  Submission marks already-cached
  specs done immediately.
* **Quarantine.**  A spec that fails ``quarantine_workers`` *distinct*
  workers (or ``max_attempts`` total attempts, so a one-worker fleet
  still terminates) is parked and reported in ``queue/status`` instead
  of being retried forever — one poison spec cannot wedge the campaign.
* **Coordinator restart.**  Queue state (jobs, completions, quarantine,
  the topology map) is persisted *through the backing store* as an
  ordinary entry under :data:`QUEUE_STATE_KEY`; ``repro serve --queue``
  rebuilds it on startup, re-checks the store for results that landed
  after the last persist, and returns in-flight leases (which are
  deliberately volatile) to the pending queue.

The wire protocol (``queue/submit`` … ``queue/status``) lives in
:mod:`repro.engine.store.http`; :class:`QueueClient` is the client half,
and :mod:`repro.engine.worker` builds the worker loop on top of it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..obs import get_logger
from ..obs.metrics import (
    QUEUE_COMPLETED,
    QUEUE_DEPTH,
    QUEUE_HEARTBEATS,
    QUEUE_LEASES,
    QUEUE_QUARANTINED,
    QUEUE_REQUEUED,
    QUEUE_SUBMITTED,
)
from .store.base import CacheBackend, chunked

if TYPE_CHECKING:
    from .store.http import RemoteStore

_log = get_logger("queue")

#: Reserved backend key holding the serialized queue state.  It rides
#: the same store as the results, so coordinator restarts — and even
#: moving the pack file to another host — carry the campaign along.
QUEUE_STATE_KEY = "queue:state"

#: Entry ``kind`` of the persisted state (never collides with ``sim``).
QUEUE_KIND = "queue"

#: Bump when the persisted state layout changes incompatibly; stale
#: state is discarded (the store's cached results make that lossless
#: for completions — pending work is resubmitted by the campaign).
QUEUE_STATE_VERSION = 1

#: Default lease duration.  Workers heartbeat at a third of this, so a
#: SIGKILLed worker's specs are back in the queue within one lease.
DEFAULT_LEASE_SECONDS = 60.0

#: A spec that fails this many *distinct* workers is quarantined.
DEFAULT_QUARANTINE_WORKERS = 2

#: Attempt cap so a single-worker fleet also terminates on poison.
DEFAULT_MAX_ATTEMPTS = 5


@dataclass
class QueueJob:
    """One spec in the queue: its wire form plus failure bookkeeping."""

    key: str
    spec: dict
    cost: float = 0.0
    attempts: int = 0
    failed_workers: list[str] = field(default_factory=list)
    last_error: str | None = None

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "spec": self.spec,
            "cost": self.cost,
            "attempts": self.attempts,
            "failed_workers": list(self.failed_workers),
            "last_error": self.last_error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueueJob":
        return cls(
            key=payload["key"],
            spec=payload["spec"],
            cost=payload.get("cost", 0.0),
            attempts=payload.get("attempts", 0),
            failed_workers=list(payload.get("failed_workers", [])),
            last_error=payload.get("last_error"),
        )


@dataclass
class Lease:
    """One worker's claim on a batch of specs, valid until ``deadline``."""

    lease_id: str
    worker: str
    keys: list[str]
    deadline: float


class JobQueue:
    """Lease-based work queue over a result-store backend.

    All methods are safe for concurrent callers (one internal lock; the
    HTTP server additionally serializes store access with its own).
    Mutations that survive a restart — submissions, completions,
    quarantines — persist the state through the backend; leases are
    volatile by design and collapse back into ``pending`` on reload.

    Args:
        backend: Store persisting both the results and the queue state.
        lease_seconds: How long a claim stays valid between heartbeats.
        quarantine_workers: Distinct failing workers that park a spec.
        max_attempts: Total failures that park a spec regardless of
            worker identity.
        clock: Injection point for lease-expiry time (tests).
    """

    def __init__(
        self,
        backend: CacheBackend,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        quarantine_workers: int = DEFAULT_QUARANTINE_WORKERS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.time,
    ):
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        self.backend = backend
        self.lease_seconds = lease_seconds
        self.quarantine_workers = max(1, quarantine_workers)
        self.max_attempts = max(1, max_attempts)
        self._clock = clock
        self._lock = threading.RLock()
        self.jobs: dict[str, QueueJob] = {}
        self.topologies: dict[str, str] = {}
        self.pending: list[str] = []
        self.done: set[str] = set()
        self.quarantined: dict[str, QueueJob] = {}
        self.leases: dict[str, Lease] = {}
        self._lease_seq = 0

    # -- persistence --------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-ready snapshot of everything worth surviving a restart."""
        return {
            "version": QUEUE_STATE_VERSION,
            "jobs": [job.to_dict() for job in self.jobs.values()],
            "topologies": dict(self.topologies),
            "done": sorted(self.done),
            "quarantined": [job.to_dict() for job in self.quarantined.values()],
        }

    def persist(self) -> None:
        """Write the state through the backend (best effort: a store
        hiccup must not fail the queue operation that triggered it —
        the next durable mutation retries)."""
        try:
            self.backend.put_payload(QUEUE_STATE_KEY, QUEUE_KIND, self.to_state())
        except OSError as exc:
            _log.warning("could not persist queue state: %s", exc)

    @classmethod
    def load(cls, backend: CacheBackend, **kw) -> "JobQueue":
        """Rebuild the queue from the backend's persisted state.

        In-flight leases are not persisted, so every non-done,
        non-quarantined job returns to ``pending``.  The store is then
        re-checked for results that landed *after* the last persist
        (e.g. a write-back that raced the coordinator's crash), so a
        restart never re-simulates work the store already holds.
        """
        queue = cls(backend, **kw)
        state = backend.get_payload(QUEUE_STATE_KEY, QUEUE_KIND)
        if not state or state.get("version") != QUEUE_STATE_VERSION:
            return queue
        for payload in state.get("jobs", []):
            job = QueueJob.from_dict(payload)
            queue.jobs[job.key] = job
        queue.topologies = dict(state.get("topologies", {}))
        queue.done = set(state.get("done", []))
        for payload in state.get("quarantined", []):
            job = QueueJob.from_dict(payload)
            queue.quarantined[job.key] = job
        queue.pending = [
            key
            for key in queue.jobs
            if key not in queue.done and key not in queue.quarantined
        ]
        queue._sort_pending()
        recovered = queue._absorb_cached(queue.pending)
        if queue.jobs:
            _log.info(
                "queue state restored: %d jobs (%d done, %d pending, "
                "%d quarantined, %d recovered from the store)",
                len(queue.jobs),
                len(queue.done),
                len(queue.pending),
                len(queue.quarantined),
                recovered,
            )
        queue._update_gauges()
        return queue

    # -- internals ----------------------------------------------------------

    def _sort_pending(self) -> None:
        """Heaviest-first dispatch order (ties broken by key for
        determinism) — the expensive near-saturation points go out
        first, so the campaign's tail is short instead of gated on one
        straggler holding the costliest spec."""
        costs = self.jobs
        self.pending.sort(key=lambda key: (-costs[key].cost, key))

    def _absorb_cached(self, keys: Iterable[str]) -> int:
        """Mark every key whose result the store already holds as done;
        returns how many were absorbed.  Call with the lock held."""
        wanted = [key for key in keys if key not in self.done]
        cached: set[str] = set()
        for chunk in chunked(wanted):
            try:
                cached.update(self.backend.get_payload_many(chunk, "sim"))
            except OSError as exc:
                _log.warning("cache probe during submit failed: %s", exc)
                break
        if cached:
            self.done.update(cached)
            self.pending = [key for key in self.pending if key not in cached]
        return len(cached)

    def _expire(self) -> int:
        """Requeue the unfinished specs of every lease past its deadline;
        returns how many specs were requeued.  Call with the lock held."""
        now = self._clock()
        requeued = 0
        for lease_id in [l_id for l_id, l in self.leases.items() if l.deadline < now]:
            lease = self.leases.pop(lease_id)
            lost = [
                key
                for key in lease.keys
                if key not in self.done
                and key not in self.quarantined
                and key not in self.pending
            ]
            if lost:
                self.pending.extend(lost)
                requeued += len(lost)
                QUEUE_REQUEUED.labels(reason="expired").inc(len(lost))
                _log.info(
                    "lease %s (worker %s) expired: requeued %d specs",
                    lease_id,
                    lease.worker,
                    len(lost),
                )
        if requeued:
            self._sort_pending()
        return requeued

    def _update_gauges(self) -> None:
        leased = sum(len(lease.keys) for lease in self.leases.values())
        QUEUE_DEPTH.labels(state="pending").set(len(self.pending))
        QUEUE_DEPTH.labels(state="leased").set(leased)
        QUEUE_DEPTH.labels(state="done").set(len(self.done))
        QUEUE_DEPTH.labels(state="quarantined").set(len(self.quarantined))

    def _leased_keys(self) -> set[str]:
        out: set[str] = set()
        for lease in self.leases.values():
            out.update(lease.keys)
        return out

    # -- operations (the wire protocol's server half) -----------------------

    def submit(
        self,
        jobs: Iterable[dict],
        topologies: Mapping[str, str] | None = None,
    ) -> dict:
        """Add specs to the queue; idempotent by content key.

        ``jobs`` are ``{key, spec, cost}`` dicts (``QueueJob`` wire
        form); ``topologies`` maps fingerprint topology tokens to the
        catalog symbols workers rebuild them from.  Keys already known
        are ignored; keys whose results the store already holds are
        marked done immediately (zero re-simulation of cached work).
        """
        with self._lock:
            self._expire()
            if topologies:
                self.topologies.update(topologies)
            fresh: list[str] = []
            duplicates = 0
            for payload in jobs:
                job = QueueJob.from_dict(payload)
                if job.key in self.jobs:
                    duplicates += 1
                    continue
                self.jobs[job.key] = job
                fresh.append(job.key)
            cached = self._absorb_cached(fresh) if fresh else 0
            accepted = [key for key in fresh if key not in self.done]
            self.pending.extend(accepted)
            self._sort_pending()
            if fresh:
                QUEUE_SUBMITTED.labels(outcome="accepted").inc(len(accepted))
            if cached:
                QUEUE_SUBMITTED.labels(outcome="cached").inc(cached)
            if duplicates:
                QUEUE_SUBMITTED.labels(outcome="duplicate").inc(duplicates)
            self.persist()
            self._update_gauges()
            _log.info(
                "submit: %d accepted, %d already cached, %d duplicates "
                "(%d pending)",
                len(accepted),
                cached,
                duplicates,
                len(self.pending),
            )
            return {
                "accepted": len(accepted),
                "cached": cached,
                "duplicates": duplicates,
                "total": len(self.jobs),
            }

    def claim(self, worker: str, max_specs: int = 4) -> dict:
        """Lease up to ``max_specs`` pending specs to ``worker``.

        Returns ``state="lease"`` with the batch, ``state="empty"`` when
        there is nothing claimable right now (poll again — the queue may
        be pre-submission idle, or everything left may be leased
        elsewhere), or ``state="drained"`` when a submitted campaign has
        fully finished (the worker should exit).  A queue nothing was
        ever submitted to reads ``empty``, not ``drained``, so workers
        may join the fleet before the campaign is submitted.
        """
        with self._lock:
            self._expire()
            if not self.pending:
                self._update_gauges()
                state = "drained" if self.jobs and not self.leases else "empty"
                return {"state": state}
            batch = self.pending[: max(1, max_specs)]
            self.pending = self.pending[len(batch) :]
            self._lease_seq += 1
            lease = Lease(
                lease_id=f"L{self._lease_seq}-{worker}",
                worker=worker,
                keys=list(batch),
                deadline=self._clock() + self.lease_seconds,
            )
            self.leases[lease.lease_id] = lease
            QUEUE_LEASES.inc()
            self._update_gauges()
            tokens = {self.jobs[key].spec.get("topology") for key in batch}
            return {
                "state": "lease",
                "lease": {
                    "id": lease.lease_id,
                    "lease_seconds": self.lease_seconds,
                    "jobs": [
                        {"key": key, "spec": self.jobs[key].spec} for key in batch
                    ],
                    "topologies": {
                        token: symbol
                        for token, symbol in self.topologies.items()
                        if token in tokens
                    },
                },
            }

    def heartbeat(self, lease_id: str) -> dict:
        """Extend ``lease_id``'s deadline by one lease duration."""
        with self._lock:
            self._expire()
            lease = self.leases.get(lease_id)
            if lease is None:
                QUEUE_HEARTBEATS.labels(outcome="unknown").inc()
                return {"ok": False}
            lease.deadline = self._clock() + self.lease_seconds
            QUEUE_HEARTBEATS.labels(outcome="ok").inc()
            return {"ok": True, "lease_seconds": self.lease_seconds}

    def complete(
        self,
        lease_id: str,
        worker: str,
        done: Iterable[str] = (),
        failed: Iterable[dict] = (),
        released: Iterable[str] = (),
    ) -> dict:
        """Settle a lease: completions, failures, and released specs.

        Accepted even when the lease has already expired (the worker's
        results are in the store either way — completion is idempotent
        by key).  ``failed`` entries are ``{key, error}``; a spec that
        has now failed :attr:`quarantine_workers` distinct workers, or
        :attr:`max_attempts` times in total, is quarantined.  Anything
        claimed but neither done, failed, nor released (a worker dying
        politely enough to call complete but not finish) is released
        too.
        """
        with self._lock:
            self._expire()
            lease = self.leases.pop(lease_id, None)
            # A stale complete (its lease expired and was reassigned) must
            # not requeue keys another worker currently holds — they would
            # be double-assigned.  Done keys still count: idempotent by key.
            leased_now = self._leased_keys()
            done = [key for key in done if key in self.jobs]
            failed = [entry for entry in failed if entry.get("key") in self.jobs]
            released = {key for key in released if key in self.jobs}
            if lease is not None:
                settled = set(done) | {entry["key"] for entry in failed} | released
                released.update(key for key in lease.keys if key not in settled)
            quarantined: list[str] = []
            newly_done = [key for key in done if key not in self.done]
            self.done.update(newly_done)
            if newly_done:
                QUEUE_COMPLETED.inc(len(newly_done))
                # A stale complete can finish a key that was requeued (or
                # even re-leased) in the meantime; done wins — drop it
                # from the pending list so the campaign can drain.
                self.pending = [
                    key for key in self.pending if key not in self.done
                ]
            for entry in failed:
                key = entry["key"]
                if key in self.done or key in self.quarantined:
                    continue
                job = self.jobs[key]
                job.attempts += 1
                if worker not in job.failed_workers:
                    job.failed_workers.append(worker)
                job.last_error = str(entry.get("error") or "unknown error")
                if (
                    len(job.failed_workers) >= self.quarantine_workers
                    or job.attempts >= self.max_attempts
                ):
                    self.quarantined[key] = job
                    quarantined.append(key)
                    QUEUE_QUARANTINED.inc()
                    _log.warning(
                        "quarantined %s after %d attempts by %d workers: %s",
                        key[:12],
                        job.attempts,
                        len(job.failed_workers),
                        job.last_error,
                    )
                elif key not in self.pending and key not in leased_now:
                    self.pending.append(key)
                    QUEUE_REQUEUED.labels(reason="failed").inc()
            requeue = [
                key
                for key in released
                if key not in self.done
                and key not in self.quarantined
                and key not in self.pending
                and key not in leased_now
            ]
            if requeue:
                self.pending.extend(requeue)
                QUEUE_REQUEUED.labels(reason="released").inc(len(requeue))
            self._sort_pending()
            self.persist()
            self._update_gauges()
            return {
                "ok": True,
                "known_lease": lease is not None,
                "quarantined": quarantined,
            }

    def status(self) -> dict:
        """Campaign progress snapshot (also sweeps expired leases)."""
        with self._lock:
            self._expire()
            self._update_gauges()
            leased = self._leased_keys()
            return {
                "total": len(self.jobs),
                "pending": len(self.pending),
                "leased": len(leased),
                "done": len(self.done),
                "quarantined": len(self.quarantined),
                "drained": bool(self.jobs) and not self.pending and not self.leases,
                "lease_seconds": self.lease_seconds,
                "workers": sorted({l.worker for l in self.leases.values()}),
                "quarantine": [
                    {
                        "key": job.key,
                        "attempts": job.attempts,
                        "workers": list(job.failed_workers),
                        "error": job.last_error,
                    }
                    for job in self.quarantined.values()
                ],
            }


class QueueClient:
    """Client half of the queue protocol, over a ``repro serve`` URL.

    A thin veneer on :class:`~repro.engine.store.http.RemoteStore`'s
    transport: the same bearer token, retry/backoff, and error surface
    apply to queue calls as to cache calls.
    """

    def __init__(self, store: "RemoteStore | str", **store_kw):
        from .store.http import RemoteStore

        if isinstance(store, str):
            store = RemoteStore(store, **store_kw)
        self.store = store

    @property
    def url(self) -> str:
        return self.store.url

    def submit(
        self,
        jobs: Iterable[dict],
        topologies: Mapping[str, str] | None = None,
    ) -> dict:
        """Submit ``{key, spec, cost}`` jobs, chunked like cache batches."""
        jobs = list(jobs)
        totals = {"accepted": 0, "cached": 0, "duplicates": 0, "total": 0}
        for chunk in chunked(jobs):
            reply = self.store._call(
                "queue/submit",
                {"jobs": chunk, "topologies": dict(topologies or {})},
            )
            for field_name in ("accepted", "cached", "duplicates"):
                totals[field_name] += reply[field_name]
            totals["total"] = reply["total"]
        return totals

    def claim(self, worker: str, max_specs: int = 4) -> dict:
        return self.store._call(
            "queue/claim", {"worker": worker, "max_specs": max_specs}
        )

    def heartbeat(self, lease_id: str) -> dict:
        return self.store._call("queue/heartbeat", {"lease": lease_id})

    def complete(
        self,
        lease_id: str,
        worker: str,
        done: Iterable[str] = (),
        failed: Iterable[dict] = (),
        released: Iterable[str] = (),
    ) -> dict:
        return self.store._call(
            "queue/complete",
            {
                "lease": lease_id,
                "worker": worker,
                "done": list(done),
                "failed": list(failed),
                "released": list(released),
            },
        )

    def status(self) -> dict:
        return self.store._call("queue/status")


def jobs_for_specs(
    specs: Iterable,
    node_counts: Mapping[str, int] | None = None,
    calibration=None,
) -> list[dict]:
    """Wire-form jobs for a batch of :class:`ExperimentSpec`\\ s.

    Costs come from :func:`~repro.engine.spec.predicted_cost` (upgraded
    to measured seconds when the calibration table covers the spec), so
    the queue's heaviest-first order matches ``--shard-balance cost``.
    Duplicate specs collapse to one job.
    """
    from .spec import predicted_cost

    nodes = node_counts or {}
    jobs: dict[str, dict] = {}
    for spec in specs:
        key = spec.content_hash()
        if key in jobs:
            continue
        jobs[key] = {
            "key": key,
            "spec": spec.to_dict(),
            "cost": predicted_cost(
                spec, nodes.get(spec.topology), calibration=calibration
            ),
        }
    return list(jobs.values())
