"""Elastic queue worker: claim, heartbeat, simulate, write back, repeat.

One :class:`QueueWorker` is one member of a fleet draining a
``repro serve --queue`` coordinator.  Its loop:

1. **Claim** a leased batch (``queue/claim``).  ``empty`` means all
   remaining work is leased elsewhere — poll again; ``drained`` means
   the campaign is finished — exit.
2. **Heartbeat** on a background thread at a third of the lease
   duration while the batch simulates, so a live worker's lease never
   expires mid-batch — and a SIGKILLed worker's lease expires within
   one lease duration, returning its specs to the queue.
3. **Simulate** through an ordinary :class:`ExperimentEngine` whose
   cache *is* the coordinator's store: already-computed specs are cache
   hits (zero re-simulation after lease expiry hand-offs), and results
   stream back through the existing batched ``put_many`` write-back —
   which flushes even when a later spec fails, so partial batches
   survive worker crashes.
4. **Complete** the lease (``queue/complete``): done keys, per-spec
   failures (the coordinator's quarantine counts them), and released
   keys for anything claimed but not attempted.

A batch that fails as a whole is retried spec-by-spec to isolate the
poison: one broken spec costs one failure report, not the batch.

Graceful drain: :meth:`QueueWorker.request_stop` (wired to SIGINT /
SIGTERM by the ``repro work`` CLI) lets the in-flight batch finish,
flushes its write-back, completes the lease, and exits the loop —
nothing is lost and nothing is left leased.  A second signal kills the
process the hard way, which the lease machinery also survives.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field

from ..obs import default_calibration, get_logger
from .queue import QueueClient
from .runner import ExperimentEngine
from .spec import ExperimentSpec, resolve_topology
from .store.frontend import ResultCache
from .store.http import RemoteStore, RemoteStoreError

_log = get_logger("worker")

#: Heartbeats fire at this fraction of the lease duration.
HEARTBEAT_FRACTION = 1 / 3

#: Default claim batch size (specs per lease).
DEFAULT_MAX_SPECS = 4

#: Default idle poll interval when the queue is momentarily empty.
DEFAULT_POLL_SECONDS = 2.0


def default_worker_id() -> str:
    """``host-pid``: unique per process, stable for its lifetime, and
    readable in ``queue/status`` output and quarantine reports."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """One worker process's tally, reported by ``repro work --json``."""

    leases: int = 0
    heartbeats: int = 0
    done: int = 0
    failed: int = 0
    released: int = 0
    cache_hits: int = 0
    executed: int = 0
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "leases": self.leases,
            "heartbeats": self.heartbeats,
            "done": self.done,
            "failed": self.failed,
            "released": self.released,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "errors": list(self.errors),
        }


class _Heartbeat:
    """Background lease keep-alive for the duration of one batch."""

    def __init__(self, client: QueueClient, lease_id: str, interval: float):
        self.client = client
        self.lease_id = lease_id
        self.interval = max(0.2, interval)
        self.sent = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.client.heartbeat(self.lease_id)
                self.sent += 1
            except RemoteStoreError as exc:
                # The coordinator may be restarting; the lease will be
                # re-issued if it expires, and complete() is idempotent.
                _log.debug("heartbeat for %s failed: %s", self.lease_id, exc)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self.interval + 1.0)


class QueueWorker:
    """The ``python -m repro work`` loop as a reusable object.

    Args:
        url: Coordinator base URL (``http://host:8123``).
        worker_id: Fleet-visible identity; defaults to ``host-pid``.
        max_specs: Specs to claim per lease.
        poll_seconds: Idle wait between claims when the queue is empty.
        max_workers: Process pool size for the simulation fan-out.
        token: Bearer token (defaults to ``REPRO_CACHE_TOKEN``).
        sleep: Injection point for the idle wait (tests).
    """

    def __init__(
        self,
        url: str,
        *,
        worker_id: str | None = None,
        max_specs: int = DEFAULT_MAX_SPECS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        max_workers: int = 1,
        token: str | None = None,
        sleep: float | None = None,
    ):
        self.url = url
        self.worker_id = worker_id or default_worker_id()
        self.max_specs = max(1, max_specs)
        self.poll_seconds = poll_seconds if sleep is None else sleep
        self.max_workers = max_workers
        self.store = RemoteStore(url, token=token)
        self.client = QueueClient(self.store)
        self.stats = WorkerStats()
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Graceful drain: finish the in-flight batch, then exit."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------

    def run(self) -> WorkerStats:
        """Drain the queue until it reports ``drained`` (or stop is
        requested); returns the worker's tally."""
        _log.info("worker %s joining %s", self.worker_id, self.url)
        cache = ResultCache(backend=self.store)
        with ExperimentEngine(
            cache=cache,
            max_workers=self.max_workers,
            calibration=default_calibration(),
        ) as engine:
            while not self.stopping:
                reply = self.client.claim(self.worker_id, self.max_specs)
                state = reply["state"]
                if state == "drained":
                    _log.info("queue drained; worker %s exiting", self.worker_id)
                    break
                if state == "empty":
                    # Everything left is leased elsewhere; if a lease
                    # expires, claiming resumes — poll, don't exit.
                    self._stop.wait(self.poll_seconds)
                    continue
                self._run_lease(engine, reply["lease"])
        self.stats.cache_hits = engine.total_stats.cache_hits
        self.stats.executed = engine.total_stats.executed
        return self.stats

    def _run_lease(self, engine: ExperimentEngine, lease: dict) -> None:
        """Simulate one claimed batch and settle its lease."""
        self.stats.leases += 1
        lease_id = lease["id"]
        interval = float(lease.get("lease_seconds", 60.0)) * HEARTBEAT_FRACTION
        jobs = lease["jobs"]
        _log.info(
            "lease %s: %d specs for worker %s", lease_id, len(jobs), self.worker_id
        )
        done: list[str] = []
        failed: list[dict] = []
        released: list[str] = []
        with _Heartbeat(self.client, lease_id, interval) as beat:
            specs, topologies = self._parse_jobs(
                jobs, lease.get("topologies", {}), failed
            )
            try:
                if specs:
                    engine.run(
                        [spec for _key, spec in specs], topologies=topologies
                    )
                    done.extend(key for key, _spec in specs)
            except RemoteStoreError:
                raise  # the coordinator is gone; let the loop surface it
            except Exception as exc:
                _log.warning(
                    "lease %s batch failed (%s); isolating per spec",
                    lease_id,
                    exc,
                )
                self._run_specs_individually(
                    engine, specs, topologies, done, failed, released
                )
        self.stats.heartbeats += beat.sent
        self.stats.done += len(done)
        self.stats.failed += len(failed)
        self.stats.released += len(released)
        reply = self.client.complete(
            lease_id, self.worker_id, done=done, failed=failed, released=released
        )
        for key in reply.get("quarantined", []):
            _log.warning("coordinator quarantined %s", key[:12])

    def _parse_jobs(
        self,
        jobs: list[dict],
        symbols: dict[str, str],
        failed: list[dict],
    ) -> tuple[list[tuple[str, ExperimentSpec]], dict]:
        """Rebuild specs and live topologies from a lease's wire form.

        Fingerprint topology tokens (``fp:...``) are resolved through
        the lease's ``{token: catalog symbol}`` map — the fingerprint of
        the rebuilt topology matches the token by construction, so the
        spec's content hash (and thus its cache key) is unchanged.  A
        spec that cannot even be rebuilt is reported failed right here.
        """
        specs: list[tuple[str, ExperimentSpec]] = []
        topologies: dict = {}
        for job in jobs:
            key = job["key"]
            try:
                spec = ExperimentSpec.from_dict(job["spec"])
                token = spec.topology
                if token not in topologies and token in symbols:
                    topologies[token] = resolve_topology(
                        symbols[token], spec.layout
                    )
                specs.append((key, spec))
            except (KeyError, ValueError, LookupError) as exc:
                failed.append({"key": key, "error": f"{type(exc).__name__}: {exc}"})
        return specs, topologies

    def _run_specs_individually(
        self,
        engine: ExperimentEngine,
        specs: list[tuple[str, ExperimentSpec]],
        topologies: dict,
        done: list[str],
        failed: list[dict],
        released: list[str],
    ) -> None:
        """Poison isolation: rerun a failed batch one spec at a time.

        Specs that already landed in the cache are free (cache hits);
        the one that breaks is reported individually.  If a graceful
        stop arrives mid-isolation, the untried remainder is released
        instead of attempted.
        """
        for index, (key, spec) in enumerate(specs):
            if self.stopping:
                released.extend(k for k, _s in specs[index:])
                return
            try:
                engine.run([spec], topologies=topologies)
                done.append(key)
            except RemoteStoreError:
                raise
            except Exception as exc:
                failed.append({"key": key, "error": f"{type(exc).__name__}: {exc}"})
