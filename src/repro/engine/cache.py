"""On-disk content-addressed result store.

Each entry is one JSON file named by the spec's content hash (sharded by
the first two hex digits), containing a schema tag, the spec that
produced it, and the serialized result::

    <root>/ab/abcdef….json
    {"schema": 1, "kind": "sim", "spec": {...}, "result": {...}}

Entries are written atomically (temp file + rename) with a canonical,
deterministic JSON encoding, so the same spec always produces
byte-identical files — re-running a figure is a pure cache read.  A
schema-tag mismatch (older/newer writer) is treated as a miss and the
entry is recomputed and overwritten.

Besides full simulation results the store also holds arbitrary keyed
JSON payloads (:meth:`ResultCache.get_payload`), used by the large-scale
analytical model to memoize its expensive channel-load computation.

The store never grows without bound: :meth:`ResultCache.gc` evicts
least-recently-used entries (every cache hit touches its file's mtime,
so mtime order *is* use order) down to a byte budget and/or age limit,
and always drops *unreachable* entries first — files written by an older
cache schema or an older :data:`~repro.engine.spec.SPEC_VERSION`, whose
keys no current spec can ever produce.  :meth:`ResultCache.stats`
reports those unreachable bytes as ``reclaimable``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from ..sim import SimResult
from .spec import SPEC_VERSION, ExperimentSpec

#: Bump when the on-disk layout of cache entries changes; mismatched
#: entries are ignored (recomputed and overwritten), never misread.
SCHEMA_VERSION = 1

#: Default cache location, overridable via the environment.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory plus this process's hit counters.

    ``reclaimable_entries``/``reclaimable_bytes`` count *unreachable*
    files: entries written under an older cache schema or an older spec
    version, which no current lookup key can ever hit.  ``cache gc``
    removes them unconditionally.
    """

    entries: int
    size_bytes: int
    hits: int
    misses: int
    reclaimable_entries: int = 0
    reclaimable_bytes: int = 0

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


@dataclass(frozen=True)
class GCReport:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    scanned_entries: int
    removed_entries: int
    removed_bytes: int
    kept_entries: int
    kept_bytes: int


class ResultCache:
    """Content-addressed JSON store for simulation results.

    Thread/process safe for readers; writes are atomic renames, so
    concurrent writers of the *same* key simply race to produce identical
    bytes.
    """

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- raw keyed payloads -------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get_payload(self, key: str, kind: str) -> dict | None:
        """Payload stored under ``key`` if present, readable, and current."""
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
            entry = json.loads(text)
        except (OSError, ValueError):
            self.misses += 1
            return None
        result = entry.get("result")
        if (
            entry.get("schema") != SCHEMA_VERSION
            or entry.get("kind") != kind
            or result is None
        ):
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Touch on read: mtime order is the LRU order gc() evicts in.
            os.utime(path)
        except OSError:
            pass
        return result

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> Path:
        """Atomically write ``result`` under ``key``; returns the file path."""
        entry = {"schema": SCHEMA_VERSION, "kind": kind, "result": result}
        if spec is not None:
            entry["spec"] = spec
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- simulation results -------------------------------------------------

    def get(self, spec: ExperimentSpec) -> SimResult | None:
        """Cached result for ``spec``, or ``None`` (miss / schema change)."""
        payload = self.get_payload(spec.content_hash(), kind="sim")
        if payload is None:
            return None
        return SimResult.from_dict(payload)

    def put(self, spec: ExperimentSpec, result: SimResult) -> Path:
        return self.put_payload(
            spec.content_hash(), kind="sim", result=result.to_dict(),
            spec=spec.to_dict(),
        )

    def path_for(self, spec: ExperimentSpec) -> Path:
        """Where ``spec``'s result lives (whether or not it exists yet)."""
        return self._path(spec.content_hash())

    # -- maintenance ---------------------------------------------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    @staticmethod
    def _is_unreachable(path: Path) -> bool:
        """True when no current lookup key can ever hit this entry.

        Entries are written by :meth:`put_payload` with a canonical
        encoding (sorted keys, ``(",", ":")`` separators), so the version
        markers appear as exact byte sequences — membership tests on the
        raw text replace a full JSON parse of every result payload.
        Anything not written by that encoder fails the check and counts
        as unreachable, which matches :meth:`get_payload` treating it as
        a permanent miss.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return True

        def has(marker: str) -> bool:  # value followed by , or } (not "1" in "12")
            return marker + "," in text or marker + "}" in text

        if not has(f'"schema":{SCHEMA_VERSION}'):
            return True
        if '"spec":{' in text and not has(f'"spec_version":{SPEC_VERSION}'):
            return True
        return False

    def stats(self) -> CacheStats:
        files = self._entry_files()
        size = 0
        reclaimable_entries = 0
        reclaimable_bytes = 0
        for path in files:
            try:
                nbytes = path.stat().st_size
            except OSError:
                continue
            size += nbytes
            if self._is_unreachable(path):
                reclaimable_entries += 1
                reclaimable_bytes += nbytes
        return CacheStats(
            entries=len(files), size_bytes=size, hits=self.hits,
            misses=self.misses, reclaimable_entries=reclaimable_entries,
            reclaimable_bytes=reclaimable_bytes,
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        """Evict entries, least-recently-used first; returns what happened.

        Unreachable entries (older schema or spec version) always go.
        Then entries untouched for more than ``max_age_days`` go, and
        finally the oldest-mtime survivors are dropped until the cache
        fits in ``max_bytes``.  ``gc()`` with no limits removes only the
        unreachable garbage.
        """
        now = time.time() if now is None else now
        survivors: list[tuple[float, int, Path]] = []  # (mtime, size, path)
        removed: list[tuple[int, Path]] = []
        files = self._entry_files()
        for path in files:
            try:
                stat = path.stat()
            except OSError:
                continue
            if self._is_unreachable(path):
                removed.append((stat.st_size, path))
            elif (
                max_age_days is not None
                and now - stat.st_mtime > max_age_days * 86400.0
            ):
                removed.append((stat.st_size, path))
            else:
                survivors.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None:
            survivors.sort()  # oldest mtime first
            total = sum(size for _, size, _ in survivors)
            while survivors and total > max_bytes:
                _, size, path = survivors.pop(0)
                removed.append((size, path))
                total -= size
        for _, path in removed:
            try:
                path.unlink()
            except OSError:
                pass
        self._prune_empty_shards()
        return GCReport(
            scanned_entries=len(files),
            removed_entries=len(removed),
            removed_bytes=sum(size for size, _ in removed),
            kept_entries=len(survivors),
            kept_bytes=sum(size for _, size, _ in survivors),
        )

    def _prune_empty_shards(self) -> None:
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        files = self._entry_files()
        for path in files:
            path.unlink()
        self._prune_empty_shards()
        return len(files)
