"""On-disk content-addressed result store.

Each entry is one JSON file named by the spec's content hash (sharded by
the first two hex digits), containing a schema tag, the spec that
produced it, and the serialized result::

    <root>/ab/abcdef….json
    {"schema": 1, "kind": "sim", "spec": {...}, "result": {...}}

Entries are written atomically (temp file + rename) with a canonical,
deterministic JSON encoding, so the same spec always produces
byte-identical files — re-running a figure is a pure cache read.  A
schema-tag mismatch (older/newer writer) is treated as a miss and the
entry is recomputed and overwritten.

Besides full simulation results the store also holds arbitrary keyed
JSON payloads (:meth:`ResultCache.get_payload`), used by the large-scale
analytical model to memoize its expensive channel-load computation.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..sim import SimResult
from .spec import ExperimentSpec

#: Bump when the on-disk layout of cache entries changes; mismatched
#: entries are ignored (recomputed and overwritten), never misread.
SCHEMA_VERSION = 1

#: Default cache location, overridable via the environment.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory plus this process's hit counters."""

    entries: int
    size_bytes: int
    hits: int
    misses: int

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


class ResultCache:
    """Content-addressed JSON store for simulation results.

    Thread/process safe for readers; writes are atomic renames, so
    concurrent writers of the *same* key simply race to produce identical
    bytes.
    """

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- raw keyed payloads -------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get_payload(self, key: str, kind: str) -> dict | None:
        """Payload stored under ``key`` if present, readable, and current."""
        try:
            text = self._path(key).read_text(encoding="utf-8")
            entry = json.loads(text)
        except (OSError, ValueError):
            self.misses += 1
            return None
        result = entry.get("result")
        if (
            entry.get("schema") != SCHEMA_VERSION
            or entry.get("kind") != kind
            or result is None
        ):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> Path:
        """Atomically write ``result`` under ``key``; returns the file path."""
        entry = {"schema": SCHEMA_VERSION, "kind": kind, "result": result}
        if spec is not None:
            entry["spec"] = spec
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- simulation results -------------------------------------------------

    def get(self, spec: ExperimentSpec) -> SimResult | None:
        """Cached result for ``spec``, or ``None`` (miss / schema change)."""
        payload = self.get_payload(spec.content_hash(), kind="sim")
        if payload is None:
            return None
        return SimResult.from_dict(payload)

    def put(self, spec: ExperimentSpec, result: SimResult) -> Path:
        return self.put_payload(
            spec.content_hash(), kind="sim", result=result.to_dict(),
            spec=spec.to_dict(),
        )

    def path_for(self, spec: ExperimentSpec) -> Path:
        """Where ``spec``'s result lives (whether or not it exists yet)."""
        return self._path(spec.content_hash())

    # -- maintenance ---------------------------------------------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def stats(self) -> CacheStats:
        files = self._entry_files()
        size = sum(f.stat().st_size for f in files)
        return CacheStats(
            entries=len(files), size_bytes=size, hits=self.hits, misses=self.misses
        )

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        files = self._entry_files()
        for path in files:
            path.unlink()
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return len(files)
