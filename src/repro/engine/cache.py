"""Backward-compatible alias for :mod:`repro.engine.store`.

The on-disk result cache grew into a package of pluggable backends
(sharded JSON directory, single-file SQLite pack) behind a
:class:`~repro.engine.store.base.CacheBackend` protocol; this module
keeps the historical import path working::

    from repro.engine.cache import ResultCache, SCHEMA_VERSION

See :mod:`repro.engine.store` for the real implementation.
"""

from .store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    SCHEMA_VERSION,
    CacheStats,
    GCReport,
    ResultCache,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "SCHEMA_VERSION",
    "CacheStats",
    "GCReport",
    "ResultCache",
    "default_cache_dir",
]
