"""Remote result store: the :class:`CacheBackend` protocol over JSON/HTTP.

This module is how sharded campaigns rendezvous *without shipping pack
files between hosts*: one machine runs ``python -m repro serve`` (a
:class:`StoreServer` — a stdlib ``ThreadingHTTPServer`` fronting any
local backend, a SQLite pack by default), and every shard host points
its engine at ``--cache-dir http://host:8123``.  Shard writers stream
results into the shared store as they finish, and the unsharded rerun
on any machine assembles the campaign as a pure cache read.

Two halves, one wire protocol:

* :class:`RemoteStore` — the client.  A full :class:`CacheBackend`
  (single and batched payloads, raw entries for ``cache export`` /
  ``cache merge``, ``iter_keys``/``stats``/``gc``/``clear``), so a URL
  is a first-class store location everywhere a path is: engine caches,
  merge sources *and* destinations, ``cache stats``.  Transient
  failures (connection refused, 5xx, timeouts) are retried with
  exponential backoff; a dead server surfaces as a single clear
  :class:`RemoteStoreError`, and a token mismatch as
  :class:`RemoteAuthError` (no retry — credentials do not heal).
* :class:`StoreServer` — the server.  Every request holds one lock
  around the backing store, so concurrent shard writers serialize into
  SQLite safely; with ``token=...`` (or ``--token`` / the
  ``REPRO_CACHE_TOKEN`` environment variable on the CLI) requests must
  carry ``Authorization: Bearer <token>``.

The wire protocol is deliberately minimal — JSON bodies over a handful
of endpoints, versioned by ``PROTOCOL_VERSION``:

====== ==================== ==========================================
method endpoint             body -> response
====== ==================== ==========================================
GET    ``/health``          -> ``{ok, protocol, schema, location}``
GET    ``/metrics``         -> Prometheus text exposition (0.0.4) of
                            the server process's metrics registry;
                            unauthenticated read-only, like /health
GET    ``/keys``            -> ``{keys: [...]}`` (legacy full dump;
                            kept so pre-protocol-2 clients keep
                            working — new code pages via keys/list)
POST   ``/keys/list``       ``{start_after?, limit?}`` ->
                            ``{keys, next}`` — one sorted page after
                            the cursor; ``next`` is the resume cursor,
                            ``null`` when the key space is exhausted
GET    ``/stats``           -> ``CacheStats`` fields (counters zero)
GET    ``/size``            -> ``{size_bytes}``
POST   ``/payloads/get``    ``{keys, kind}`` -> ``{found: {key: payload}}``
POST   ``/payloads/put``    ``{items: [[key, kind, result, spec]]}``
                            -> ``{written}``
POST   ``/entries/get``     ``{keys}`` -> ``{entries: {key: {entry, mtime}}}``
POST   ``/entries/put``     ``{entries: [{key, entry, mtime}]}`` -> ``{written}``
POST   ``/gc``              ``{max_bytes?, max_age_days?, now?}``
                            -> ``GCReport`` fields
POST   ``/clear``           ``{}`` -> ``{removed}``
GET    ``/queue/status``    -> campaign progress snapshot
POST   ``/queue/submit``    ``{jobs: [{key, spec, cost}], topologies}``
                            -> ``{accepted, cached, duplicates, total}``
POST   ``/queue/claim``     ``{worker, max_specs}`` -> ``{state, lease?}``
POST   ``/queue/heartbeat`` ``{lease}`` -> ``{ok, lease_seconds?}``
POST   ``/queue/complete``  ``{lease, worker, done, failed, released}``
                            -> ``{ok, known_lease, quarantined}``
====== ==================== ==========================================

The ``queue/*`` endpoints exist only when the server was started with a
:class:`~repro.engine.queue.JobQueue` (``repro serve --queue``) and —
unlike the read-only ``/health`` and ``/metrics`` — always require the
bearer token when one is configured: queue submissions carry arbitrary
spec payloads that workers will execute.

Batched calls are chunked client-side with the same
:func:`~repro.engine.store.base.chunked` bound the SQLite backend uses,
so one engine batch costs one round trip per ~500 keys — the runner's
cache-first pass over a remote store is a handful of POSTs, not a
per-spec probe storm.
"""

from __future__ import annotations

import hmac
import json
import os
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

if TYPE_CHECKING:
    from ..queue import JobQueue

from ...obs import get_logger, store_op
from ...obs.metrics import (
    REGISTRY,
    SERVER_ERRORS,
    SERVER_REQUESTS,
    SERVER_SECONDS,
    STORE_RETRIES,
)
from .base import (
    DEFAULT_KEY_BATCH,
    SCHEMA_VERSION,
    CacheBackend,
    CacheStats,
    GCReport,
    RawEntry,
    chunked,
    iter_all_keys,
)

_client_log = get_logger("store.remote")
_serve_log = get_logger("serve")

#: Bearer token honored by both the client (outgoing header) and the
#: ``repro serve`` CLI (required token) when set in the environment.
TOKEN_ENV = "REPRO_CACHE_TOKEN"

#: Bump when the endpoint set or body shapes change incompatibly.
#: 2: cursored ``keys/list`` pagination (``/keys`` kept as a legacy
#: full dump so protocol-1 clients still work).
PROTOCOL_VERSION = 2

#: Server-side clamp on one ``keys/list`` page: a client asking for the
#: world still gets bounded responses and has to walk the cursor.
MAX_KEYS_PAGE = 1000

#: Default ``repro serve`` bind (the README's rendezvous examples).
DEFAULT_PORT = 8123

#: Transient HTTP statuses worth retrying: timeouts, throttling, and
#: server-side 5xx.  Auth failures and client errors are permanent.
_RETRY_STATUSES = frozenset({408, 425, 429, 500, 502, 503, 504})


class RemoteStoreError(OSError):
    """The remote store could not be reached or refused the request.

    ``status`` carries the HTTP status code when the server answered
    with a permanent error, ``None`` for transport failures and
    exhausted retries — callers use it to tell "this server does not
    know the endpoint" (404, e.g. an older protocol) from "this server
    is gone".
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class RemoteAuthError(RemoteStoreError):
    """The server rejected the request's bearer token (401/403)."""


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds from a ``Retry-After`` header, or ``None`` to use backoff.

    Only the delta-seconds form is honored; the HTTP-date form (rare
    from coordinators we control) falls back to computed backoff.
    """
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


def _error_detail(exc: urllib.error.HTTPError) -> str:
    """The server's ``{"error": ...}`` body as a message suffix, if any."""
    try:
        body = json.loads(exc.read().decode("utf-8"))
        message = body.get("error")
    except (OSError, ValueError, AttributeError):
        return ""
    return f" ({message})" if message else ""


class RemoteStore:
    """:class:`CacheBackend` client for a ``repro serve`` endpoint.

    Args:
        url: Server base URL (``http://host:8123``).
        token: Bearer token sent with every request; defaults to the
            ``REPRO_CACHE_TOKEN`` environment variable.
        timeout: Per-request socket timeout in seconds.
        retries: Total attempts per request (first try included).
        backoff: Cap on the delay before attempt ``n``; the actual
            delay is full-jitter: uniform in ``[0, backoff * 2**(n-1)]``
            so a fleet of workers retrying a restarted coordinator
            spreads out instead of thundering-herding it in lockstep.
            A ``Retry-After`` header on a 429/503 response overrides
            the computed delay — the server knows best.
        max_retry_seconds: Wall-clock budget across all of a request's
            retries; once spent, the next retry is abandoned with a
            clear error even if attempts remain.
        sleep: Injection point for the backoff delay (tests).
        jitter: Injection point for the jitter draw in ``[0, 1)``;
            pass ``lambda: 1.0`` for deterministic worst-case delays.
    """

    def __init__(
        self,
        url: str,
        *,
        token: str | None = None,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.2,
        max_retry_seconds: float = 120.0,
        sleep: Callable[[float], None] = time.sleep,
        jitter: Callable[[], float] = random.random,
    ):
        self.url = url.rstrip("/")
        self.token = token if token is not None else os.environ.get(TOKEN_ENV) or None
        self.timeout = timeout
        self.retries = max(1, retries)
        self.backoff = backoff
        self.max_retry_seconds = max_retry_seconds
        self._sleep = sleep
        self._jitter = jitter
        # Set once a keys/list call comes back 404: the server predates
        # protocol 2, so iteration falls back to the legacy full dump.
        self._legacy_keys = False

    @property
    def location(self) -> str:
        return self.url

    def __repr__(self) -> str:
        return f"RemoteStore({self.url!r})"

    # -- wire ---------------------------------------------------------------

    def _call(self, endpoint: str, payload: dict | None = None) -> dict:
        """One JSON round trip, retrying transient failures with backoff.

        ``payload=None`` issues a GET; anything else POSTs its JSON
        encoding.  Permanent failures (4xx other than throttling) raise
        immediately; transient ones retry ``self.retries`` times — each
        delay full-jitter exponential, or whatever ``Retry-After`` the
        server sent on a 429/503 — and then surface one
        :class:`RemoteStoreError` naming the server.  The retry budget
        is also bounded by :attr:`max_retry_seconds` of wall clock, so
        a long outage fails with a clear error instead of stalling a
        worker indefinitely.
        """
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        last: Exception | None = None
        retry_after: float | None = None
        started = time.monotonic()
        # One store_op spans all attempts: the latency histogram reports
        # what the *caller* waited, backoff sleeps included; per-attempt
        # churn shows up in repro_store_retries_total instead.
        with store_op("remote", endpoint) as op:
            if data is not None:
                op.add_bytes(len(data))
            for attempt in range(self.retries):
                if attempt:
                    if retry_after is not None:
                        delay = max(0.0, retry_after)
                    else:
                        delay = self.backoff * (2 ** (attempt - 1)) * self._jitter()
                    spent = time.monotonic() - started
                    if spent + delay > self.max_retry_seconds:
                        raise RemoteStoreError(
                            f"remote store {self.url} still failing after "
                            f"{attempt} attempts spanning {spent:.1f}s (retry "
                            f"budget {self.max_retry_seconds:.0f}s, last "
                            f"error: {last}); is `python -m repro serve` "
                            "running there?"
                        ) from last
                    STORE_RETRIES.labels(endpoint=endpoint).inc()
                    _client_log.debug(
                        "retrying %s/%s (attempt %d/%d, delay %.2fs): %s",
                        self.url,
                        endpoint,
                        attempt + 1,
                        self.retries,
                        delay,
                        last,
                    )
                    self._sleep(delay)
                retry_after = None
                request = urllib.request.Request(
                    f"{self.url}/{endpoint}",
                    data=data,
                    headers=headers,
                    method="GET" if data is None else "POST",
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=self.timeout
                    ) as resp:
                        raw = resp.read()
                        op.add_bytes(len(raw))
                        return json.loads(raw.decode("utf-8"))
                except urllib.error.HTTPError as exc:
                    if exc.code in (401, 403):
                        raise RemoteAuthError(
                            f"{self.url} rejected the request (HTTP {exc.code}): "
                            f"set {TOKEN_ENV} to the token the server was "
                            "started with",
                            status=exc.code,
                        ) from None
                    if exc.code not in _RETRY_STATUSES:
                        detail = _error_detail(exc)
                        raise RemoteStoreError(
                            f"{self.url}/{endpoint} failed: HTTP {exc.code} "
                            f"{exc.reason}{detail}",
                            status=exc.code,
                        ) from None
                    if exc.code in (429, 503):
                        retry_after = _parse_retry_after(
                            exc.headers.get("Retry-After")
                        )
                    last = exc
                except (TimeoutError, OSError) as exc:  # URLError is an OSError
                    last = exc
        raise RemoteStoreError(
            f"remote store {self.url} is unreachable after {self.retries} "
            f"attempts (last error: {last}); is `python -m repro serve` "
            "running there?"
        ) from last

    def ping(self) -> dict:
        """One unauthenticated ``/health`` round trip (liveness probe)."""
        return self._call("health")

    # -- payloads -----------------------------------------------------------

    def get_payload(self, key: str, kind: str) -> dict | None:
        return self.get_payload_many([key], kind).get(key)

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        wanted = list(dict.fromkeys(keys))
        found: dict[str, dict] = {}
        for chunk in chunked(wanted):
            resp = self._call("payloads/get", {"keys": chunk, "kind": kind})
            found.update(resp["found"])
        return found

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        return self.put_payload_many([(key, kind, result, spec)])

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        written = 0
        for chunk in chunked(list(items)):
            rows = [[key, kind, result, spec] for key, kind, result, spec in chunk]
            written += self._call("payloads/put", {"items": rows})["written"]
        return written

    # -- raw entries --------------------------------------------------------

    def get_entry(self, key: str) -> RawEntry | None:
        return self.get_entry_many([key]).get(key)

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        wanted = list(dict.fromkeys(keys))
        found: dict[str, RawEntry] = {}
        for chunk in chunked(wanted):
            resp = self._call("entries/get", {"keys": chunk})
            for key, raw in resp["entries"].items():
                found[key] = RawEntry(key=key, entry=raw["entry"], mtime=raw["mtime"])
        return found

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        raw = RawEntry(
            key=key, entry=entry, mtime=time.time() if mtime is None else mtime
        )
        return self.put_entry_many([raw])

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        written = 0
        for chunk in chunked(list(entries)):
            resp = self._call(
                "entries/put",
                {
                    "entries": [
                        {"key": raw.key, "entry": raw.entry, "mtime": raw.mtime}
                        for raw in chunk
                    ]
                },
            )
            written += resp["written"]
        return written

    # -- maintenance --------------------------------------------------------

    def iter_keys(
        self, start_after: str | None = None, limit: int | None = None
    ) -> list[str]:
        page = DEFAULT_KEY_BATCH if limit is None else max(0, int(limit))
        if page == 0:
            return []
        if not self._legacy_keys:
            try:
                resp = self._call(
                    "keys/list", {"start_after": start_after, "limit": page}
                )
                return list(resp["keys"])
            except RemoteStoreError as exc:
                if exc.status != 404:
                    raise
                # Pre-protocol-2 server: remember, fall back to the
                # legacy full dump and page it client-side.  Costs one
                # full transfer per page against an old server — the
                # price of keeping old coordinators usable at all.
                self._legacy_keys = True
        keys = sorted(self._call("keys")["keys"])
        if start_after is not None:
            keys = [key for key in keys if key > start_after]
        return keys[:page]

    def size_bytes(self) -> int:
        return self._call("size")["size_bytes"]

    def stats(self) -> CacheStats:
        resp = self._call("stats")
        return CacheStats(
            entries=resp["entries"],
            size_bytes=resp["size_bytes"],
            hits=0,
            misses=0,
            reclaimable_entries=resp.get("reclaimable_entries", 0),
            reclaimable_bytes=resp.get("reclaimable_bytes", 0),
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        resp = self._call(
            "gc", {"max_bytes": max_bytes, "max_age_days": max_age_days, "now": now}
        )
        return GCReport(**resp)

    def clear(self) -> int:
        return self._call("clear", {})["removed"]

    def close(self) -> None:
        pass


# -- server -----------------------------------------------------------------


def _route_payloads_get(backend: CacheBackend, payload: dict) -> dict:
    return {"found": backend.get_payload_many(payload["keys"], payload["kind"])}


def _route_payloads_put(backend: CacheBackend, payload: dict) -> dict:
    items = [(key, kind, result, spec) for key, kind, result, spec in payload["items"]]
    return {"written": backend.put_payload_many(items)}


def _route_entries_get(backend: CacheBackend, payload: dict) -> dict:
    found = backend.get_entry_many(payload["keys"])
    return {
        "entries": {
            key: {"entry": raw.entry, "mtime": raw.mtime}
            for key, raw in found.items()
        }
    }


def _route_entries_put(backend: CacheBackend, payload: dict) -> dict:
    entries = [
        RawEntry(key=raw["key"], entry=raw["entry"], mtime=raw["mtime"])
        for raw in payload["entries"]
    ]
    return {"written": backend.put_entry_many(entries)}


def _route_gc(backend: CacheBackend, payload: dict) -> dict:
    report = backend.gc(
        max_bytes=payload.get("max_bytes"),
        max_age_days=payload.get("max_age_days"),
        now=payload.get("now"),
    )
    return asdict(report)


def _route_keys_list(backend: CacheBackend, payload: dict) -> dict:
    limit = payload.get("limit") or DEFAULT_KEY_BATCH
    limit = max(1, min(int(limit), MAX_KEYS_PAGE))
    keys = list(backend.iter_keys(start_after=payload.get("start_after"), limit=limit))
    return {"keys": keys, "next": keys[-1] if len(keys) == limit else None}


def _route_stats(backend: CacheBackend, payload: dict) -> dict:
    stats = backend.stats()
    return {
        "entries": stats.entries,
        "size_bytes": stats.size_bytes,
        "reclaimable_entries": stats.reclaimable_entries,
        "reclaimable_bytes": stats.reclaimable_bytes,
    }


_GET_ROUTES: dict[str, Callable[[CacheBackend, dict], dict]] = {
    # Legacy full dump (protocol 1): still served so old clients keep
    # working, but it walks the backend's cursor server-side rather
    # than asking any backend for an unbounded page.
    "/keys": lambda backend, payload: {"keys": list(iter_all_keys(backend))},
    "/stats": _route_stats,
    "/size": lambda backend, payload: {"size_bytes": backend.size_bytes()},
}

_POST_ROUTES: dict[str, Callable[[CacheBackend, dict], dict]] = {
    "/keys/list": _route_keys_list,
    "/payloads/get": _route_payloads_get,
    "/payloads/put": _route_payloads_put,
    "/entries/get": _route_entries_get,
    "/entries/put": _route_entries_put,
    "/gc": _route_gc,
    "/clear": lambda backend, payload: {"removed": backend.clear()},
}


def _route_queue_complete(queue: "JobQueue", payload: dict) -> dict:
    return queue.complete(
        payload["lease"],
        payload.get("worker", ""),
        done=payload.get("done", ()),
        failed=payload.get("failed", ()),
        released=payload.get("released", ()),
    )


# Queue routes take the server's JobQueue, not the raw backend; they are
# live only when `repro serve --queue` attached one.
_QUEUE_GET_ROUTES: dict[str, Callable[["JobQueue", dict], dict]] = {
    "/queue/status": lambda queue, payload: queue.status(),
}

_QUEUE_POST_ROUTES: dict[str, Callable[["JobQueue", dict], dict]] = {
    "/queue/submit": lambda queue, payload: queue.submit(
        payload["jobs"], payload.get("topologies")
    ),
    "/queue/claim": lambda queue, payload: queue.claim(
        payload["worker"], payload.get("max_specs", 4)
    ),
    "/queue/heartbeat": lambda queue, payload: queue.heartbeat(payload["lease"]),
    "/queue/complete": _route_queue_complete,
}


class _StoreHandler(BaseHTTPRequestHandler):
    """One request against the server's backing store.

    The body is always read before replying (keeps the socket in a sane
    state on errors), auth is checked before any store access, and every
    store call holds the server-wide lock — concurrent shard writers
    serialize here, which is what makes a plain SQLite pack (or even a
    directory store) safe to share over the network.
    """

    server_version = f"repro-store/{PROTOCOL_VERSION}"

    def log_message(self, fmt: str, *args) -> None:
        # Request lines ride the repro.* logger hierarchy (visible once
        # `configure_logging` runs, silent for library users) instead of
        # being hard-printed to stderr by the stdlib default.
        if not getattr(self.server, "quiet", False):
            _serve_log.info("%s %s", self.address_string(), fmt % args)

    def _reply(
        self,
        status: int,
        payload: dict,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self._send(status, blob, "application/json", headers)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._send(status, text.encode("utf-8"), content_type)

    def _send(
        self,
        status: int,
        blob: bytes,
        content_type: str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def _authorized(self) -> bool:
        token = self.server.token
        if token is None:
            return True
        supplied = self.headers.get("Authorization", "")
        # Compare as bytes: compare_digest raises on non-ASCII str input
        # (http.server decodes headers as latin-1), and an exception here
        # would abort the connection with no HTTP reply at all.
        expected = f"Bearer {token}".encode("utf-8", "surrogateescape")
        return hmac.compare_digest(
            supplied.encode("utf-8", "surrogateescape"), expected
        )

    def _dispatch(self, routes: dict, payload: dict) -> None:
        """Time and count every request around the actual handling."""
        start = time.perf_counter()
        path = "/" + self.path.strip("/")
        self._status = 500  # if _handle dies before replying
        try:
            self._handle(routes, path, payload)
        finally:
            known = (
                path in _GET_ROUTES
                or path in _POST_ROUTES
                or path in _QUEUE_GET_ROUTES
                or path in _QUEUE_POST_ROUTES
                or path in ("/health", "/metrics")
            )
            endpoint = path if known else "other"
            SERVER_REQUESTS.labels(endpoint=endpoint, method=self.command).inc()
            SERVER_SECONDS.labels(endpoint=endpoint).observe(
                time.perf_counter() - start
            )
            if self._status >= 400:
                SERVER_ERRORS.labels(
                    endpoint=endpoint, status=str(self._status)
                ).inc()

    def _fault_injected(self, path: str) -> bool:
        """Deterministic chaos: fail this request with an injected 503?

        Two knobs, combinable: ``fail_requests`` (the next N requests
        fail — ``inject_failures()`` / ``fail_next``) and ``fail_every``
        (every Nth store request fails — steady-state fault rate for
        soak tests).  ``/health`` and ``/metrics`` are exempt so
        readiness polls and scrapes stay truthful while chaos runs.
        """
        if path in ("/health", "/metrics"):
            return False
        server = self.server
        with server.fault_lock:
            if server.fail_requests > 0:
                server.fail_requests -= 1
                return True
            if server.fail_every > 0:
                server.request_seq += 1
                if server.request_seq % server.fail_every == 0:
                    return True
        return False

    def _handle(self, routes: dict, path: str, payload: dict) -> None:
        if self._fault_injected(path):
            headers = None
            if self.server.fail_retry_after is not None:
                headers = {"Retry-After": str(self.server.fail_retry_after)}
            return self._reply(
                503, {"error": "injected transient failure"}, headers
            )
        if path == "/health":
            return self._reply(
                200,
                {
                    "ok": True,
                    "protocol": PROTOCOL_VERSION,
                    "schema": SCHEMA_VERSION,
                    "location": self.server.backend.location,
                },
            )
        if path == "/metrics" and self.command == "GET":
            # Unauthenticated read-only scrape, like /health: exposes
            # operational counters, never cached results.
            return self._reply_text(
                200,
                REGISTRY.render(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if not self._authorized():
            return self._reply(401, {"error": "missing or invalid bearer token"})
        if path.startswith("/queue/"):
            return self._handle_queue(path, payload)
        route = routes.get(path)
        if route is None:
            return self._reply(
                404, {"error": f"unknown endpoint {self.command} {path}"}
            )
        try:
            with self.server.lock:
                result = route(self.server.backend, payload)
        except Exception as exc:  # surface, don't kill the worker thread
            return self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        self._reply(200, result)

    def _handle_queue(self, path: str, payload: dict) -> None:
        queue = self.server.queue
        if queue is None:
            return self._reply(
                404,
                {"error": "work queue disabled; restart with `repro serve --queue`"},
            )
        routes = _QUEUE_GET_ROUTES if self.command == "GET" else _QUEUE_POST_ROUTES
        route = routes.get(path)
        if route is None:
            return self._reply(
                404, {"error": f"unknown endpoint {self.command} {path}"}
            )
        try:
            # The server-wide lock also covers queue operations: they
            # persist state and probe caches through the same backing
            # store the cache endpoints serialize on.
            with self.server.lock:
                result = route(queue, payload)
        except KeyError as exc:
            return self._reply(400, {"error": f"missing field {exc}"})
        except Exception as exc:  # surface, don't kill the worker thread
            return self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        self._reply(200, result)

    def do_GET(self) -> None:
        self._dispatch(_GET_ROUTES, {})

    def do_POST(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            return self._reply(400, {"error": "request body is not valid JSON"})
        self._dispatch(_POST_ROUTES, payload)


class StoreServer:
    """Serve any local :class:`CacheBackend` over the wire protocol.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    resolved address either way.  :meth:`start` runs the accept loop on
    a daemon thread and returns ``self`` (fixture style);
    :meth:`serve_forever` blocks (the ``repro serve`` CLI).
    """

    def __init__(
        self,
        backend: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        quiet: bool = False,
        queue: "JobQueue | None" = None,
        fail_every: int = 0,
    ):
        self.backend = backend
        self.queue = queue
        self._httpd = ThreadingHTTPServer((host, port), _StoreHandler)
        # Non-daemon + block_on_close: server_close() joins in-flight
        # request threads, so close() really does drain before it
        # persists queue state and closes the backend.  Handler threads
        # are short-lived (HTTP/1.0, one request per connection), so
        # the join is bounded by one request's service time.
        self._httpd.daemon_threads = False
        self._httpd.backend = backend
        self._httpd.token = token
        self._httpd.lock = threading.Lock()
        self._httpd.quiet = quiet
        self._httpd.queue = queue
        self._httpd.fault_lock = threading.Lock()
        self._httpd.fail_requests = 0
        self._httpd.fail_every = max(0, fail_every)
        self._httpd.fail_retry_after = None
        self._httpd.request_seq = 0
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def inject_failures(
        self, count: int, retry_after: float | None = None
    ) -> None:
        """Make the next ``count`` store requests fail with 503.

        ``retry_after`` additionally stamps a ``Retry-After`` header on
        every injected failure (it also applies to ``fail_every``
        faults), exercising the client's server-directed delay path.
        ``/health`` and ``/metrics`` are never failed.
        """
        with self._httpd.fault_lock:
            self._httpd.fail_requests = count
            self._httpd.fail_retry_after = retry_after

    @property
    def fail_every(self) -> int:
        return self._httpd.fail_every

    @fail_every.setter
    def fail_every(self, every: int) -> None:
        """Fail every ``every``-th store request with 503 (0 disables)."""
        with self._httpd.fault_lock:
            self._httpd.fail_every = max(0, every)

    def start(self) -> "StoreServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting, drain in-flight requests, persist, close.

        ``ThreadingHTTPServer.server_close`` joins the request threads
        (``block_on_close``), so by the time the queue state is
        persisted and the backend closed, no handler is mid-write —
        this is what makes SIGINT/SIGTERM on ``repro serve`` safe for
        a SQLite pack mid-campaign.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        if self.queue is not None:
            self.queue.persist()
        self.backend.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
