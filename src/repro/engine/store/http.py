"""Remote result store: the :class:`CacheBackend` protocol over JSON/HTTP.

This module is how sharded campaigns rendezvous *without shipping pack
files between hosts*: one machine runs ``python -m repro serve`` (a
:class:`StoreServer` — a stdlib ``ThreadingHTTPServer`` fronting any
local backend, a SQLite pack by default), and every shard host points
its engine at ``--cache-dir http://host:8123``.  Shard writers stream
results into the shared store as they finish, and the unsharded rerun
on any machine assembles the campaign as a pure cache read.

Two halves, one wire protocol:

* :class:`RemoteStore` — the client.  A full :class:`CacheBackend`
  (single and batched payloads, raw entries for ``cache export`` /
  ``cache merge``, ``iter_keys``/``stats``/``gc``/``clear``), so a URL
  is a first-class store location everywhere a path is: engine caches,
  merge sources *and* destinations, ``cache stats``.  Transient
  failures (connection refused, 5xx, timeouts) are retried with
  exponential backoff; a dead server surfaces as a single clear
  :class:`RemoteStoreError`, and a token mismatch as
  :class:`RemoteAuthError` (no retry — credentials do not heal).
* :class:`StoreServer` — the server.  Every request holds one lock
  around the backing store, so concurrent shard writers serialize into
  SQLite safely; with ``token=...`` (or ``--token`` / the
  ``REPRO_CACHE_TOKEN`` environment variable on the CLI) requests must
  carry ``Authorization: Bearer <token>``.

The wire protocol is deliberately minimal — JSON bodies over a handful
of endpoints, versioned by ``PROTOCOL_VERSION``:

====== ==================== ==========================================
method endpoint             body -> response
====== ==================== ==========================================
GET    ``/health``          -> ``{ok, protocol, schema, location}``
GET    ``/metrics``         -> Prometheus text exposition (0.0.4) of
                            the server process's metrics registry;
                            unauthenticated read-only, like /health
GET    ``/keys``            -> ``{keys: [...]}``
GET    ``/stats``           -> ``CacheStats`` fields (counters zero)
GET    ``/size``            -> ``{size_bytes}``
POST   ``/payloads/get``    ``{keys, kind}`` -> ``{found: {key: payload}}``
POST   ``/payloads/put``    ``{items: [[key, kind, result, spec]]}``
                            -> ``{written}``
POST   ``/entries/get``     ``{keys}`` -> ``{entries: {key: {entry, mtime}}}``
POST   ``/entries/put``     ``{entries: [{key, entry, mtime}]}`` -> ``{written}``
POST   ``/gc``              ``{max_bytes?, max_age_days?, now?}``
                            -> ``GCReport`` fields
POST   ``/clear``           ``{}`` -> ``{removed}``
====== ==================== ==========================================

Batched calls are chunked client-side with the same
:func:`~repro.engine.store.base.chunked` bound the SQLite backend uses,
so one engine batch costs one round trip per ~500 keys — the runner's
cache-first pass over a remote store is a handful of POSTs, not a
per-spec probe storm.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Iterator

from ...obs import get_logger, store_op
from ...obs.metrics import (
    REGISTRY,
    SERVER_ERRORS,
    SERVER_REQUESTS,
    SERVER_SECONDS,
    STORE_RETRIES,
)
from .base import (
    SCHEMA_VERSION,
    CacheBackend,
    CacheStats,
    GCReport,
    RawEntry,
    chunked,
)

_client_log = get_logger("store.remote")
_serve_log = get_logger("serve")

#: Bearer token honored by both the client (outgoing header) and the
#: ``repro serve`` CLI (required token) when set in the environment.
TOKEN_ENV = "REPRO_CACHE_TOKEN"

#: Bump when the endpoint set or body shapes change incompatibly.
PROTOCOL_VERSION = 1

#: Default ``repro serve`` bind (the README's rendezvous examples).
DEFAULT_PORT = 8123

#: Transient HTTP statuses worth retrying: timeouts, throttling, and
#: server-side 5xx.  Auth failures and client errors are permanent.
_RETRY_STATUSES = frozenset({408, 425, 429, 500, 502, 503, 504})


class RemoteStoreError(OSError):
    """The remote store could not be reached or refused the request."""


class RemoteAuthError(RemoteStoreError):
    """The server rejected the request's bearer token (401/403)."""


class RemoteStore:
    """:class:`CacheBackend` client for a ``repro serve`` endpoint.

    Args:
        url: Server base URL (``http://host:8123``).
        token: Bearer token sent with every request; defaults to the
            ``REPRO_CACHE_TOKEN`` environment variable.
        timeout: Per-request socket timeout in seconds.
        retries: Total attempts per request (first try included).
        backoff: Base delay between attempts; doubles each retry.
        sleep: Injection point for the backoff delay (tests).
    """

    def __init__(
        self,
        url: str,
        *,
        token: str | None = None,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.url = url.rstrip("/")
        self.token = token if token is not None else os.environ.get(TOKEN_ENV) or None
        self.timeout = timeout
        self.retries = max(1, retries)
        self.backoff = backoff
        self._sleep = sleep

    @property
    def location(self) -> str:
        return self.url

    def __repr__(self) -> str:
        return f"RemoteStore({self.url!r})"

    # -- wire ---------------------------------------------------------------

    def _call(self, endpoint: str, payload: dict | None = None) -> dict:
        """One JSON round trip, retrying transient failures with backoff.

        ``payload=None`` issues a GET; anything else POSTs its JSON
        encoding.  Permanent failures (4xx other than throttling) raise
        immediately; transient ones retry ``self.retries`` times and
        then surface one :class:`RemoteStoreError` naming the server.
        """
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        last: Exception | None = None
        # One store_op spans all attempts: the latency histogram reports
        # what the *caller* waited, backoff sleeps included; per-attempt
        # churn shows up in repro_store_retries_total instead.
        with store_op("remote", endpoint) as op:
            if data is not None:
                op.add_bytes(len(data))
            for attempt in range(self.retries):
                if attempt:
                    STORE_RETRIES.labels(endpoint=endpoint).inc()
                    _client_log.debug(
                        "retrying %s/%s (attempt %d/%d): %s",
                        self.url,
                        endpoint,
                        attempt + 1,
                        self.retries,
                        last,
                    )
                    self._sleep(self.backoff * (2 ** (attempt - 1)))
                request = urllib.request.Request(
                    f"{self.url}/{endpoint}",
                    data=data,
                    headers=headers,
                    method="GET" if data is None else "POST",
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=self.timeout
                    ) as resp:
                        raw = resp.read()
                        op.add_bytes(len(raw))
                        return json.loads(raw.decode("utf-8"))
                except urllib.error.HTTPError as exc:
                    if exc.code in (401, 403):
                        raise RemoteAuthError(
                            f"{self.url} rejected the request (HTTP {exc.code}): "
                            f"set {TOKEN_ENV} to the token the server was "
                            "started with"
                        ) from None
                    if exc.code not in _RETRY_STATUSES:
                        raise RemoteStoreError(
                            f"{self.url}/{endpoint} failed: HTTP {exc.code} "
                            f"{exc.reason}"
                        ) from None
                    last = exc
                except (TimeoutError, OSError) as exc:  # URLError is an OSError
                    last = exc
        raise RemoteStoreError(
            f"remote store {self.url} is unreachable after {self.retries} "
            f"attempts (last error: {last}); is `python -m repro serve` "
            "running there?"
        ) from last

    def ping(self) -> dict:
        """One unauthenticated ``/health`` round trip (liveness probe)."""
        return self._call("health")

    # -- payloads -----------------------------------------------------------

    def get_payload(self, key: str, kind: str) -> dict | None:
        return self.get_payload_many([key], kind).get(key)

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        wanted = list(dict.fromkeys(keys))
        found: dict[str, dict] = {}
        for chunk in chunked(wanted):
            resp = self._call("payloads/get", {"keys": chunk, "kind": kind})
            found.update(resp["found"])
        return found

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        return self.put_payload_many([(key, kind, result, spec)])

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        written = 0
        for chunk in chunked(list(items)):
            rows = [[key, kind, result, spec] for key, kind, result, spec in chunk]
            written += self._call("payloads/put", {"items": rows})["written"]
        return written

    # -- raw entries --------------------------------------------------------

    def get_entry(self, key: str) -> RawEntry | None:
        return self.get_entry_many([key]).get(key)

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        wanted = list(dict.fromkeys(keys))
        found: dict[str, RawEntry] = {}
        for chunk in chunked(wanted):
            resp = self._call("entries/get", {"keys": chunk})
            for key, raw in resp["entries"].items():
                found[key] = RawEntry(key=key, entry=raw["entry"], mtime=raw["mtime"])
        return found

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        raw = RawEntry(
            key=key, entry=entry, mtime=time.time() if mtime is None else mtime
        )
        return self.put_entry_many([raw])

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        written = 0
        for chunk in chunked(list(entries)):
            resp = self._call(
                "entries/put",
                {
                    "entries": [
                        {"key": raw.key, "entry": raw.entry, "mtime": raw.mtime}
                        for raw in chunk
                    ]
                },
            )
            written += resp["written"]
        return written

    # -- maintenance --------------------------------------------------------

    def iter_keys(self) -> Iterator[str]:
        yield from self._call("keys")["keys"]

    def size_bytes(self) -> int:
        return self._call("size")["size_bytes"]

    def stats(self) -> CacheStats:
        resp = self._call("stats")
        return CacheStats(
            entries=resp["entries"],
            size_bytes=resp["size_bytes"],
            hits=0,
            misses=0,
            reclaimable_entries=resp.get("reclaimable_entries", 0),
            reclaimable_bytes=resp.get("reclaimable_bytes", 0),
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        resp = self._call(
            "gc", {"max_bytes": max_bytes, "max_age_days": max_age_days, "now": now}
        )
        return GCReport(**resp)

    def clear(self) -> int:
        return self._call("clear", {})["removed"]

    def close(self) -> None:
        pass


# -- server -----------------------------------------------------------------


def _route_payloads_get(backend: CacheBackend, payload: dict) -> dict:
    return {"found": backend.get_payload_many(payload["keys"], payload["kind"])}


def _route_payloads_put(backend: CacheBackend, payload: dict) -> dict:
    items = [(key, kind, result, spec) for key, kind, result, spec in payload["items"]]
    return {"written": backend.put_payload_many(items)}


def _route_entries_get(backend: CacheBackend, payload: dict) -> dict:
    found = backend.get_entry_many(payload["keys"])
    return {
        "entries": {
            key: {"entry": raw.entry, "mtime": raw.mtime}
            for key, raw in found.items()
        }
    }


def _route_entries_put(backend: CacheBackend, payload: dict) -> dict:
    entries = [
        RawEntry(key=raw["key"], entry=raw["entry"], mtime=raw["mtime"])
        for raw in payload["entries"]
    ]
    return {"written": backend.put_entry_many(entries)}


def _route_gc(backend: CacheBackend, payload: dict) -> dict:
    report = backend.gc(
        max_bytes=payload.get("max_bytes"),
        max_age_days=payload.get("max_age_days"),
        now=payload.get("now"),
    )
    return asdict(report)


def _route_stats(backend: CacheBackend, payload: dict) -> dict:
    stats = backend.stats()
    return {
        "entries": stats.entries,
        "size_bytes": stats.size_bytes,
        "reclaimable_entries": stats.reclaimable_entries,
        "reclaimable_bytes": stats.reclaimable_bytes,
    }


_GET_ROUTES: dict[str, Callable[[CacheBackend, dict], dict]] = {
    "/keys": lambda backend, payload: {"keys": list(backend.iter_keys())},
    "/stats": _route_stats,
    "/size": lambda backend, payload: {"size_bytes": backend.size_bytes()},
}

_POST_ROUTES: dict[str, Callable[[CacheBackend, dict], dict]] = {
    "/payloads/get": _route_payloads_get,
    "/payloads/put": _route_payloads_put,
    "/entries/get": _route_entries_get,
    "/entries/put": _route_entries_put,
    "/gc": _route_gc,
    "/clear": lambda backend, payload: {"removed": backend.clear()},
}


class _StoreHandler(BaseHTTPRequestHandler):
    """One request against the server's backing store.

    The body is always read before replying (keeps the socket in a sane
    state on errors), auth is checked before any store access, and every
    store call holds the server-wide lock — concurrent shard writers
    serialize here, which is what makes a plain SQLite pack (or even a
    directory store) safe to share over the network.
    """

    server_version = f"repro-store/{PROTOCOL_VERSION}"

    def log_message(self, fmt: str, *args) -> None:
        # Request lines ride the repro.* logger hierarchy (visible once
        # `configure_logging` runs, silent for library users) instead of
        # being hard-printed to stderr by the stdlib default.
        if not getattr(self.server, "quiet", False):
            _serve_log.info("%s %s", self.address_string(), fmt % args)

    def _reply(self, status: int, payload: dict) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self._send(status, blob, "application/json")

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._send(status, text.encode("utf-8"), content_type)

    def _send(self, status: int, blob: bytes, content_type: str) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _authorized(self) -> bool:
        token = self.server.token
        if token is None:
            return True
        supplied = self.headers.get("Authorization", "")
        # Compare as bytes: compare_digest raises on non-ASCII str input
        # (http.server decodes headers as latin-1), and an exception here
        # would abort the connection with no HTTP reply at all.
        expected = f"Bearer {token}".encode("utf-8", "surrogateescape")
        return hmac.compare_digest(
            supplied.encode("utf-8", "surrogateescape"), expected
        )

    def _dispatch(self, routes: dict, payload: dict) -> None:
        """Time and count every request around the actual handling."""
        start = time.perf_counter()
        path = "/" + self.path.strip("/")
        self._status = 500  # if _handle dies before replying
        try:
            self._handle(routes, path, payload)
        finally:
            known = (
                path in _GET_ROUTES
                or path in _POST_ROUTES
                or path in ("/health", "/metrics")
            )
            endpoint = path if known else "other"
            SERVER_REQUESTS.labels(endpoint=endpoint, method=self.command).inc()
            SERVER_SECONDS.labels(endpoint=endpoint).observe(
                time.perf_counter() - start
            )
            if self._status >= 400:
                SERVER_ERRORS.labels(
                    endpoint=endpoint, status=str(self._status)
                ).inc()

    def _handle(self, routes: dict, path: str, payload: dict) -> None:
        if self.server.fail_requests > 0:  # test hook: transient failures
            self.server.fail_requests -= 1
            return self._reply(503, {"error": "injected transient failure"})
        if path == "/health":
            return self._reply(
                200,
                {
                    "ok": True,
                    "protocol": PROTOCOL_VERSION,
                    "schema": SCHEMA_VERSION,
                    "location": self.server.backend.location,
                },
            )
        if path == "/metrics" and self.command == "GET":
            # Unauthenticated read-only scrape, like /health: exposes
            # operational counters, never cached results.
            return self._reply_text(
                200,
                REGISTRY.render(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if not self._authorized():
            return self._reply(401, {"error": "missing or invalid bearer token"})
        route = routes.get(path)
        if route is None:
            return self._reply(
                404, {"error": f"unknown endpoint {self.command} {path}"}
            )
        try:
            with self.server.lock:
                result = route(self.server.backend, payload)
        except Exception as exc:  # surface, don't kill the worker thread
            return self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        self._reply(200, result)

    def do_GET(self) -> None:
        self._dispatch(_GET_ROUTES, {})

    def do_POST(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            return self._reply(400, {"error": "request body is not valid JSON"})
        self._dispatch(_POST_ROUTES, payload)


class StoreServer:
    """Serve any local :class:`CacheBackend` over the wire protocol.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    resolved address either way.  :meth:`start` runs the accept loop on
    a daemon thread and returns ``self`` (fixture style);
    :meth:`serve_forever` blocks (the ``repro serve`` CLI).
    """

    def __init__(
        self,
        backend: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        quiet: bool = False,
    ):
        self.backend = backend
        self._httpd = ThreadingHTTPServer((host, port), _StoreHandler)
        self._httpd.daemon_threads = True
        self._httpd.backend = backend
        self._httpd.token = token
        self._httpd.lock = threading.Lock()
        self._httpd.quiet = quiet
        self._httpd.fail_requests = 0
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def inject_failures(self, count: int) -> None:
        """Make the next ``count`` requests fail with 503 (retry tests)."""
        self._httpd.fail_requests = count

    def start(self) -> "StoreServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self.backend.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
