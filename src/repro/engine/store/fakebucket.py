"""A local stdlib bucket server for object-store tests and CI.

Just enough of an S3-flavored API for :class:`HTTPTransport`: objects
are opaque bytes with one piece of metadata (the logical mtime), and
listings are cursored (``start-after`` / ``max-keys``), which is what
the cursored ``iter_keys`` contract bottoms out on.  The wire shape is
JSON rather than S3's XML because both ends of this protocol live in
this repo — real S3 is reached through :class:`Boto3Transport` instead.

Endpoints (``<key>`` may contain ``/`` and is URL-quoted):

====== ============================ =================================
method path                         behavior
====== ============================ =================================
GET    ``/__health``                ``{ok: true}`` readiness probe
GET    ``/__log``                   plain-text request log (CI
                                    uploads this as an artifact)
GET    ``/<bucket>/<key>``          object bytes; logical mtime in
                                    the ``x-repro-mtime`` header
PUT    ``/<bucket>/<key>``          store body; mtime from the
                                    ``x-repro-mtime`` header
POST   ``/<bucket>/<key>?touch=T``  metadata-only mtime update
DELETE ``/<bucket>/<key>``          delete (missing is a 404, which
                                    clients treat as success)
GET    ``/<bucket>?list-type=2&prefix=&start-after=&max-keys=N``
                                    one sorted page:
                                    ``{objects: [{key, size, mtime}],
                                    truncated}``
====== ============================ =================================

Run standalone for CI smoke jobs::

    python -m repro.engine.store.fakebucket --port 9000

or embed in tests via the :class:`FakeBucketServer` context manager
(ephemeral port, daemon accept loop — the same fixture style as
:class:`~repro.engine.store.http.StoreServer`).
"""

from __future__ import annotations

import argparse
import json
import threading
import urllib.parse
from bisect import bisect_left, bisect_right
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class _Bucket:
    """One bucket: objects plus a lazily rebuilt sorted key index."""

    def __init__(self):
        self.objects: dict[str, tuple[bytes, float]] = {}
        self._index: list[str] | None = None

    def index(self) -> list[str]:
        if self._index is None:
            self._index = sorted(self.objects)
        return self._index

    def put(self, key: str, body: bytes, mtime: float) -> None:
        if key not in self.objects:
            self._index = None
        self.objects[key] = (body, mtime)

    def delete(self, key: str) -> bool:
        if self.objects.pop(key, None) is None:
            return False
        self._index = None
        return True

    def list_page(
        self, prefix: str, start_after: str | None, limit: int
    ) -> tuple[list[dict], bool]:
        index = self.index()
        lo = bisect_left(index, prefix) if prefix else 0
        if start_after:
            lo = max(lo, bisect_right(index, start_after))
        page: list[dict] = []
        truncated = False
        for position, key in enumerate(index[lo:]):
            if prefix and not key.startswith(prefix):
                break
            if len(page) >= limit:
                truncated = lo + position < len(index)
                break
            body, mtime = self.objects[key]
            page.append({"key": key, "size": len(body), "mtime": mtime})
        return page, truncated


class _BucketHandler(BaseHTTPRequestHandler):
    def log_message(self, fmt: str, *args) -> None:
        if not self.server.quiet:  # pragma: no cover - stderr chatter
            super().log_message(fmt, *args)

    def _reply(self, status: int, blob: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(status, json.dumps(payload).encode("utf-8"), "application/json")

    def _split(self) -> tuple[str, str, dict[str, str]]:
        """``(bucket, object_key, query)`` from the request path."""
        parsed = urllib.parse.urlsplit(self.path)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        bucket, _, key = parsed.path.strip("/").partition("/")
        return urllib.parse.unquote(bucket), urllib.parse.unquote(key), query

    def _log_request(self) -> None:
        with self.server.lock:
            self.server.request_log.append(f"{self.command} {self.path}")

    def do_GET(self) -> None:
        self._log_request()
        bucket_name, key, query = self._split()
        if bucket_name == "__health":
            return self._reply_json(200, {"ok": True})
        if bucket_name == "__log":
            with self.server.lock:
                text = "\n".join(self.server.request_log) + "\n"
            return self._reply(200, text.encode("utf-8"), "text/plain")
        with self.server.lock:
            bucket = self.server.buckets.get(bucket_name)
            if not key:
                # Listing: an unknown bucket lists as empty, so writers
                # and readers need no out-of-band bucket creation.
                page, truncated = ([], False)
                if bucket is not None:
                    try:
                        limit = max(1, int(query.get("max-keys", "1000")))
                    except ValueError:
                        return self._reply_json(400, {"error": "bad max-keys"})
                    page, truncated = bucket.list_page(
                        query.get("prefix", ""),
                        query.get("start-after"),
                        min(limit, 1000),
                    )
                return self._reply_json(
                    200, {"objects": page, "truncated": truncated}
                )
            found = bucket.objects.get(key) if bucket is not None else None
        if found is None:
            return self._reply_json(404, {"error": "no such key"})
        body, mtime = found
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("x-repro-mtime", repr(mtime))
        self.end_headers()
        self.wfile.write(body)

    def do_PUT(self) -> None:
        self._log_request()
        bucket_name, key, _ = self._split()
        if not bucket_name or not key:
            return self._reply_json(400, {"error": "PUT needs /bucket/key"})
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        try:
            mtime = float(self.headers.get("x-repro-mtime") or 0.0)
        except ValueError:
            return self._reply_json(400, {"error": "bad x-repro-mtime"})
        with self.server.lock:
            bucket = self.server.buckets.setdefault(bucket_name, _Bucket())
            bucket.put(key, body, mtime)
        self._reply_json(200, {"ok": True})

    def do_POST(self) -> None:
        self._log_request()
        bucket_name, key, query = self._split()
        if "touch" not in query:
            return self._reply_json(400, {"error": "POST supports only ?touch="})
        try:
            mtime = float(query["touch"])
        except ValueError:
            return self._reply_json(400, {"error": "bad touch mtime"})
        with self.server.lock:
            bucket = self.server.buckets.get(bucket_name)
            found = bucket.objects.get(key) if bucket is not None else None
            if found is None:
                return self._reply_json(404, {"error": "no such key"})
            bucket.put(key, found[0], mtime)
        self._reply_json(200, {"ok": True})

    def do_DELETE(self) -> None:
        self._log_request()
        bucket_name, key, _ = self._split()
        with self.server.lock:
            bucket = self.server.buckets.get(bucket_name)
            removed = bucket.delete(key) if bucket is not None else False
        if not removed:
            return self._reply_json(404, {"error": "no such key"})
        self._reply_json(200, {"ok": True})


class FakeBucketServer:
    """Serve an in-memory bucket tree over HTTP (fixture style).

    ``port=0`` binds an ephemeral port; :attr:`url` reports the
    resolved address either way.  :attr:`request_log` is every request
    line seen, in order — tests assert batching behavior on it and CI
    uploads it as the bucket-side trace of the smoke run.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, quiet: bool = True):
        self._httpd = ThreadingHTTPServer((host, port), _BucketHandler)
        self._httpd.daemon_threads = True
        self._httpd.buckets = {}
        self._httpd.lock = threading.Lock()
        self._httpd.quiet = quiet
        self._httpd.request_log = []
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def request_log(self) -> list[str]:
        with self._httpd.lock:
            return list(self._httpd.request_log)

    @property
    def buckets(self) -> dict:
        return self._httpd.buckets

    def start(self) -> "FakeBucketServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "FakeBucketServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="local fake bucket server for object-store smoke tests"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9000)
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request stderr lines"
    )
    args = parser.parse_args(argv)
    server = FakeBucketServer(host=args.host, port=args.port, quiet=args.quiet)
    print(f"fake bucket listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
