"""Single-file SQLite pack store for very large campaigns.

One ``entries`` table holds every content-addressed entry as its
canonical JSON text (the same bytes :class:`LocalDirStore` would write
to a file), plus the byte count and an explicit LRU timestamp::

    entries(key TEXT PRIMARY KEY, kind TEXT, entry TEXT,
            nbytes INTEGER, mtime REAL)

The database runs in WAL mode with a generous busy timeout, so several
campaign shards on one host can write the same pack concurrently —
writers of the same key race to store identical canonical bytes,
exactly like the directory store's atomic renames.  A 10k+ entry
campaign costs one inode instead of 10k, and the batch operations
(:meth:`get_payload_many` / :meth:`put_payload_many`) collapse a whole
engine batch into one indexed query / one transaction.

Packs are also the transport format for sharded campaigns: ``python -m
repro cache export pack.sqlite`` bundles a shard's results into one
file to ship between hosts, and ``cache merge`` unpacks it by content
key on the other side.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Iterable

from ...obs import store_op
from .base import (
    DEFAULT_KEY_BATCH,
    SCHEMA_VERSION,
    CacheStats,
    GCReport,
    RawEntry,
    chunked,
    encode_entry,
    entry_is_unreachable,
)

#: Metrics label for this backend (``repro_store_*{backend="sqlite"}``).
#: The batch methods are the funnels here — the singular forms delegate
#: to them, the inverse of the directory store's layout.
_BACKEND = "sqlite"

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS entries (
    key    TEXT PRIMARY KEY,
    kind   TEXT NOT NULL,
    entry  TEXT NOT NULL,
    nbytes INTEGER NOT NULL,
    mtime  REAL NOT NULL
)
"""


class SqlitePackStore:
    """Content-addressed JSON store packed into one SQLite file."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None

    @property
    def location(self) -> str:
        return str(self.path)

    def __repr__(self) -> str:
        return f"SqlitePackStore({str(self.path)!r})"

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # check_same_thread=False: `repro serve` handles requests on
            # ThreadingHTTPServer worker threads but serializes every
            # store call behind one lock, which is the sharing discipline
            # sqlite3 requires of a cross-thread connection.
            conn = sqlite3.connect(self.path, timeout=30.0, check_same_thread=False)
            # Must precede table creation to take effect on a new file;
            # lets gc hand freed pages back without a full VACUUM (which
            # needs exclusive access and would block concurrent shard
            # writers — see incremental_vacuum in _reclaim_pages).
            conn.execute("PRAGMA auto_vacuum=INCREMENTAL")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA_SQL)
            # LRU eviction walks entries oldest-first; without this index
            # each gc pass-2 page would sort the whole table.
            conn.execute(
                "CREATE INDEX IF NOT EXISTS entries_mtime ON entries (mtime, key)"
            )
            conn.commit()
            self._conn = conn
        return self._conn

    def _reclaim_pages(self, conn: sqlite3.Connection) -> None:
        """Give deleted entries' pages back to the filesystem.

        ``PRAGMA incremental_vacuum`` frees pages inside an ordinary
        write transaction (WAL-safe, no exclusive lock), so auto-GC can
        run while other shard writers hold the pack open; on packs
        created without ``auto_vacuum`` it is a harmless no-op and the
        pages are simply reused by later inserts.
        """
        conn.execute("PRAGMA incremental_vacuum")
        conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- payloads -----------------------------------------------------------

    @staticmethod
    def _check(text: str, kind: str) -> dict | None:
        """Decode + schema-check one entry text; ``None`` is a miss."""
        try:
            entry = json.loads(text)
        except ValueError:
            return None
        result = entry.get("result")
        if (
            entry.get("schema") != SCHEMA_VERSION
            or entry.get("kind") != kind
            or result is None
        ):
            return None
        return result

    def get_payload(self, key: str, kind: str) -> dict | None:
        found = self.get_payload_many([key], kind)
        return found.get(key)

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        wanted = list(dict.fromkeys(keys))
        if not wanted:
            return {}
        with store_op(_BACKEND, "get") as op:
            conn = self._connect()
            found: dict[str, dict] = {}
            now = time.time()
            for chunk in chunked(wanted):
                marks = ",".join("?" * len(chunk))
                query = f"SELECT key, entry FROM entries WHERE key IN ({marks})"
                rows = conn.execute(query, chunk).fetchall()
                hits = []
                for key, text in rows:
                    payload = self._check(text, kind)
                    if payload is not None:
                        found[key] = payload
                        hits.append(key)
                        op.add_bytes(len(text))
                if hits:
                    # Touch on read: mtime order is the LRU order gc()
                    # evicts in.
                    marks = ",".join("?" * len(hits))
                    conn.execute(
                        f"UPDATE entries SET mtime = ? WHERE key IN ({marks})",
                        [now, *hits],
                    )
            conn.commit()
            return found

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        return self.put_payload_many([(key, kind, result, spec)])

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        with store_op(_BACKEND, "put") as op:
            rows = []
            now = time.time()
            written = 0
            for key, kind, result, spec in items:
                entry = {"schema": SCHEMA_VERSION, "kind": kind, "result": result}
                if spec is not None:
                    entry["spec"] = spec
                blob = encode_entry(entry)
                written += len(blob)
                rows.append((key, kind, blob, len(blob), now))
            if rows:
                conn = self._connect()
                conn.executemany(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?, ?)", rows
                )
                conn.commit()
            op.add_bytes(written)
            return written

    # -- raw entries --------------------------------------------------------

    def get_entry(self, key: str) -> RawEntry | None:
        return self.get_entry_many([key]).get(key)

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        wanted = list(dict.fromkeys(keys))
        found: dict[str, RawEntry] = {}
        if not wanted:
            return found
        with store_op(_BACKEND, "get_entry") as op:
            conn = self._connect()
            for chunk in chunked(wanted):
                marks = ",".join("?" * len(chunk))
                query = (
                    f"SELECT key, entry, mtime FROM entries WHERE key IN ({marks})"
                )
                for key, text, mtime in conn.execute(query, chunk):
                    try:
                        entry = json.loads(text)
                    except ValueError:
                        continue
                    if isinstance(entry, dict):
                        found[key] = RawEntry(key=key, entry=entry, mtime=mtime)
                        op.add_bytes(len(text))
            return found

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        raw = RawEntry(
            key=key, entry=entry, mtime=time.time() if mtime is None else mtime
        )
        return self.put_entry_many([raw])

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        with store_op(_BACKEND, "put_entry") as op:
            rows = []
            written = 0
            for raw in entries:
                blob = encode_entry(raw.entry)
                written += len(blob)
                kind = str(raw.entry.get("kind", ""))
                rows.append((raw.key, kind, blob, len(blob), raw.mtime))
            if rows:
                conn = self._connect()
                conn.executemany(
                    "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?, ?)", rows
                )
                conn.commit()
            op.add_bytes(written)
            return written

    # -- maintenance --------------------------------------------------------

    def iter_keys(
        self, start_after: str | None = None, limit: int | None = None
    ) -> list[str]:
        page = DEFAULT_KEY_BATCH if limit is None else max(0, int(limit))
        if page == 0:
            return []
        conn = self._connect()
        # Keyset pagination: the primary-key index serves each page in
        # O(log n + page) without ever materializing the full key set.
        rows = conn.execute(
            "SELECT key FROM entries WHERE key > ? ORDER BY key LIMIT ?",
            ("" if start_after is None else start_after, page),
        ).fetchall()
        return [key for (key,) in rows]

    def size_bytes(self) -> int:
        conn = self._connect()
        query = "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
        (size,) = conn.execute(query).fetchone()
        return size

    def stats(self) -> CacheStats:
        conn = self._connect()
        totals = "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
        entries, size = conn.execute(totals).fetchone()
        reclaimable_entries = 0
        reclaimable_bytes = 0
        cursor = ""
        while True:
            rows = conn.execute(
                "SELECT key, entry, nbytes FROM entries WHERE key > ?"
                " ORDER BY key LIMIT ?",
                (cursor, DEFAULT_KEY_BATCH),
            ).fetchall()
            if not rows:
                break
            for _, text, nbytes in rows:
                if entry_is_unreachable(text):
                    reclaimable_entries += 1
                    reclaimable_bytes += nbytes
            cursor = rows[-1][0]
            if len(rows) < DEFAULT_KEY_BATCH:
                break
        return CacheStats(
            entries=entries,
            size_bytes=size,
            hits=0,
            misses=0,
            reclaimable_entries=reclaimable_entries,
            reclaimable_bytes=reclaimable_bytes,
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        with store_op(_BACKEND, "gc"):
            return self._gc(max_bytes=max_bytes, max_age_days=max_age_days, now=now)

    def _gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        now = time.time() if now is None else now
        conn = self._connect()
        removed_entries = 0
        removed_bytes = 0
        scanned = 0
        # Pass 1: reachability + age, one keyset page at a time.  Doomed
        # keys are deleted per page, so memory stays bounded by the page
        # size no matter how large the pack is (deletions behind the
        # cursor never disturb keyset resumption).
        cursor = ""
        while True:
            rows = conn.execute(
                "SELECT key, entry, nbytes, mtime FROM entries WHERE key > ?"
                " ORDER BY key LIMIT ?",
                (cursor, DEFAULT_KEY_BATCH),
            ).fetchall()
            if not rows:
                break
            scanned += len(rows)
            doomed: list[str] = []
            for key, text, nbytes, mtime in rows:
                stale = (
                    max_age_days is not None and now - mtime > max_age_days * 86400.0
                )
                if stale or entry_is_unreachable(text):
                    doomed.append(key)
                    removed_bytes += nbytes
            if doomed:
                removed_entries += len(doomed)
                marks = ",".join("?" * len(doomed))
                conn.execute(f"DELETE FROM entries WHERE key IN ({marks})", doomed)
                conn.commit()
            cursor = rows[-1][0]
            if len(rows) < DEFAULT_KEY_BATCH:
                break
        # Pass 2: LRU eviction down to the byte budget.  The (mtime, key)
        # index hands back the oldest survivors page by page; no
        # whole-table sort, no whole-table list.
        if max_bytes is not None:
            (total,) = conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
            ).fetchone()
            while total > max_bytes:
                rows = conn.execute(
                    "SELECT key, nbytes FROM entries ORDER BY mtime, key LIMIT ?",
                    (DEFAULT_KEY_BATCH,),
                ).fetchall()
                if not rows:
                    break
                doomed = []
                for key, nbytes in rows:
                    if total <= max_bytes:
                        break
                    doomed.append(key)
                    total -= nbytes
                    removed_bytes += nbytes
                if doomed:
                    removed_entries += len(doomed)
                    marks = ",".join("?" * len(doomed))
                    conn.execute(f"DELETE FROM entries WHERE key IN ({marks})", doomed)
                    conn.commit()
        if removed_entries:
            self._reclaim_pages(conn)
        kept_entries, kept_bytes = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
        ).fetchone()
        return GCReport(
            scanned_entries=scanned,
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            kept_entries=kept_entries,
            kept_bytes=kept_bytes,
        )

    def clear(self) -> int:
        with store_op(_BACKEND, "clear"):
            conn = self._connect()
            (count,) = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            conn.execute("DELETE FROM entries")
            conn.commit()
            self._reclaim_pages(conn)
            return count
