"""Pluggable result stores for the experiment engine.

The store package splits the old monolithic ``engine.cache`` module
into a small :class:`CacheBackend` protocol plus interchangeable
implementations, so one campaign can be sharded across hosts and its
results merged back into a single store:

* :mod:`~repro.engine.store.base` — the protocol, the canonical entry
  codec, version-reachability rules, and :func:`merge_stores`;
* :mod:`~repro.engine.store.localdir` — :class:`LocalDirStore`, the
  original one-JSON-file-per-entry sharded directory (existing
  ``.repro_cache/`` directories keep working unchanged);
* :mod:`~repro.engine.store.sqlite` — :class:`SqlitePackStore`, a
  single WAL-mode SQLite file: safe for concurrent shard writers on
  one host, one inode for 10k+ entries, and the transport format for
  ``cache export`` / ``cache merge``;
* :mod:`~repro.engine.store.http` — :class:`RemoteStore`, the same
  protocol over a minimal JSON/HTTP wire format against a ``python -m
  repro serve`` endpoint (:class:`StoreServer`), so shard hosts
  rendezvous into one network store with no pack-file shipping;
* :mod:`~repro.engine.store.frontend` — :class:`ResultCache`, the
  engine-facing wrapper adding the SimResult codec, hit counters,
  batched ``get_many``/``put_many``, and the ``REPRO_CACHE_MAX_BYTES``
  auto-GC;
* :mod:`~repro.engine.store.faulty` — :class:`FaultyBackend`, a
  deterministic fault-injection wrapper around any backend (chaos
  tests for the engine's write-back and the queue's retry paths).

Backends are selected by location: a directory path keeps the classic
layout, ``*.sqlite``/``*.db``/``*.pack`` files or ``sqlite:`` URLs open
a pack, ``http://``/``https://`` URLs open a remote client
(authenticating via ``REPRO_CACHE_TOKEN``), and
``REPRO_CACHE_BACKEND=sqlite`` packs even plain-path caches.
"""

from .base import (
    BACKEND_ENV,
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    MAX_BYTES_ENV,
    PACK_SUFFIXES,
    REMOTE_PREFIXES,
    SCHEMA_VERSION,
    CacheBackend,
    CacheStats,
    GCReport,
    MergeReport,
    RawEntry,
    default_cache_dir,
    encode_entry,
    entry_is_unreachable,
    merge_stores,
    open_backend,
)
from .faulty import DEFAULT_FAILABLE_OPS, FaultyBackend, InjectedFault
from .frontend import ResultCache
from .http import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    TOKEN_ENV,
    RemoteAuthError,
    RemoteStore,
    RemoteStoreError,
    StoreServer,
)
from .localdir import LocalDirStore
from .sqlite import SqlitePackStore

__all__ = [
    "BACKEND_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_FAILABLE_OPS",
    "DEFAULT_PORT",
    "MAX_BYTES_ENV",
    "PACK_SUFFIXES",
    "PROTOCOL_VERSION",
    "REMOTE_PREFIXES",
    "SCHEMA_VERSION",
    "TOKEN_ENV",
    "CacheBackend",
    "CacheStats",
    "FaultyBackend",
    "GCReport",
    "InjectedFault",
    "LocalDirStore",
    "MergeReport",
    "RawEntry",
    "RemoteAuthError",
    "RemoteStore",
    "RemoteStoreError",
    "ResultCache",
    "SqlitePackStore",
    "StoreServer",
    "default_cache_dir",
    "encode_entry",
    "entry_is_unreachable",
    "merge_stores",
    "open_backend",
]
