"""Pluggable result stores for the experiment engine.

The store package splits the old monolithic ``engine.cache`` module
into a small :class:`CacheBackend` protocol plus interchangeable
implementations, so one campaign can be sharded across hosts and its
results merged back into a single store:

* :mod:`~repro.engine.store.base` — the protocol, the canonical entry
  codec, version-reachability rules, and :func:`merge_stores`;
* :mod:`~repro.engine.store.localdir` — :class:`LocalDirStore`, the
  original one-JSON-file-per-entry sharded directory (existing
  ``.repro_cache/`` directories keep working unchanged);
* :mod:`~repro.engine.store.sqlite` — :class:`SqlitePackStore`, a
  single WAL-mode SQLite file: safe for concurrent shard writers on
  one host, one inode for 10k+ entries, and the transport format for
  ``cache export`` / ``cache merge``;
* :mod:`~repro.engine.store.frontend` — :class:`ResultCache`, the
  engine-facing wrapper adding the SimResult codec, hit counters,
  batched ``get_many``/``put_many``, and the ``REPRO_CACHE_MAX_BYTES``
  auto-GC.

Backends are selected by location: a directory path keeps the classic
layout, ``*.sqlite``/``*.db``/``*.pack`` files or ``sqlite:`` URLs open
a pack, and ``REPRO_CACHE_BACKEND=sqlite`` packs even plain-path caches.
"""

from .base import (
    BACKEND_ENV,
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    MAX_BYTES_ENV,
    PACK_SUFFIXES,
    SCHEMA_VERSION,
    CacheBackend,
    CacheStats,
    GCReport,
    MergeReport,
    RawEntry,
    default_cache_dir,
    encode_entry,
    entry_is_unreachable,
    merge_stores,
    open_backend,
)
from .frontend import ResultCache
from .localdir import LocalDirStore
from .sqlite import SqlitePackStore

__all__ = [
    "BACKEND_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "MAX_BYTES_ENV",
    "PACK_SUFFIXES",
    "SCHEMA_VERSION",
    "CacheBackend",
    "CacheStats",
    "GCReport",
    "LocalDirStore",
    "MergeReport",
    "RawEntry",
    "ResultCache",
    "SqlitePackStore",
    "default_cache_dir",
    "encode_entry",
    "entry_is_unreachable",
    "merge_stores",
    "open_backend",
]
