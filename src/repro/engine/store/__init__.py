"""Pluggable result stores for the experiment engine.

The store package splits the old monolithic ``engine.cache`` module
into a small :class:`CacheBackend` protocol plus interchangeable
implementations, so one campaign can be sharded across hosts and its
results merged back into a single store:

* :mod:`~repro.engine.store.base` — the protocol, the canonical entry
  codec, version-reachability rules, and :func:`merge_stores`;
* :mod:`~repro.engine.store.localdir` — :class:`LocalDirStore`, the
  original one-JSON-file-per-entry sharded directory (existing
  ``.repro_cache/`` directories keep working unchanged);
* :mod:`~repro.engine.store.sqlite` — :class:`SqlitePackStore`, a
  single WAL-mode SQLite file: safe for concurrent shard writers on
  one host, one inode for 10k+ entries, and the transport format for
  ``cache export`` / ``cache merge``;
* :mod:`~repro.engine.store.http` — :class:`RemoteStore`, the same
  protocol over a minimal JSON/HTTP wire format against a ``python -m
  repro serve`` endpoint (:class:`StoreServer`), so shard hosts
  rendezvous into one network store with no pack-file shipping;
* :mod:`~repro.engine.store.frontend` — :class:`ResultCache`, the
  engine-facing wrapper adding the SimResult codec, hit counters,
  batched ``get_many``/``put_many``, and the ``REPRO_CACHE_MAX_BYTES``
  auto-GC;
* :mod:`~repro.engine.store.objectstore` — :class:`ObjectStore`, the
  same content-addressed layout as object keys in an S3-style bucket
  (``s3://`` via the optional boto3 extra, or any S3-compatible HTTP
  endpoint with zero extra dependencies) — the serverless rendezvous:
  shards write straight into a shared bucket, no coordinator host;
* :mod:`~repro.engine.store.fakebucket` — :class:`FakeBucketServer`,
  the local stdlib bucket server tests and CI run the object store
  against;
* :mod:`~repro.engine.store.faulty` — :class:`FaultyBackend`, a
  deterministic fault-injection wrapper around any backend (chaos
  tests for the engine's write-back and the queue's retry paths).

Backends are selected by an explicit location scheme (``dir:``,
``sqlite:``, ``http://``/``https://``, ``s3://``/``obj:``) through
:func:`open_backend`'s scheme registry; the historical suffix-sniffing
forms (``*.sqlite``/``*.db``/``*.pack`` paths,
``REPRO_CACHE_BACKEND=sqlite`` on a plain path) keep working as
deprecated aliases that log a one-line warning.  Iteration over any
backend is **cursored**: ``iter_keys(start_after, limit)`` returns one
bounded sorted page, and the maintenance paths (``stats``/``gc``/
``merge_stores``) stream pages via :func:`iter_key_pages`, so no store
operation ever materializes a full key set — the property that lets a
campaign cache grow past one process's memory.
"""

from .base import (
    BACKEND_ENV,
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    DEFAULT_KEY_BATCH,
    MAX_BYTES_ENV,
    PACK_SUFFIXES,
    REMOTE_PREFIXES,
    SCHEME_REGISTRY,
    SCHEMA_VERSION,
    CacheBackend,
    CacheStats,
    GCReport,
    MergeReport,
    RawEntry,
    default_cache_dir,
    encode_entry,
    entry_is_unreachable,
    iter_all_keys,
    iter_key_pages,
    merge_stores,
    open_backend,
)
from .fakebucket import FakeBucketServer
from .faulty import DEFAULT_FAILABLE_OPS, FaultyBackend, InjectedFault
from .frontend import ResultCache
from .http import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    TOKEN_ENV,
    RemoteAuthError,
    RemoteStore,
    RemoteStoreError,
    StoreServer,
)
from .localdir import LocalDirStore
from .objectstore import (
    DEFAULT_FANOUT,
    ENDPOINT_ENV,
    Boto3Transport,
    HTTPTransport,
    MemoryTransport,
    ObjectStore,
    ObjectStoreError,
    ObjectTransport,
    open_object_store,
)
from .sqlite import SqlitePackStore

__all__ = [
    "BACKEND_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_FAILABLE_OPS",
    "DEFAULT_FANOUT",
    "DEFAULT_KEY_BATCH",
    "DEFAULT_PORT",
    "ENDPOINT_ENV",
    "MAX_BYTES_ENV",
    "PACK_SUFFIXES",
    "PROTOCOL_VERSION",
    "REMOTE_PREFIXES",
    "SCHEMA_VERSION",
    "SCHEME_REGISTRY",
    "TOKEN_ENV",
    "Boto3Transport",
    "CacheBackend",
    "CacheStats",
    "FakeBucketServer",
    "FaultyBackend",
    "GCReport",
    "HTTPTransport",
    "InjectedFault",
    "LocalDirStore",
    "MemoryTransport",
    "MergeReport",
    "ObjectStore",
    "ObjectStoreError",
    "ObjectTransport",
    "RawEntry",
    "RemoteAuthError",
    "RemoteStore",
    "RemoteStoreError",
    "ResultCache",
    "SqlitePackStore",
    "StoreServer",
    "default_cache_dir",
    "encode_entry",
    "entry_is_unreachable",
    "iter_all_keys",
    "iter_key_pages",
    "merge_stores",
    "open_backend",
    "open_object_store",
]
