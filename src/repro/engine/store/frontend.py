"""``ResultCache``: the engine-facing face of any :class:`CacheBackend`.

The front end owns everything backends deliberately do not:

* the simulation codec — :meth:`get`/:meth:`put` move
  :class:`~repro.sim.SimResult` objects, backends only see JSON dicts;
* hit/miss accounting for this process (``cache stats`` merges the
  counters into the backend's totals);
* batching — :meth:`get_many`/:meth:`put_many` turn an engine batch
  into one backend round trip instead of per-spec probes;
* auto-GC — with ``REPRO_CACHE_MAX_BYTES`` set (or ``max_bytes`` passed)
  writes that push the store past the threshold trigger the LRU
  :meth:`gc` automatically, logged as one line on the
  ``repro.engine.store`` logger.

``ResultCache(path)`` keeps its historical meaning — a sharded JSON
directory — while pack files, ``sqlite:``/``dir:`` URLs, and
``http://`` server endpoints select their backends by location (see
:func:`~repro.engine.store.base.open_backend`).  Passing a ready-made
backend object wires in anything else that satisfies the protocol.

The front end relies on — and only on — the backend contract written
down in :mod:`repro.engine.store.base`: it batches freely because
``*_many`` calls are plural-not-different, trusts mtime refresh on hits
to keep its LRU ``gc`` meaningful, treats every ``None`` payload as a
recomputable miss, and assumes ``size_bytes`` is cheap enough to call
on the write path.  Code in this module must not depend on any behavior
of a particular backend beyond that contract — it is the part that
stays correct when the backend is a directory, a SQLite pack, or a
server on another machine.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

from ...obs import get_logger
from ...obs.metrics import CACHE_REQUESTS
from ...sim import SimResult
from ..spec import ExperimentSpec, iter_spec_keys
from .base import MAX_BYTES_ENV, CacheBackend, CacheStats, GCReport, open_backend

logger = get_logger("engine.store")

#: Auto-GC evicts below the threshold by this factor (a low watermark),
#: so a store sitting at capacity regains headroom instead of re-running
#: a full gc scan on every subsequent write batch.
AUTO_GC_HEADROOM = 0.9


def _env_max_bytes() -> int | None:
    try:
        value = int(os.environ.get(MAX_BYTES_ENV, ""))
    except ValueError:
        return None
    return value if value > 0 else None


class ResultCache:
    """Content-addressed store for simulation results over any backend.

    Args:
        root: Store location — a cache directory (default layout), a
            ``.sqlite``/``.db``/``.pack`` file, or a ``sqlite:``/``dir:``
            URL; ``None`` reads ``REPRO_CACHE_DIR``.  Ignored when
            ``backend`` is given.
        backend: A ready-made :class:`CacheBackend` to wrap.
        max_bytes: Auto-GC threshold; writes that push the store past it
            run the LRU ``gc`` down to this size.  Defaults to
            ``REPRO_CACHE_MAX_BYTES`` when set.
    """

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        backend: CacheBackend | None = None,
        max_bytes: int | None = None,
    ):
        self.backend = backend if backend is not None else open_backend(root)
        self.hits = 0
        self.misses = 0
        self.max_bytes = max_bytes if max_bytes is not None else _env_max_bytes()
        self._approx_bytes: int | None = None

    @property
    def root(self) -> Path:
        """Where a *local* store lives (directory root or pack-file path).

        Remote stores have no filesystem root; use :attr:`location` for
        display, which survives URLs unmangled.
        """
        return Path(self.backend.location)

    @property
    def location(self) -> str:
        """Human-readable store position (path or URL), as the backend
        reports it."""
        return self.backend.location

    def __repr__(self) -> str:
        return f"ResultCache({self.backend!r})"

    # -- raw keyed payloads -------------------------------------------------

    def get_payload(self, key: str, kind: str) -> dict | None:
        """Payload stored under ``key`` if present, readable, and current."""
        payload = self.backend.get_payload(key, kind)
        if payload is None:
            self.misses += 1
            CACHE_REQUESTS.labels(outcome="miss").inc()
        else:
            self.hits += 1
            CACHE_REQUESTS.labels(outcome="hit").inc()
        return payload

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        """Atomically write ``result`` under ``key``; returns bytes written."""
        written = self.backend.put_payload(key, kind, result, spec=spec)
        self._after_write(written)
        return written

    # -- simulation results -------------------------------------------------

    def get(self, spec: ExperimentSpec) -> SimResult | None:
        """Cached result for ``spec``, or ``None`` (miss / schema change)."""
        payload = self.get_payload(spec.content_hash(), kind="sim")
        if payload is None:
            return None
        return SimResult.from_dict(payload)

    def get_many(self, specs: Iterable[ExperimentSpec]) -> dict[str, SimResult]:
        """Batch lookup: ``{content_hash: result}`` for the hits, in one
        backend round trip (the engine's cache-first pass)."""
        specs = list(specs)
        by_key = dict(zip(iter_spec_keys(specs), specs))
        found = self.backend.get_payload_many(by_key, kind="sim")
        self.hits += len(found)
        self.misses += len(by_key) - len(found)
        if found:
            CACHE_REQUESTS.labels(outcome="hit").inc(len(found))
        if len(by_key) > len(found):
            CACHE_REQUESTS.labels(outcome="miss").inc(len(by_key) - len(found))
        return {key: SimResult.from_dict(payload) for key, payload in found.items()}

    def put(self, spec: ExperimentSpec, result: SimResult) -> int:
        return self.put_payload(
            spec.content_hash(),
            kind="sim",
            result=result.to_dict(),
            spec=spec.to_dict(),
        )

    def put_many(self, pairs: Sequence[tuple[ExperimentSpec, SimResult]]) -> int:
        """Batch write-back (one transaction / fsync window); returns
        bytes written."""
        if not pairs:
            return 0
        written = self.backend.put_payload_many(
            [
                (spec.content_hash(), "sim", result.to_dict(), spec.to_dict())
                for spec, result in pairs
            ]
        )
        self._after_write(written)
        return written

    def path_for(self, spec: ExperimentSpec) -> Path:
        """Where ``spec``'s result lives (directory backends only)."""
        path_for_key = getattr(self.backend, "path_for_key", None)
        if path_for_key is None:
            raise NotImplementedError(
                f"{type(self.backend).__name__} does not expose per-entry paths"
            )
        return path_for_key(spec.content_hash())

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Backend totals merged with this process's hit counters."""
        snapshot = self.backend.stats()
        return CacheStats(
            entries=snapshot.entries,
            size_bytes=snapshot.size_bytes,
            hits=self.hits,
            misses=self.misses,
            reclaimable_entries=snapshot.reclaimable_entries,
            reclaimable_bytes=snapshot.reclaimable_bytes,
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        """Evict entries, least-recently-used first; returns what happened.

        Unreachable entries (older schema or spec version) always go.
        Then entries untouched for more than ``max_age_days`` go, and
        finally the oldest-mtime survivors are dropped until the store
        fits in ``max_bytes``.  ``gc()`` with no limits removes only the
        unreachable garbage.
        """
        report = self.backend.gc(
            max_bytes=max_bytes, max_age_days=max_age_days, now=now
        )
        self._approx_bytes = report.kept_bytes
        return report

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = self.backend.clear()
        self._approx_bytes = 0
        return removed

    def close(self) -> None:
        self.backend.close()

    # -- auto-GC -------------------------------------------------------------

    def _after_write(self, written: int) -> None:
        """Track approximate store size; run the LRU gc past the threshold.

        The size estimate starts from one real ``stats()`` scan and then
        grows by bytes written, so steady-state puts never rescan the
        store; each gc resyncs the estimate from the report.  Eviction
        goes down to ``AUTO_GC_HEADROOM * max_bytes``, so one gc buys a
        budget's worth of writes before the next can fire.
        """
        if self.max_bytes is None:
            return
        if self._approx_bytes is None:
            # Seed from the cheap size query — no per-entry content scan.
            self._approx_bytes = self.backend.size_bytes()
        else:
            self._approx_bytes += written
        if self._approx_bytes > self.max_bytes:
            report = self.backend.gc(max_bytes=int(self.max_bytes * AUTO_GC_HEADROOM))
            self._approx_bytes = report.kept_bytes
            logger.info(
                "cache auto-gc: store passed %d bytes; removed %d entries "
                "(%d bytes), kept %d (%d bytes)",
                self.max_bytes,
                report.removed_entries,
                report.removed_bytes,
                report.kept_entries,
                report.kept_bytes,
            )
