"""Sharded-directory store: one JSON file per entry (the original layout).

Each entry is one file named by the spec's content hash, sharded by the
first two hex digits::

    <root>/ab/abcdef….json
    {"schema": 1, "kind": "sim", "spec": {...}, "result": {...}}

Entries are written atomically (temp file + rename) with the canonical
encoding from :func:`~repro.engine.store.base.encode_entry`, so the same
spec always produces byte-identical files, and concurrent writers of the
same key simply race to produce identical bytes.  The file's mtime is
the entry's LRU timestamp: reads touch it, ``gc`` evicts in mtime order.

This layout predates the :class:`CacheBackend` split — existing
``.repro_cache/`` directories keep working unchanged — but it spends one
inode per point, which is why 10k+-entry campaigns may prefer the
:class:`~repro.engine.store.sqlite.SqlitePackStore`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterable, Iterator

from ...obs import store_op
from .base import (
    DEFAULT_KEY_BATCH,
    SCHEMA_VERSION,
    CacheStats,
    GCReport,
    RawEntry,
    encode_entry,
    entry_is_unreachable,
)

#: Metrics label for this backend (``repro_store_*{backend="dir"}``).
_BACKEND = "dir"


class LocalDirStore:
    """Content-addressed JSON store backed by a sharded directory tree."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    @property
    def location(self) -> str:
        return str(self.root)

    def __repr__(self) -> str:
        return f"LocalDirStore({str(self.root)!r})"

    def path_for_key(self, key: str) -> Path:
        """Where ``key``'s entry lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.json"

    # -- payloads -----------------------------------------------------------

    def get_payload(self, key: str, kind: str) -> dict | None:
        # Singular reads are the instrumentation funnel: the *_many
        # forms loop over them, so counting here covers both without
        # double counting.
        with store_op(_BACKEND, "get") as op:
            path = self.path_for_key(key)
            try:
                text = path.read_text(encoding="utf-8")
                entry = json.loads(text)
            except (OSError, ValueError):
                return None
            op.add_bytes(len(text))
            result = entry.get("result")
            if (
                entry.get("schema") != SCHEMA_VERSION
                or entry.get("kind") != kind
                or result is None
            ):
                return None
            try:
                # Touch on read: mtime order is the LRU order gc() evicts in.
                os.utime(path)
            except OSError:
                pass
            return result

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        found: dict[str, dict] = {}
        for key in keys:
            payload = self.get_payload(key, kind)
            if payload is not None:
                found[key] = payload
        return found

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        entry = {"schema": SCHEMA_VERSION, "kind": kind, "result": result}
        if spec is not None:
            entry["spec"] = spec
        return self.put_entry(key, entry)

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        written = 0
        for key, kind, result, spec in items:
            written += self.put_payload(key, kind, result, spec=spec)
        return written

    # -- raw entries --------------------------------------------------------

    def get_entry(self, key: str) -> RawEntry | None:
        with store_op(_BACKEND, "get_entry") as op:
            path = self.path_for_key(key)
            try:
                text = path.read_text(encoding="utf-8")
                mtime = path.stat().st_mtime
                entry = json.loads(text)
            except (OSError, ValueError):
                return None
            if not isinstance(entry, dict):
                return None
            op.add_bytes(len(text))
            return RawEntry(key=key, entry=entry, mtime=mtime)

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        found: dict[str, RawEntry] = {}
        for key in keys:
            raw = self.get_entry(key)
            if raw is not None:
                found[key] = raw
        return found

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        with store_op(_BACKEND, "put") as op:
            path = self.path_for_key(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            blob = encode_entry(entry)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(blob)
                if mtime is not None:
                    os.utime(tmp, (mtime, mtime))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            op.add_bytes(len(blob))
            return len(blob)

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        written = 0
        for raw in entries:
            written += self.put_entry(raw.key, raw.entry, mtime=raw.mtime)
        return written

    # -- maintenance --------------------------------------------------------

    def _iter_entry_paths(self) -> Iterator[Path]:
        """Entry files in key order, one shard directory in memory at a time.

        Listing per shard (at most 256 of them) keeps the resident set
        bounded by the largest shard, not the whole store, and makes the
        walk safe against files unlinked between shards mid-iteration.
        """
        if not self.root.is_dir():
            return
        for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
            yield from sorted(shard.glob("*.json"))

    def iter_keys(
        self, start_after: str | None = None, limit: int | None = None
    ) -> list[str]:
        page = DEFAULT_KEY_BATCH if limit is None else max(0, int(limit))
        if page == 0:
            return []
        keys: list[str] = []
        if not self.root.is_dir():
            return keys
        shard_floor = start_after[:2] if start_after else ""
        for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
            # Keys are sharded by their first two characters, so every
            # key in a shard lexically below the cursor's shard is
            # already behind the cursor.
            if shard.name < shard_floor:
                continue
            for stem in sorted(path.stem for path in shard.glob("*.json")):
                if start_after is not None and stem <= start_after:
                    continue
                keys.append(stem)
                if len(keys) >= page:
                    return keys
        return keys

    def _is_unreachable(self, path: Path) -> bool:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return True
        return entry_is_unreachable(text)

    def size_bytes(self) -> int:
        total = 0
        for path in self._iter_entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def stats(self) -> CacheStats:
        entries = 0
        size = 0
        reclaimable_entries = 0
        reclaimable_bytes = 0
        for path in self._iter_entry_paths():
            entries += 1
            try:
                nbytes = path.stat().st_size
            except OSError:
                continue
            size += nbytes
            if self._is_unreachable(path):
                reclaimable_entries += 1
                reclaimable_bytes += nbytes
        return CacheStats(
            entries=entries,
            size_bytes=size,
            hits=0,
            misses=0,
            reclaimable_entries=reclaimable_entries,
            reclaimable_bytes=reclaimable_bytes,
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        with store_op(_BACKEND, "gc"):
            return self._gc(max_bytes=max_bytes, max_age_days=max_age_days, now=now)

    def _gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        now = time.time() if now is None else now
        # Pass 1 streams the shard walk, unlinking unreachable/expired
        # entries as it goes.  Only survivor *metadata* tuples are kept
        # (mtime, size, path — no entry bodies), the one per-entry cost
        # this backend still pays; the LRU pass needs a global mtime
        # sort, and a directory tree has no index to hand it out in
        # pages like the SQLite pack does.
        survivors: list[tuple[float, int, Path]] = []  # (mtime, size, path)
        removed_entries = 0
        removed_bytes = 0
        scanned = 0
        for path in self._iter_entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            scanned += 1
            stale = max_age_days is not None and now - stat.st_mtime > (
                max_age_days * 86400.0
            )
            if stale or self._is_unreachable(path):
                try:
                    path.unlink()
                except OSError:
                    pass
                removed_entries += 1
                removed_bytes += stat.st_size
            else:
                survivors.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None:
            survivors.sort()  # oldest mtime first
            total = sum(size for _, size, _ in survivors)
            while survivors and total > max_bytes:
                _, size, path = survivors.pop(0)
                try:
                    path.unlink()
                except OSError:
                    pass
                removed_entries += 1
                removed_bytes += size
                total -= size
        self._prune_empty_shards()
        return GCReport(
            scanned_entries=scanned,
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            kept_entries=len(survivors),
            kept_bytes=sum(size for _, size, _ in survivors),
        )

    def _prune_empty_shards(self) -> None:
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty

    def clear(self) -> int:
        with store_op(_BACKEND, "clear"):
            count = 0
            for path in self._iter_entry_paths():
                path.unlink()
                count += 1
            self._prune_empty_shards()
            return count

    def close(self) -> None:
        pass
