"""Object-store backend: content-addressed entries as bucket objects.

The serverless complement to ``repro serve``: instead of one rendezvous
host running a coordinator, every shard writes its results straight
into a shared bucket (S3, GCS via the S3 API, MinIO, or this repo's
stdlib fake bucket in tests/CI) and the unsharded rerun assembles the
campaign as a pure cache read.  The content-addressed layout maps onto
object keys directly::

    <prefix>/<key[:2]>/<key>        # the canonical entry JSON bytes

The two-character shard level mirrors :class:`LocalDirStore`'s
directory layout and keeps listings of one key range cheap on real
object stores.  Keys carry **no suffix** deliberately: with ``/``
sorting below every hex digit, the lexicographic order of object keys
equals the order of entry keys, so one bucket listing page *is* one
:meth:`ObjectStore.iter_keys` page — cursored iteration costs exactly
one ranged LIST per page.

The store talks to the bucket through an injectable **transport** (the
:class:`ObjectTransport` protocol): batched get/put/touch/delete plus a
ranged listing.  Three implementations:

* :class:`MemoryTransport` — an in-process dict bucket for unit tests.
* :class:`HTTPTransport` — plain ``urllib`` against the JSON bucket
  protocol served by :mod:`repro.engine.store.fakebucket`; batched
  calls fan out over a small thread pool
  (:data:`DEFAULT_FANOUT` concurrent requests).  This is what CI uses:
  no cloud credentials, no extra dependencies.
* :class:`Boto3Transport` — the real S3 API for ``s3://`` locations,
  used only when :mod:`boto3` is importable (it is an optional extra —
  the import is guarded and failure raises one clear
  :class:`ObjectStoreError`).

Because the bucket has no filesystem mtime, the entry's LRU timestamp
travels as explicit object metadata (the ``x-repro-mtime`` header on
the wire); reads touch it with a metadata-only update, so ``gc``'s
mtime eviction order survives transport through a bucket exactly like
it survives ``cache export`` / ``cache merge``.

Location forms understood by :func:`open_object_store` (and therefore
by ``open_backend`` / every ``--cache-dir``):

* ``s3://bucket/prefix`` — real bucket via boto3, unless the
  ``REPRO_OBJECT_ENDPOINT`` environment variable points at an
  S3-compatible HTTP endpoint (the fake bucket, MinIO), in which case
  the stdlib HTTP transport is used and no boto3 is needed.
* ``obj:http://host:9000/bucket/prefix`` — explicit HTTP endpoint,
  bucket, and prefix in one URL; always the stdlib transport.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from bisect import bisect_left, bisect_right
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Protocol, runtime_checkable

from ...obs import store_op
from .base import (
    DEFAULT_KEY_BATCH,
    SCHEMA_VERSION,
    CacheStats,
    GCReport,
    RawEntry,
    chunked,
    encode_entry,
    entry_is_unreachable,
)

#: Metrics label for this backend (``repro_store_*{backend="object"}``).
_BACKEND = "object"

#: S3-compatible HTTP endpoint override for ``s3://`` locations; when
#: set, ``s3://bucket/prefix`` uses the stdlib HTTP transport against
#: it instead of boto3 (CI points this at the fake bucket server).
ENDPOINT_ENV = "REPRO_OBJECT_ENDPOINT"

#: Concurrent requests per batched transport call.  Object stores are
#: high-latency/high-parallelism: a 500-key page fetched 8-wide costs
#: ~63 round trips of wall clock instead of 500.
DEFAULT_FANOUT = 8


class ObjectStoreError(OSError):
    """The bucket could not be reached or refused the request."""


@runtime_checkable
class ObjectTransport(Protocol):
    """Batched bucket primitives :class:`ObjectStore` is built on.

    Object keys are opaque strings (they may contain ``/``).  All
    batched methods are all-or-nothing per *object*, not per batch:
    a missing key in ``get_many`` is simply absent from the result.
    """

    location: str

    def get_many(self, keys: list[str]) -> dict[str, tuple[bytes, float]]:
        """``{key: (body, mtime)}`` for every key that exists."""
        ...

    def put_many(self, items: list[tuple[str, bytes, float]]) -> None:
        """Write ``(key, body, mtime)`` objects (last writer wins)."""
        ...

    def touch_many(self, items: list[tuple[str, float]]) -> None:
        """Update mtime metadata only; missing keys are ignored."""
        ...

    def delete_many(self, keys: list[str]) -> None:
        """Delete objects; missing keys are ignored."""
        ...

    def list_page(
        self, prefix: str, start_after: str | None, limit: int
    ) -> list[tuple[str, int, float]]:
        """One sorted page of ``(key, size, mtime)`` under ``prefix``.

        Strictly after ``start_after`` when given, at most ``limit``
        items — the bucket-level mirror of the cursored ``iter_keys``
        contract.
        """
        ...

    def close(self) -> None: ...


class MemoryTransport:
    """In-process fake bucket: a dict plus a lazily rebuilt sorted index.

    Thread-safe (the store server and concurrent-writer tests hit one
    instance from several threads).  ``list_page`` bisects a cached
    sorted key index that mutations invalidate, so paging a 50k-object
    bucket does not re-sort per page.
    """

    def __init__(self):
        self.location = "memory:"
        self._objects: dict[str, tuple[bytes, float]] = {}
        self._index: list[str] | None = None
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._objects)

    def _sorted_index(self) -> list[str]:
        if self._index is None:
            self._index = sorted(self._objects)
        return self._index

    def get_many(self, keys: list[str]) -> dict[str, tuple[bytes, float]]:
        with self._lock:
            return {key: self._objects[key] for key in keys if key in self._objects}

    def put_many(self, items: list[tuple[str, bytes, float]]) -> None:
        with self._lock:
            for key, body, mtime in items:
                if key not in self._objects:
                    self._index = None
                self._objects[key] = (body, mtime)

    def touch_many(self, items: list[tuple[str, float]]) -> None:
        with self._lock:
            for key, mtime in items:
                found = self._objects.get(key)
                if found is not None:
                    self._objects[key] = (found[0], mtime)

    def delete_many(self, keys: list[str]) -> None:
        with self._lock:
            for key in keys:
                if self._objects.pop(key, None) is not None:
                    self._index = None

    def list_page(
        self, prefix: str, start_after: str | None, limit: int
    ) -> list[tuple[str, int, float]]:
        with self._lock:
            index = self._sorted_index()
            lo = bisect_left(index, prefix)
            if start_after is not None:
                lo = max(lo, bisect_right(index, start_after))
            page: list[tuple[str, int, float]] = []
            for key in index[lo:]:
                if not key.startswith(prefix):
                    break
                body, mtime = self._objects[key]
                page.append((key, len(body), mtime))
                if len(page) >= limit:
                    break
            return page

    def close(self) -> None:
        pass


class HTTPTransport:
    """Stdlib HTTP client for the fake-bucket JSON protocol.

    Wire shape (see :mod:`repro.engine.store.fakebucket`):

    * ``GET /<bucket>/<key>`` — body bytes, mtime in ``x-repro-mtime``
    * ``PUT /<bucket>/<key>`` — body bytes, mtime in ``x-repro-mtime``
    * ``POST /<bucket>/<key>?touch=<mtime>`` — metadata-only touch
    * ``DELETE /<bucket>/<key>``
    * ``GET /<bucket>?list-type=2&prefix=&start-after=&max-keys=N`` —
      ``{"objects": [{"key", "size", "mtime"}], "truncated": bool}``

    Batched calls fan out over a shared :data:`DEFAULT_FANOUT`-wide
    thread pool; any transport-level failure surfaces as one
    :class:`ObjectStoreError` naming the endpoint.
    """

    def __init__(self, endpoint: str, bucket: str, timeout: float = 30.0):
        self.endpoint = endpoint.rstrip("/")
        self.bucket = bucket
        self.timeout = timeout
        self.location = f"{self.endpoint}/{bucket}"
        self._pool: ThreadPoolExecutor | None = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=DEFAULT_FANOUT)
        return self._pool

    def _object_url(self, key: str) -> str:
        return f"{self.endpoint}/{self.bucket}/{urllib.parse.quote(key)}"

    def _request(
        self,
        method: str,
        url: str,
        data: bytes | None = None,
        headers: dict | None = None,
    ):
        request = urllib.request.Request(
            url, data=data, headers=headers or {}, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise ObjectStoreError(
                f"{method} {url} failed: HTTP {exc.code} {exc.reason}"
            ) from None
        except OSError as exc:  # URLError, timeouts, refused connections
            raise ObjectStoreError(
                f"object endpoint {self.endpoint} is unreachable ({exc}); "
                f"is the bucket server running?"
            ) from exc

    def _get_one(self, key: str) -> tuple[str, tuple[bytes, float]] | None:
        resp = self._request("GET", self._object_url(key))
        if resp is None:
            return None
        with resp:
            body = resp.read()
            mtime = float(resp.headers.get("x-repro-mtime") or 0.0)
        return key, (body, mtime)

    def get_many(self, keys: list[str]) -> dict[str, tuple[bytes, float]]:
        found = self._executor().map(self._get_one, keys)
        return dict(hit for hit in found if hit is not None)

    def _put_one(self, item: tuple[str, bytes, float]) -> None:
        key, body, mtime = item
        resp = self._request(
            "PUT",
            self._object_url(key),
            data=body,
            headers={"x-repro-mtime": repr(mtime)},
        )
        if resp is not None:
            resp.close()

    def put_many(self, items: list[tuple[str, bytes, float]]) -> None:
        # list() drains the map so errors raised in workers propagate.
        list(self._executor().map(self._put_one, items))

    def _touch_one(self, item: tuple[str, float]) -> None:
        key, mtime = item
        resp = self._request("POST", f"{self._object_url(key)}?touch={mtime!r}")
        if resp is not None:
            resp.close()

    def touch_many(self, items: list[tuple[str, float]]) -> None:
        list(self._executor().map(self._touch_one, items))

    def _delete_one(self, key: str) -> None:
        resp = self._request("DELETE", self._object_url(key))
        if resp is not None:
            resp.close()

    def delete_many(self, keys: list[str]) -> None:
        list(self._executor().map(self._delete_one, keys))

    def list_page(
        self, prefix: str, start_after: str | None, limit: int
    ) -> list[tuple[str, int, float]]:
        query = {
            "list-type": "2",
            "prefix": prefix,
            "max-keys": str(limit),
        }
        if start_after is not None:
            query["start-after"] = start_after
        url = f"{self.endpoint}/{self.bucket}?{urllib.parse.urlencode(query)}"
        resp = self._request("GET", url)
        if resp is None:
            raise ObjectStoreError(f"bucket {self.bucket!r} not found at {url}")
        with resp:
            listing = json.loads(resp.read().decode("utf-8"))
        return [
            (obj["key"], obj["size"], obj["mtime"]) for obj in listing["objects"]
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class Boto3Transport:
    """Real S3 via :mod:`boto3` — the optional-extra path.

    The import is guarded: without boto3 installed, constructing this
    transport raises one clear :class:`ObjectStoreError` telling the
    user to either install the extra or point ``REPRO_OBJECT_ENDPOINT``
    at an S3-compatible HTTP endpoint (which needs no extra at all).

    The logical mtime rides in object metadata
    (``x-amz-meta-repro-mtime``); listings fall back to the object's
    ``LastModified`` because S3 LIST does not return custom metadata —
    good enough for LRU ordering, exact values come back on GET.
    """

    def __init__(self, bucket: str, endpoint: str | None = None):
        try:
            import boto3
        except ImportError:
            raise ObjectStoreError(
                "s3:// store locations need the boto3 extra (pip install "
                f"boto3) or an S3-compatible HTTP endpoint in {ENDPOINT_ENV} "
                "(e.g. the fake bucket server: python -m "
                "repro.engine.store.fakebucket)"
            ) from None
        self.bucket = bucket
        self._client = boto3.client("s3", endpoint_url=endpoint)
        self.location = f"s3://{bucket}"

    def get_many(self, keys: list[str]) -> dict[str, tuple[bytes, float]]:
        found: dict[str, tuple[bytes, float]] = {}
        for key in keys:
            try:
                resp = self._client.get_object(Bucket=self.bucket, Key=key)
            except self._client.exceptions.NoSuchKey:
                continue
            body = resp["Body"].read()
            meta = resp.get("Metadata", {})
            try:
                mtime = float(meta.get("repro-mtime", ""))
            except ValueError:
                mtime = resp["LastModified"].timestamp()
            found[key] = (body, mtime)
        return found

    def put_many(self, items: list[tuple[str, bytes, float]]) -> None:
        for key, body, mtime in items:
            self._client.put_object(
                Bucket=self.bucket,
                Key=key,
                Body=body,
                Metadata={"repro-mtime": repr(mtime)},
            )

    def touch_many(self, items: list[tuple[str, float]]) -> None:
        # S3 has no metadata-only update; rewrite via self-copy.
        for key, mtime in items:
            try:
                self._client.copy_object(
                    Bucket=self.bucket,
                    Key=key,
                    CopySource={"Bucket": self.bucket, "Key": key},
                    Metadata={"repro-mtime": repr(mtime)},
                    MetadataDirective="REPLACE",
                )
            except self._client.exceptions.NoSuchKey:
                continue

    def delete_many(self, keys: list[str]) -> None:
        for chunk in chunked(keys):
            self._client.delete_objects(
                Bucket=self.bucket,
                Delete={"Objects": [{"Key": key} for key in chunk]},
            )

    def list_page(
        self, prefix: str, start_after: str | None, limit: int
    ) -> list[tuple[str, int, float]]:
        kwargs = {"Bucket": self.bucket, "Prefix": prefix, "MaxKeys": limit}
        if start_after is not None:
            kwargs["StartAfter"] = start_after
        resp = self._client.list_objects_v2(**kwargs)
        return [
            (obj["Key"], obj["Size"], obj["LastModified"].timestamp())
            for obj in resp.get("Contents", [])
        ]

    def close(self) -> None:
        self._client.close()


class ObjectStore:
    """:class:`CacheBackend` over any :class:`ObjectTransport`."""

    def __init__(self, transport: ObjectTransport, prefix: str = "repro"):
        self.transport = transport
        self.prefix = prefix.strip("/")

    @property
    def location(self) -> str:
        return f"{self.transport.location}/{self.prefix}"

    def __repr__(self) -> str:
        return f"ObjectStore({self.location!r})"

    def _object_key(self, key: str) -> str:
        return f"{self.prefix}/{key[:2]}/{key}"

    def _entry_key(self, object_key: str) -> str:
        return object_key.rpartition("/")[2]

    # -- payloads -----------------------------------------------------------

    def get_payload(self, key: str, kind: str) -> dict | None:
        return self.get_payload_many([key], kind).get(key)

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        wanted = list(dict.fromkeys(keys))
        if not wanted:
            return {}
        with store_op(_BACKEND, "get") as op:
            found: dict[str, dict] = {}
            now = time.time()
            for chunk in chunked(wanted):
                objects = self.transport.get_many(
                    [self._object_key(key) for key in chunk]
                )
                hits: list[tuple[str, float]] = []
                for object_key, (body, _) in objects.items():
                    key = self._entry_key(object_key)
                    try:
                        entry = json.loads(body.decode("utf-8"))
                    except (UnicodeDecodeError, ValueError):
                        continue
                    result = entry.get("result")
                    if (
                        entry.get("schema") != SCHEMA_VERSION
                        or entry.get("kind") != kind
                        or result is None
                    ):
                        continue
                    found[key] = result
                    op.add_bytes(len(body))
                    hits.append((object_key, now))
                if hits:
                    # Touch on read: mtime order is the LRU order gc()
                    # evicts in, exactly like the local backends.
                    self.transport.touch_many(hits)
            return found

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        return self.put_payload_many([(key, kind, result, spec)])

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        with store_op(_BACKEND, "put") as op:
            now = time.time()
            written = 0
            for chunk in chunked(list(items)):
                batch: list[tuple[str, bytes, float]] = []
                for key, kind, result, spec in chunk:
                    entry = {"schema": SCHEMA_VERSION, "kind": kind, "result": result}
                    if spec is not None:
                        entry["spec"] = spec
                    body = encode_entry(entry).encode("utf-8")
                    written += len(body)
                    batch.append((self._object_key(key), body, now))
                if batch:
                    self.transport.put_many(batch)
            op.add_bytes(written)
            return written

    # -- raw entries --------------------------------------------------------

    def get_entry(self, key: str) -> RawEntry | None:
        return self.get_entry_many([key]).get(key)

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        wanted = list(dict.fromkeys(keys))
        found: dict[str, RawEntry] = {}
        if not wanted:
            return found
        with store_op(_BACKEND, "get_entry") as op:
            for chunk in chunked(wanted):
                objects = self.transport.get_many(
                    [self._object_key(key) for key in chunk]
                )
                for object_key, (body, mtime) in objects.items():
                    key = self._entry_key(object_key)
                    try:
                        entry = json.loads(body.decode("utf-8"))
                    except (UnicodeDecodeError, ValueError):
                        continue
                    if isinstance(entry, dict):
                        found[key] = RawEntry(key=key, entry=entry, mtime=mtime)
                        op.add_bytes(len(body))
            return found

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        raw = RawEntry(
            key=key, entry=entry, mtime=time.time() if mtime is None else mtime
        )
        return self.put_entry_many([raw])

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        with store_op(_BACKEND, "put_entry") as op:
            written = 0
            for chunk in chunked(list(entries)):
                batch: list[tuple[str, bytes, float]] = []
                for raw in chunk:
                    body = encode_entry(raw.entry).encode("utf-8")
                    written += len(body)
                    batch.append((self._object_key(raw.key), body, raw.mtime))
                if batch:
                    self.transport.put_many(batch)
            op.add_bytes(written)
            return written

    # -- maintenance --------------------------------------------------------

    def _list_page(
        self, start_after: str | None, limit: int
    ) -> list[tuple[str, int, float]]:
        cursor = None if start_after is None else self._object_key(start_after)
        return self.transport.list_page(f"{self.prefix}/", cursor, limit)

    def iter_keys(
        self, start_after: str | None = None, limit: int | None = None
    ) -> list[str]:
        page = DEFAULT_KEY_BATCH if limit is None else max(0, int(limit))
        if page == 0:
            return []
        # Object-key order equals entry-key order (suffix-free layout,
        # see the module docstring), so one bucket LIST page is one
        # iter_keys page — no client-side re-sorting or over-fetch.
        listed = self._list_page(start_after, page)
        return [self._entry_key(object_key) for object_key, _, _ in listed]

    def size_bytes(self) -> int:
        total = 0
        cursor: str | None = None
        while True:
            listed = self.transport.list_page(
                f"{self.prefix}/", cursor, DEFAULT_KEY_BATCH
            )
            if not listed:
                break
            total += sum(size for _, size, _ in listed)
            cursor = listed[-1][0]
            if len(listed) < DEFAULT_KEY_BATCH:
                break
        return total

    def stats(self) -> CacheStats:
        entries = 0
        size = 0
        reclaimable_entries = 0
        reclaimable_bytes = 0
        cursor: str | None = None
        while True:
            listed = self.transport.list_page(
                f"{self.prefix}/", cursor, DEFAULT_KEY_BATCH
            )
            if not listed:
                break
            entries += len(listed)
            size += sum(nbytes for _, nbytes, _ in listed)
            sizes = {object_key: nbytes for object_key, nbytes, _ in listed}
            bodies = self.transport.get_many(list(sizes))
            for object_key, (body, _) in bodies.items():
                if entry_is_unreachable(body.decode("utf-8", "replace")):
                    reclaimable_entries += 1
                    reclaimable_bytes += sizes[object_key]
            cursor = listed[-1][0]
            if len(listed) < DEFAULT_KEY_BATCH:
                break
        return CacheStats(
            entries=entries,
            size_bytes=size,
            hits=0,
            misses=0,
            reclaimable_entries=reclaimable_entries,
            reclaimable_bytes=reclaimable_bytes,
        )

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        with store_op(_BACKEND, "gc"):
            return self._gc(max_bytes=max_bytes, max_age_days=max_age_days, now=now)

    def _gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        now = time.time() if now is None else now
        # Pass 1: reachability + age, one LIST page at a time, deleting
        # doomed objects per page.  Only survivor metadata is kept
        # (mtime, size, object key — never bodies): the LRU pass needs
        # a global mtime order and a bucket cannot serve one.
        survivors: list[tuple[float, int, str]] = []
        removed_entries = 0
        removed_bytes = 0
        scanned = 0
        cursor: str | None = None
        while True:
            listed = self._page_after_object(cursor)
            if not listed:
                break
            scanned += len(listed)
            bodies = self.transport.get_many([object_key for object_key, _, _ in listed])
            doomed: list[str] = []
            for object_key, nbytes, mtime in listed:
                stale = (
                    max_age_days is not None and now - mtime > max_age_days * 86400.0
                )
                body = bodies.get(object_key)
                unreachable = body is None or entry_is_unreachable(
                    body[0].decode("utf-8", "replace")
                )
                if stale or unreachable:
                    doomed.append(object_key)
                    removed_entries += 1
                    removed_bytes += nbytes
                else:
                    survivors.append((mtime, nbytes, object_key))
            if doomed:
                self.transport.delete_many(doomed)
            cursor = listed[-1][0]
            if len(listed) < DEFAULT_KEY_BATCH:
                break
        # Pass 2: LRU eviction down to the byte budget.
        if max_bytes is not None:
            survivors.sort()  # oldest mtime first
            total = sum(nbytes for _, nbytes, _ in survivors)
            doomed = []
            while survivors and total > max_bytes:
                _, nbytes, object_key = survivors.pop(0)
                doomed.append(object_key)
                removed_entries += 1
                removed_bytes += nbytes
                total -= nbytes
            for chunk in chunked(doomed):
                self.transport.delete_many(chunk)
        return GCReport(
            scanned_entries=scanned,
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            kept_entries=len(survivors),
            kept_bytes=sum(nbytes for _, nbytes, _ in survivors),
        )

    def _page_after_object(
        self, object_cursor: str | None
    ) -> list[tuple[str, int, float]]:
        return self.transport.list_page(
            f"{self.prefix}/", object_cursor, DEFAULT_KEY_BATCH
        )

    def clear(self) -> int:
        with store_op(_BACKEND, "clear"):
            removed = 0
            while True:
                # Always restart from the top: each pass deleted what
                # the previous one listed.
                listed = self._page_after_object(None)
                if not listed:
                    return removed
                self.transport.delete_many(
                    [object_key for object_key, _, _ in listed]
                )
                removed += len(listed)

    def close(self) -> None:
        self.transport.close()


def open_object_store(text: str) -> ObjectStore:
    """Open an :class:`ObjectStore` from an ``s3:`` or ``obj:`` location.

    ``s3://bucket/prefix`` prefers boto3 but honors
    :data:`ENDPOINT_ENV` as an S3-compatible HTTP endpoint override;
    ``obj:http://host:port/bucket/prefix`` names the endpoint inline
    and always uses the stdlib HTTP transport.
    """
    scheme, _, rest = text.partition(":")
    scheme = scheme.lower()
    if scheme == "s3":
        parsed = urllib.parse.urlsplit(text)
        bucket = parsed.netloc
        prefix = parsed.path.strip("/") or "repro"
        if not bucket:
            raise ValueError(f"object store location {text!r} names no bucket")
        endpoint = os.environ.get(ENDPOINT_ENV)
        if endpoint:
            return ObjectStore(HTTPTransport(endpoint, bucket), prefix=prefix)
        return ObjectStore(Boto3Transport(bucket), prefix=prefix)
    if scheme == "obj":
        parsed = urllib.parse.urlsplit(rest)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(
                f"object store location {text!r} must look like "
                "obj:http://host:port/bucket/prefix"
            )
        bucket, _, prefix = parsed.path.strip("/").partition("/")
        if not bucket:
            raise ValueError(f"object store location {text!r} names no bucket")
        endpoint = f"{parsed.scheme}://{parsed.netloc}"
        return ObjectStore(
            HTTPTransport(endpoint, bucket), prefix=prefix.strip("/") or "repro"
        )
    raise ValueError(f"not an object store location: {text!r}")
