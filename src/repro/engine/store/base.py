"""Backend-neutral pieces of the result store: protocol, codec, reports.

A :class:`CacheBackend` is anything that can hold content-addressed JSON
*entries* — ``{"schema": 1, "kind": ..., "result": ..., ["spec": ...]}``
— keyed by a spec content hash.  Two implementations ship with the
engine: :class:`~repro.engine.store.localdir.LocalDirStore` (the
original one-file-per-entry sharded directory) and
:class:`~repro.engine.store.sqlite.SqlitePackStore` (a single SQLite
file in WAL mode).  Everything that gives the cache its semantics —
the canonical entry encoding, the schema/spec-version reachability
rules, LRU-by-mtime eviction — lives here so the backends cannot
drift apart.

Backends store raw entries and know nothing about simulation results or
hit counting; that is the job of the
:class:`~repro.engine.store.frontend.ResultCache` front end.  Because
every entry is encoded canonically, moving entries between backends
(:func:`merge_stores`) preserves content exactly: a merged store is
byte-for-byte equivalent to having run the campaign locally.

The backend contract
--------------------

Anything implementing :class:`CacheBackend` — including out-of-process
stores like :class:`~repro.engine.store.http.RemoteStore` — must keep
these guarantees, which the rest of the engine assumes rather than
checks:

* **Canonical bytes.**  Every stored entry is the output of
  :func:`encode_entry` (sorted keys, ``(",", ":")`` separators).
  Payload writes construct the entry dict themselves and *must* encode
  it with this function; :meth:`CacheBackend.put_entry` stores the
  caller's dict verbatim (re-encoded, never re-ordered or annotated).
  This is what makes cross-backend merges byte-identical and lets
  :func:`entry_is_unreachable` test version markers on raw text.
* **mtimes are the LRU clock.**  Each entry carries one last-use
  timestamp.  ``get_payload``/``get_payload_many`` refresh it on a hit
  ("touch on read"); ``put_payload*`` stamps "now"; ``put_entry*``
  *preserves* a supplied ``mtime`` (backdating is how merges keep a
  shard's eviction order) and only defaults to "now" when none is
  given.  ``gc`` evicts strictly in mtime order.
* **Misses are silent, never errors.**  A missing, unreadable, corrupt,
  wrong-``kind``, or wrong-schema entry makes ``get_payload`` return
  ``None`` (the engine recomputes and overwrites); raw ``get_entry``
  skips undecodable entries.  Backends raise only for infrastructure
  failures (e.g. an unreachable server), not for content.
* **Concurrent writers, last-writer-wins.**  Several shard processes
  may write the same store at once.  Writers of the same key are
  racing to store *identical canonical bytes* (keys are content
  addresses), so last-writer-wins — an atomic rename, an ``INSERT OR
  REPLACE``, one server-side lock — is always correct.  Genuine
  byte conflicts under one key appear only across stores (a spec
  version skew or corruption); :func:`merge_stores` counts them and
  keeps the destination's copy.
* **Batch calls are plural, not different.**  ``*_many`` methods must
  be observably equivalent to a loop over their singular forms —
  missing keys are simply absent from the result dict (never ``None``
  placeholders), duplicates are allowed in the request — but should
  collapse the work into one round trip / transaction / fsync window.
  Callers bound request sizes with :func:`chunked`, so a backend may
  assume batches of at most a few hundred items.
* **``iter_keys`` is a cursor, not a dump.**  One call returns one
  *sorted page* of keys strictly greater than ``start_after``, at most
  ``limit`` of them (:data:`DEFAULT_KEY_BATCH` when ``limit`` is
  ``None`` — a page is always bounded; nothing may materialize the
  whole key set).  Passing the last key of a page as the next call's
  ``start_after`` resumes exactly where it left off, so iteration is
  restartable across processes and survives pagination-sized stores.
  Keyset semantics under concurrent writers: a key is never skipped or
  re-served once the cursor has passed it; keys written behind an
  in-flight cursor may be missed by that sweep (they are found by the
  next one).  :func:`iter_all_keys` / :func:`iter_key_pages` wrap the
  paging loop for callers that want a lazy stream.  Maintenance paths
  (``stats``/``gc``/:func:`merge_stores`/``cache export``) must stream
  over cursors — per-page content in memory, never the whole store;
  backends with an index (SQL, object listings) page natively, and the
  directory store walks shard directories in sorted order.
* **``stats`` counters stay zero.**  ``hits``/``misses`` belong to the
  :class:`~repro.engine.store.frontend.ResultCache` front end; backends
  report entry/byte totals only.  ``size_bytes`` must be cheap (no
  per-entry content scan) — the auto-GC estimate calls it on the write
  path.

Backends are selected by :func:`open_backend` through an explicit
scheme registry (``dir:`` | ``sqlite:`` | ``http:``/``https:`` |
``s3:``/``obj:``); the historical suffix-sniffing forms (a bare
``*.sqlite``/``*.db``/``*.pack`` path, ``REPRO_CACHE_BACKEND=sqlite``
rewriting a plain directory) keep working as deprecated aliases that
log a one-line warning on the ``repro.engine.store`` logger.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from ...obs import get_logger
from ...obs.metrics import STORE_MERGE_KEYS

logger = get_logger("engine.store")

#: Bump when the encoded layout of cache entries changes; mismatched
#: entries are ignored (recomputed and overwritten), never misread.
SCHEMA_VERSION = 1

#: Default cache location, overridable via the environment.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Backend selection for plain-path locations: ``dir`` (default) or
#: ``sqlite``.  URL-style locations (``sqlite:...`` / ``dir:...``) and
#: pack-file suffixes win over this.
BACKEND_ENV = "REPRO_CACHE_BACKEND"

#: When set, :class:`~repro.engine.store.frontend.ResultCache` runs the
#: LRU ``gc`` automatically once writes push the store past this size.
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: File suffixes that mark a location as a SQLite pack rather than a
#: cache directory.
PACK_SUFFIXES = (".sqlite", ".db", ".pack")

#: URL prefixes that mark a location as a remote ``repro serve``
#: endpoint (see :mod:`repro.engine.store.http`).
REMOTE_PREFIXES = ("http://", "https://")

#: Default page size for cursored ``iter_keys`` calls: one page per
#: backend round trip, small enough that no maintenance pass ever holds
#: more than a few hundred keys (the acceptance bound is 512).
DEFAULT_KEY_BATCH = 500


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def encode_entry(entry: dict) -> str:
    """Canonical, byte-deterministic JSON encoding of one entry.

    Every writer uses this encoder, so the same spec always produces
    byte-identical entries — across processes, hosts, and backends.
    """
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def chunked(seq: list, size: int = 500) -> Iterator[list]:
    """Split ``seq`` for batched backend calls (SQLite's default bound
    variable limit is 999; stay well under it)."""
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def entry_is_unreachable(
    text: str, spec_versions: Iterable[int] | None = None
) -> bool:
    """True when no current lookup key can ever hit this entry.

    Entries are written by :func:`encode_entry` with a canonical
    encoding (sorted keys, ``(",", ":")`` separators), so the version
    markers appear as exact byte sequences — membership tests on the
    raw text replace a full JSON parse of every result payload.
    Anything not written by that encoder fails the check and counts as
    unreachable, which matches ``get_payload`` treating it as a
    permanent miss.

    Several spec versions can be live at once: serialization writes each
    spec's *minimum required* version, so a version-3-shaped spec keeps
    its version-3 bytes (and key) under the current code.  An entry is
    unreachable only when its embedded spec matches none of
    :data:`~repro.engine.spec.LIVE_SPEC_VERSIONS`.
    """
    if spec_versions is None:
        from ..spec import LIVE_SPEC_VERSIONS

        spec_versions = LIVE_SPEC_VERSIONS

    def has(marker: str) -> bool:  # value followed by , or } (not "1" in "12")
        return marker + "," in text or marker + "}" in text

    if not has(f'"schema":{SCHEMA_VERSION}'):
        return True
    if '"spec":{' in text and not any(
        has(f'"spec_version":{version}') for version in spec_versions
    ):
        return True
    return False


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a result store plus this process's hit counters.

    ``reclaimable_entries``/``reclaimable_bytes`` count *unreachable*
    entries: ones written under an older cache schema or an older spec
    version, which no current lookup key can ever hit.  ``cache gc``
    removes them unconditionally.
    """

    entries: int
    size_bytes: int
    hits: int
    misses: int
    reclaimable_entries: int = 0
    reclaimable_bytes: int = 0

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


@dataclass(frozen=True)
class GCReport:
    """Outcome of one :meth:`CacheBackend.gc` pass."""

    scanned_entries: int
    removed_entries: int
    removed_bytes: int
    kept_entries: int
    kept_bytes: int


@dataclass(frozen=True)
class RawEntry:
    """One store entry in transit between backends: the decoded entry
    dict plus its last-use timestamp (so a merge preserves LRU order)."""

    key: str
    entry: dict
    mtime: float

    def encoded(self) -> str:
        return encode_entry(self.entry)


@runtime_checkable
class CacheBackend(Protocol):
    """What a result store must provide to back a ``ResultCache``.

    ``get_payload``/``put_payload`` move schema-checked payloads for one
    ``kind``; ``get_entry``/``put_entry`` move raw entries between
    backends (export/merge); ``iter_keys``/``stats``/``gc`` support
    maintenance.  Implementations must be safe for concurrent writers
    on one host: last-writer-wins on identical canonical bytes.
    """

    @property
    def location(self) -> str:
        """Human-readable position of the store (path or URL)."""
        ...

    def get_payload(self, key: str, kind: str) -> dict | None:
        """Payload under ``key`` if present, readable, and current;
        refreshes the entry's LRU position on a hit."""
        ...

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        """Batch form of :meth:`get_payload`: one backend round trip,
        returning ``{key: payload}`` for the hits only."""
        ...

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        """Atomically store ``result`` under ``key``; returns bytes written."""
        ...

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        """Batch form of :meth:`put_payload` (one transaction / fsync
        window); returns total bytes written."""
        ...

    def iter_keys(
        self, start_after: str | None = None, limit: int | None = None
    ) -> list[str]:
        """One sorted page of entry keys strictly after ``start_after``.

        At most ``limit`` keys (:data:`DEFAULT_KEY_BATCH` when
        ``None`` — a page is always bounded).  Resume by passing the
        last key of a page as the next call's ``start_after``; a short
        page means the key space is exhausted.  See the cursor bullet
        of the backend contract for semantics under concurrent writers.
        """
        ...

    def get_entry(self, key: str) -> RawEntry | None:
        """Raw entry for ``key`` (no schema check, no LRU touch)."""
        ...

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        """Batch form of :meth:`get_entry`: one backend round trip,
        returning ``{key: entry}`` for the keys that exist."""
        ...

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        """Store a raw entry verbatim (optionally backdating its LRU
        timestamp); returns bytes written."""
        ...

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        """Batch form of :meth:`put_entry`, preserving each entry's
        mtime (one transaction); returns total bytes written."""
        ...

    def size_bytes(self) -> int:
        """Total stored bytes — cheap (no per-entry content scan), for
        the auto-GC size estimate."""
        ...

    def stats(self) -> CacheStats:
        """Entry/byte totals; ``hits``/``misses`` are always 0 (the
        front end owns the counters)."""
        ...

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        """Evict entries, least-recently-used first (see ``ResultCache.gc``)."""
        ...

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        ...

    def close(self) -> None:
        """Release any handles (idempotent; a no-op for directory stores)."""
        ...


def iter_key_pages(
    backend: CacheBackend,
    *,
    batch: int = DEFAULT_KEY_BATCH,
    start_after: str | None = None,
) -> Iterator[list[str]]:
    """Stream ``backend``'s key space as sorted pages of ≤ ``batch`` keys.

    The cursored-iteration loop every maintenance path shares: each page
    is one ``iter_keys`` call, resumed from the previous page's last
    key, so memory is bounded by one page regardless of store size.
    """
    cursor = start_after
    while True:
        page = list(backend.iter_keys(start_after=cursor, limit=batch))
        if not page:
            return
        yield page
        if len(page) < batch:
            return
        cursor = page[-1]


def iter_all_keys(
    backend: CacheBackend,
    *,
    batch: int = DEFAULT_KEY_BATCH,
    start_after: str | None = None,
) -> Iterator[str]:
    """Every key of ``backend`` in sorted order, lazily, one bounded
    page per backend round trip (the flat form of :func:`iter_key_pages`)."""
    for page in iter_key_pages(backend, batch=batch, start_after=start_after):
        yield from page


def _open_dir_scheme(text: str, rest: str) -> CacheBackend:
    from .localdir import LocalDirStore

    return LocalDirStore(rest)


def _open_sqlite_scheme(text: str, rest: str) -> CacheBackend:
    from .sqlite import SqlitePackStore

    return SqlitePackStore(rest)


def _open_remote_scheme(text: str, rest: str) -> CacheBackend:
    from .http import RemoteStore

    return RemoteStore(text)


def _open_object_scheme(text: str, rest: str) -> CacheBackend:
    from .objectstore import open_object_store

    return open_object_store(text)


#: Explicit location-scheme registry: ``<scheme>:`` prefix -> opener
#: taking ``(full_location_text, text_after_colon)``.  This is the one
#: dispatch table for backend selection; everything below it in
#: :func:`open_backend` is a deprecated alias.
SCHEME_REGISTRY: dict[str, Callable[[str, str], CacheBackend]] = {
    "dir": _open_dir_scheme,
    "sqlite": _open_sqlite_scheme,
    "http": _open_remote_scheme,
    "https": _open_remote_scheme,
    "s3": _open_object_scheme,
    "obj": _open_object_scheme,
}

#: Deprecated location forms already warned about this process (the
#: warning is one line per form, not one per open).
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated(form: str, used: str, instead: str) -> None:
    if form in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(form)
    logger.warning(
        "deprecated store location form (%s): use an explicit scheme, "
        "e.g. %r",
        used,
        instead,
    )


def open_backend(location: str | os.PathLike | None = None) -> CacheBackend:
    """Open the store at ``location``, dispatching on its scheme.

    Explicit schemes (the :data:`SCHEME_REGISTRY`):

    * ``dir:<path>`` — a sharded cache directory (:class:`LocalDirStore`);
    * ``sqlite:<path>`` — a SQLite pack (:class:`SqlitePackStore`);
    * ``http://`` / ``https://`` URLs — a
      :class:`~repro.engine.store.http.RemoteStore` client against a
      ``python -m repro serve`` endpoint (bearer token from
      ``REPRO_CACHE_TOKEN``);
    * ``s3://bucket/prefix`` / ``obj:http://host:port/bucket/prefix`` —
      an :class:`~repro.engine.store.objectstore.ObjectStore` (boto3
      for real S3, the stdlib transport against ``REPRO_OBJECT_ENDPOINT``
      or an ``obj:``-wrapped URL).

    A plain path is a cache directory — the canonical scheme-less form.
    Two historical aliases keep working but log a one-line deprecation
    warning: a bare path ending in ``.sqlite``/``.db``/``.pack`` opens a
    pack, and ``REPRO_CACHE_BACKEND=sqlite`` packs a plain directory
    into ``<dir>/results.sqlite``.

    ``None`` falls back to ``REPRO_CACHE_DIR`` / ``.repro_cache``.
    """
    from .localdir import LocalDirStore
    from .sqlite import SqlitePackStore

    if location is None:
        location = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    text = os.fspath(location)
    scheme, sep, rest = text.partition(":")
    if sep and scheme.lower() in SCHEME_REGISTRY:
        return SCHEME_REGISTRY[scheme.lower()](text, rest)
    path = Path(text)
    if path.suffix in PACK_SUFFIXES:
        _warn_deprecated(
            f"suffix{path.suffix}",
            f"pack-file suffix {path.suffix!r}",
            f"sqlite:{text}",
        )
        return SqlitePackStore(path)
    backend = (os.environ.get(BACKEND_ENV) or "dir").strip().lower()
    if backend == "sqlite":
        _warn_deprecated(
            "env-sqlite",
            f"{BACKEND_ENV}=sqlite on a plain path",
            f"sqlite:{path / 'results.sqlite'}",
        )
        return SqlitePackStore(path / "results.sqlite")
    if backend in ("", "dir", "local", "localdir"):
        return LocalDirStore(path)
    raise ValueError(f"unknown {BACKEND_ENV} value {backend!r}; options: dir, sqlite")


@dataclass(frozen=True)
class MergeReport:
    """Outcome of copying one source store into a destination.

    ``conflicts`` counts keys present in both stores with *different*
    canonical bytes — a spec-version skew or a corrupted entry; the
    destination's copy is kept.  Identical entries count as ``skipped``.
    """

    copied: int
    skipped: int
    conflicts: int
    copied_bytes: int

    def accumulate(self, other: "MergeReport") -> "MergeReport":
        return MergeReport(
            copied=self.copied + other.copied,
            skipped=self.skipped + other.skipped,
            conflicts=self.conflicts + other.conflicts,
            copied_bytes=self.copied_bytes + other.copied_bytes,
        )


def merge_stores(
    dst: CacheBackend,
    src: CacheBackend,
    progress: Callable[[MergeReport], None] | None = None,
    batch: int = DEFAULT_KEY_BATCH,
) -> MergeReport:
    """Copy every entry of ``src`` into ``dst`` by content key.

    Skip-if-present: keys already in ``dst`` are left untouched (counted
    as ``skipped`` when byte-identical, ``conflicts`` otherwise).  Source
    mtimes ride along, so LRU eviction order survives the merge.  This
    is how sharded campaign outputs rendezvous into one store — after
    merging every shard, the full unsharded rerun is a pure cache read.

    The source's key space streams through :func:`iter_key_pages`
    (cursored ``iter_keys`` pages of ``batch`` keys), so a store of any
    size merges in bounded memory: one page of keys and entries at a
    time, one read per side and one write transaction per page.  Each
    page feeds the ``repro_store_merge_keys_total`` counter by outcome
    and, when ``progress`` is given, calls it with that page's
    incremental :class:`MergeReport` (the CLI's live transfer line).
    """
    copied = skipped = conflicts = copied_bytes = 0
    for keys in iter_key_pages(src, batch=batch):
        theirs = src.get_entry_many(keys)
        ours = dst.get_entry_many(keys)
        fresh: list[RawEntry] = []
        page_skipped = page_conflicts = page_bytes = 0
        for key in keys:
            raw = theirs.get(key)
            if raw is None:  # racing gc/clear on the source
                continue
            existing = ours.get(key)
            if existing is None:
                fresh.append(raw)
            elif existing.encoded() == raw.encoded():
                page_skipped += 1
            else:
                page_conflicts += 1
        if fresh:
            page_bytes = dst.put_entry_many(fresh)
            STORE_MERGE_KEYS.labels(outcome="copied").inc(len(fresh))
        if page_skipped:
            STORE_MERGE_KEYS.labels(outcome="skipped").inc(page_skipped)
        if page_conflicts:
            STORE_MERGE_KEYS.labels(outcome="conflict").inc(page_conflicts)
        copied += len(fresh)
        skipped += page_skipped
        conflicts += page_conflicts
        copied_bytes += page_bytes
        if progress is not None:
            progress(
                MergeReport(
                    copied=len(fresh),
                    skipped=page_skipped,
                    conflicts=page_conflicts,
                    copied_bytes=page_bytes,
                )
            )
    return MergeReport(
        copied=copied,
        skipped=skipped,
        conflicts=conflicts,
        copied_bytes=copied_bytes,
    )
