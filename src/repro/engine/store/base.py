"""Backend-neutral pieces of the result store: protocol, codec, reports.

A :class:`CacheBackend` is anything that can hold content-addressed JSON
*entries* — ``{"schema": 1, "kind": ..., "result": ..., ["spec": ...]}``
— keyed by a spec content hash.  Two implementations ship with the
engine: :class:`~repro.engine.store.localdir.LocalDirStore` (the
original one-file-per-entry sharded directory) and
:class:`~repro.engine.store.sqlite.SqlitePackStore` (a single SQLite
file in WAL mode).  Everything that gives the cache its semantics —
the canonical entry encoding, the schema/spec-version reachability
rules, LRU-by-mtime eviction — lives here so the backends cannot
drift apart.

Backends store raw entries and know nothing about simulation results or
hit counting; that is the job of the
:class:`~repro.engine.store.frontend.ResultCache` front end.  Because
every entry is encoded canonically, moving entries between backends
(:func:`merge_stores`) preserves content exactly: a merged store is
byte-for-byte equivalent to having run the campaign locally.

The backend contract
--------------------

Anything implementing :class:`CacheBackend` — including out-of-process
stores like :class:`~repro.engine.store.http.RemoteStore` — must keep
these guarantees, which the rest of the engine assumes rather than
checks:

* **Canonical bytes.**  Every stored entry is the output of
  :func:`encode_entry` (sorted keys, ``(",", ":")`` separators).
  Payload writes construct the entry dict themselves and *must* encode
  it with this function; :meth:`CacheBackend.put_entry` stores the
  caller's dict verbatim (re-encoded, never re-ordered or annotated).
  This is what makes cross-backend merges byte-identical and lets
  :func:`entry_is_unreachable` test version markers on raw text.
* **mtimes are the LRU clock.**  Each entry carries one last-use
  timestamp.  ``get_payload``/``get_payload_many`` refresh it on a hit
  ("touch on read"); ``put_payload*`` stamps "now"; ``put_entry*``
  *preserves* a supplied ``mtime`` (backdating is how merges keep a
  shard's eviction order) and only defaults to "now" when none is
  given.  ``gc`` evicts strictly in mtime order.
* **Misses are silent, never errors.**  A missing, unreadable, corrupt,
  wrong-``kind``, or wrong-schema entry makes ``get_payload`` return
  ``None`` (the engine recomputes and overwrites); raw ``get_entry``
  skips undecodable entries.  Backends raise only for infrastructure
  failures (e.g. an unreachable server), not for content.
* **Concurrent writers, last-writer-wins.**  Several shard processes
  may write the same store at once.  Writers of the same key are
  racing to store *identical canonical bytes* (keys are content
  addresses), so last-writer-wins — an atomic rename, an ``INSERT OR
  REPLACE``, one server-side lock — is always correct.  Genuine
  byte conflicts under one key appear only across stores (a spec
  version skew or corruption); :func:`merge_stores` counts them and
  keeps the destination's copy.
* **Batch calls are plural, not different.**  ``*_many`` methods must
  be observably equivalent to a loop over their singular forms —
  missing keys are simply absent from the result dict (never ``None``
  placeholders), duplicates are allowed in the request — but should
  collapse the work into one round trip / transaction / fsync window.
  Callers bound request sizes with :func:`chunked`, so a backend may
  assume batches of at most a few hundred items.
* **``stats`` counters stay zero.**  ``hits``/``misses`` belong to the
  :class:`~repro.engine.store.frontend.ResultCache` front end; backends
  report entry/byte totals only.  ``size_bytes`` must be cheap (no
  per-entry content scan) — the auto-GC estimate calls it on the write
  path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

#: Bump when the encoded layout of cache entries changes; mismatched
#: entries are ignored (recomputed and overwritten), never misread.
SCHEMA_VERSION = 1

#: Default cache location, overridable via the environment.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Backend selection for plain-path locations: ``dir`` (default) or
#: ``sqlite``.  URL-style locations (``sqlite:...`` / ``dir:...``) and
#: pack-file suffixes win over this.
BACKEND_ENV = "REPRO_CACHE_BACKEND"

#: When set, :class:`~repro.engine.store.frontend.ResultCache` runs the
#: LRU ``gc`` automatically once writes push the store past this size.
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: File suffixes that mark a location as a SQLite pack rather than a
#: cache directory.
PACK_SUFFIXES = (".sqlite", ".db", ".pack")

#: URL prefixes that mark a location as a remote ``repro serve``
#: endpoint (see :mod:`repro.engine.store.http`).
REMOTE_PREFIXES = ("http://", "https://")


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def encode_entry(entry: dict) -> str:
    """Canonical, byte-deterministic JSON encoding of one entry.

    Every writer uses this encoder, so the same spec always produces
    byte-identical entries — across processes, hosts, and backends.
    """
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def chunked(seq: list, size: int = 500) -> Iterator[list]:
    """Split ``seq`` for batched backend calls (SQLite's default bound
    variable limit is 999; stay well under it)."""
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def entry_is_unreachable(text: str, spec_version: int | None = None) -> bool:
    """True when no current lookup key can ever hit this entry.

    Entries are written by :func:`encode_entry` with a canonical
    encoding (sorted keys, ``(",", ":")`` separators), so the version
    markers appear as exact byte sequences — membership tests on the
    raw text replace a full JSON parse of every result payload.
    Anything not written by that encoder fails the check and counts as
    unreachable, which matches ``get_payload`` treating it as a
    permanent miss.
    """
    if spec_version is None:
        from ..spec import SPEC_VERSION

        spec_version = SPEC_VERSION

    def has(marker: str) -> bool:  # value followed by , or } (not "1" in "12")
        return marker + "," in text or marker + "}" in text

    if not has(f'"schema":{SCHEMA_VERSION}'):
        return True
    if '"spec":{' in text and not has(f'"spec_version":{spec_version}'):
        return True
    return False


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a result store plus this process's hit counters.

    ``reclaimable_entries``/``reclaimable_bytes`` count *unreachable*
    entries: ones written under an older cache schema or an older spec
    version, which no current lookup key can ever hit.  ``cache gc``
    removes them unconditionally.
    """

    entries: int
    size_bytes: int
    hits: int
    misses: int
    reclaimable_entries: int = 0
    reclaimable_bytes: int = 0

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


@dataclass(frozen=True)
class GCReport:
    """Outcome of one :meth:`CacheBackend.gc` pass."""

    scanned_entries: int
    removed_entries: int
    removed_bytes: int
    kept_entries: int
    kept_bytes: int


@dataclass(frozen=True)
class RawEntry:
    """One store entry in transit between backends: the decoded entry
    dict plus its last-use timestamp (so a merge preserves LRU order)."""

    key: str
    entry: dict
    mtime: float

    def encoded(self) -> str:
        return encode_entry(self.entry)


@runtime_checkable
class CacheBackend(Protocol):
    """What a result store must provide to back a ``ResultCache``.

    ``get_payload``/``put_payload`` move schema-checked payloads for one
    ``kind``; ``get_entry``/``put_entry`` move raw entries between
    backends (export/merge); ``iter_keys``/``stats``/``gc`` support
    maintenance.  Implementations must be safe for concurrent writers
    on one host: last-writer-wins on identical canonical bytes.
    """

    @property
    def location(self) -> str:
        """Human-readable position of the store (path or URL)."""
        ...

    def get_payload(self, key: str, kind: str) -> dict | None:
        """Payload under ``key`` if present, readable, and current;
        refreshes the entry's LRU position on a hit."""
        ...

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        """Batch form of :meth:`get_payload`: one backend round trip,
        returning ``{key: payload}`` for the hits only."""
        ...

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        """Atomically store ``result`` under ``key``; returns bytes written."""
        ...

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        """Batch form of :meth:`put_payload` (one transaction / fsync
        window); returns total bytes written."""
        ...

    def iter_keys(self) -> Iterator[str]:
        """All entry keys, in sorted order."""
        ...

    def get_entry(self, key: str) -> RawEntry | None:
        """Raw entry for ``key`` (no schema check, no LRU touch)."""
        ...

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        """Batch form of :meth:`get_entry`: one backend round trip,
        returning ``{key: entry}`` for the keys that exist."""
        ...

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        """Store a raw entry verbatim (optionally backdating its LRU
        timestamp); returns bytes written."""
        ...

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        """Batch form of :meth:`put_entry`, preserving each entry's
        mtime (one transaction); returns total bytes written."""
        ...

    def size_bytes(self) -> int:
        """Total stored bytes — cheap (no per-entry content scan), for
        the auto-GC size estimate."""
        ...

    def stats(self) -> CacheStats:
        """Entry/byte totals; ``hits``/``misses`` are always 0 (the
        front end owns the counters)."""
        ...

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        """Evict entries, least-recently-used first (see ``ResultCache.gc``)."""
        ...

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        ...

    def close(self) -> None:
        """Release any handles (idempotent; a no-op for directory stores)."""
        ...


def open_backend(location: str | os.PathLike | None = None) -> CacheBackend:
    """Open the store at ``location``, picking the backend from its form.

    * ``http://`` / ``https://`` URLs open a
      :class:`~repro.engine.store.http.RemoteStore` client against a
      ``python -m repro serve`` endpoint (bearer token from
      ``REPRO_CACHE_TOKEN``);
    * ``sqlite:<path>`` / ``dir:<path>`` URL prefixes force a backend;
    * a path ending in ``.sqlite``/``.db``/``.pack`` opens a
      :class:`SqlitePackStore`;
    * anything else is a cache directory — unless ``REPRO_CACHE_BACKEND``
      is ``sqlite``, which packs the store into ``<dir>/results.sqlite``.

    ``None`` falls back to ``REPRO_CACHE_DIR`` / ``.repro_cache``.
    """
    from .localdir import LocalDirStore
    from .sqlite import SqlitePackStore

    if location is None:
        location = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    text = os.fspath(location)
    if text.startswith(REMOTE_PREFIXES):
        from .http import RemoteStore

        return RemoteStore(text)
    if text.startswith("sqlite:"):
        return SqlitePackStore(text[len("sqlite:") :])
    if text.startswith("dir:"):
        return LocalDirStore(text[len("dir:") :])
    path = Path(text)
    if path.suffix in PACK_SUFFIXES:
        return SqlitePackStore(path)
    backend = (os.environ.get(BACKEND_ENV) or "dir").strip().lower()
    if backend == "sqlite":
        return SqlitePackStore(path / "results.sqlite")
    if backend in ("", "dir", "local", "localdir"):
        return LocalDirStore(path)
    raise ValueError(f"unknown {BACKEND_ENV} value {backend!r}; options: dir, sqlite")


@dataclass(frozen=True)
class MergeReport:
    """Outcome of copying one source store into a destination.

    ``conflicts`` counts keys present in both stores with *different*
    canonical bytes — a spec-version skew or a corrupted entry; the
    destination's copy is kept.  Identical entries count as ``skipped``.
    """

    copied: int
    skipped: int
    conflicts: int
    copied_bytes: int

    def accumulate(self, other: "MergeReport") -> "MergeReport":
        return MergeReport(
            copied=self.copied + other.copied,
            skipped=self.skipped + other.skipped,
            conflicts=self.conflicts + other.conflicts,
            copied_bytes=self.copied_bytes + other.copied_bytes,
        )


def merge_stores(dst: CacheBackend, src: CacheBackend) -> MergeReport:
    """Copy every entry of ``src`` into ``dst`` by content key.

    Skip-if-present: keys already in ``dst`` are left untouched (counted
    as ``skipped`` when byte-identical, ``conflicts`` otherwise).  Source
    mtimes ride along, so LRU eviction order survives the merge.  This
    is how sharded campaign outputs rendezvous into one store — after
    merging every shard, the full unsharded rerun is a pure cache read.

    Entries move through the batch APIs in :func:`chunked` groups, so a
    10k-entry pack merges in a few dozen round trips (one read per side
    and one write transaction per chunk), not 10k single-row commits.
    """
    copied = skipped = conflicts = copied_bytes = 0
    for keys in chunked(list(src.iter_keys())):
        theirs = src.get_entry_many(keys)
        ours = dst.get_entry_many(keys)
        fresh: list[RawEntry] = []
        for key in keys:
            raw = theirs.get(key)
            if raw is None:  # racing gc/clear on the source
                continue
            existing = ours.get(key)
            if existing is None:
                fresh.append(raw)
            elif existing.encoded() == raw.encoded():
                skipped += 1
            else:
                conflicts += 1
        if fresh:
            copied_bytes += dst.put_entry_many(fresh)
            copied += len(fresh)
    return MergeReport(
        copied=copied,
        skipped=skipped,
        conflicts=conflicts,
        copied_bytes=copied_bytes,
    )
