"""Deterministic fault injection for any :class:`CacheBackend`.

:class:`FaultyBackend` wraps a real backend and makes chosen store
operations raise :class:`InjectedFault` (an ``OSError``, so it travels
the same error paths real disk and network failures do).  It is the
process-local sibling of the server-side 503 injector
(:meth:`~repro.engine.store.http.StoreServer.inject_failures` /
``fail_every``): the server knob exercises the *wire* retry loop, this
wrapper exercises everything above it — the engine's write-back-on-
failure guarantee, the worker's release-on-error path, the queue's
quarantine counters — without a network in sight.

Two knobs, mirroring the server's:

* :meth:`fail_next` — the next N matching operations fail (arrange a
  crash at an exact point in a test);
* ``fail_every`` — every Nth matching operation fails (a steady fault
  rate for soak-style tests).

``ops`` restricts which operations count: by default only mutations and
reads (``get``/``put``) are failable, while ``close``/``stats``-style
maintenance passes through, so a test tears down cleanly.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ...obs import get_logger
from .base import CacheBackend, CacheStats, GCReport, RawEntry

_log = get_logger("store.faulty")

#: Operation names eligible for injection by default.
DEFAULT_FAILABLE_OPS = frozenset(
    {"get_payload", "get_payload_many", "put_payload", "put_payload_many"}
)


class InjectedFault(OSError):
    """A deliberately injected store failure (test infrastructure)."""


class FaultyBackend:
    """A :class:`CacheBackend` that fails on demand, deterministically.

    Args:
        inner: The real backend every successful call delegates to.
        fail_every: Every Nth matching operation raises (0 disables).
        ops: Operation names eligible for injection; defaults to the
            payload get/put family (:data:`DEFAULT_FAILABLE_OPS`).
    """

    def __init__(
        self,
        inner: CacheBackend,
        *,
        fail_every: int = 0,
        ops: Iterable[str] | None = None,
    ):
        self.inner = inner
        self.fail_every = max(0, fail_every)
        self.ops = frozenset(ops) if ops is not None else DEFAULT_FAILABLE_OPS
        self.faults_injected = 0
        self._fail_next = 0
        self._seq = 0
        self._lock = threading.Lock()

    @property
    def location(self) -> str:
        return self.inner.location

    def __repr__(self) -> str:
        return f"FaultyBackend({self.inner!r}, fail_every={self.fail_every})"

    def fail_next(self, count: int = 1) -> None:
        """Make the next ``count`` matching operations raise."""
        with self._lock:
            self._fail_next = max(0, count)

    def _maybe_fail(self, op: str) -> None:
        if op not in self.ops:
            return
        with self._lock:
            fail = False
            if self._fail_next > 0:
                self._fail_next -= 1
                fail = True
            elif self.fail_every > 0:
                self._seq += 1
                if self._seq % self.fail_every == 0:
                    fail = True
            if fail:
                self.faults_injected += 1
                _log.debug("injected fault on %s (#%d)", op, self.faults_injected)
                raise InjectedFault(f"injected fault on {op}")

    # -- delegated protocol -------------------------------------------------

    def get_payload(self, key: str, kind: str) -> dict | None:
        self._maybe_fail("get_payload")
        return self.inner.get_payload(key, kind)

    def get_payload_many(self, keys: Iterable[str], kind: str) -> dict[str, dict]:
        self._maybe_fail("get_payload_many")
        return self.inner.get_payload_many(keys, kind)

    def put_payload(
        self, key: str, kind: str, result: dict, spec: dict | None = None
    ) -> int:
        self._maybe_fail("put_payload")
        return self.inner.put_payload(key, kind, result, spec)

    def put_payload_many(
        self, items: Iterable[tuple[str, str, dict, dict | None]]
    ) -> int:
        self._maybe_fail("put_payload_many")
        return self.inner.put_payload_many(items)

    def iter_keys(
        self, start_after: str | None = None, limit: int | None = None
    ) -> list[str]:
        self._maybe_fail("iter_keys")
        return list(self.inner.iter_keys(start_after=start_after, limit=limit))

    def get_entry(self, key: str) -> RawEntry | None:
        self._maybe_fail("get_entry")
        return self.inner.get_entry(key)

    def get_entry_many(self, keys: Iterable[str]) -> dict[str, RawEntry]:
        self._maybe_fail("get_entry_many")
        return self.inner.get_entry_many(keys)

    def put_entry(self, key: str, entry: dict, mtime: float | None = None) -> int:
        self._maybe_fail("put_entry")
        return self.inner.put_entry(key, entry, mtime)

    def put_entry_many(self, entries: Iterable[RawEntry]) -> int:
        self._maybe_fail("put_entry_many")
        return self.inner.put_entry_many(entries)

    def size_bytes(self) -> int:
        self._maybe_fail("size_bytes")
        return self.inner.size_bytes()

    def stats(self) -> CacheStats:
        self._maybe_fail("stats")
        return self.inner.stats()

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
        now: float | None = None,
    ) -> GCReport:
        self._maybe_fail("gc")
        return self.inner.gc(max_bytes=max_bytes, max_age_days=max_age_days, now=now)

    def clear(self) -> int:
        self._maybe_fail("clear")
        return self.inner.clear()

    def close(self) -> None:
        self._maybe_fail("close")
        self.inner.close()
