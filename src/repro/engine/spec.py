"""Frozen, content-addressed experiment specifications.

An :class:`ExperimentSpec` pins **every** input that determines a
cycle-accurate simulation's outcome: the topology (a catalog symbol, a
node-count request, or a structural fingerprint of an ad-hoc
:class:`~repro.topos.base.Topology`), the traffic source, the packet
size, the full :class:`~repro.sim.SimConfig`, the routing scheme, the
RNG seed, and the warmup/measure/drain windows.

The traffic source is a tagged union: :class:`SyntheticTraffic` (a
pattern acronym plus an offered load, Figures 10-14/19) or
:class:`WorkloadTraffic` (a PARSEC/SPLASH benchmark model, Figure 18 /
Table 6).  Workload specs hash the *full* parameter set of the
benchmark's :class:`~repro.traffic.workloads.WorkloadSpec` — retuning a
benchmark in :data:`~repro.traffic.workloads.WORKLOADS` invalidates its
cache entries, exactly like editing a synthetic pattern's code would
require a :data:`SPEC_VERSION` bump.

Because the simulator is deterministic given these inputs, the spec's
:meth:`~ExperimentSpec.content_hash` is a *content address* for its
result: two specs with equal hashes produce byte-identical serialized
results, which is what makes the on-disk cache
(:mod:`repro.engine.store`) and the process-pool runner
(:mod:`repro.engine.runner`) safe.

Specs round-trip through JSON (:meth:`~ExperimentSpec.to_dict` /
:meth:`~ExperimentSpec.from_dict`) so they can cross process boundaries
and be stored next to their results for auditability.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import ClassVar, Iterable, Iterator, Union

from ..obs.calibration import COST_BASE_ACTIVITY, CostCalibration
from ..routing import (
    DeflectionRouting,
    DimensionOrderRouting,
    RoutingAlgorithm,
    StaticMinimalRouting,
    UGALRouting,
    ValiantRouting,
    XYAdaptiveRouting,
    default_routing,
)
from ..sim import NoCSimulator, SimConfig, SimResult
from ..topos.base import Topology
from ..traffic import (
    WORKLOADS,
    BurstSource,
    HotspotSource,
    SyntheticSource,
    TransientSource,
    WorkloadSource,
)

#: Bump when the *meaning* of a spec changes (e.g. a simulator fix that
#: alters results for identical inputs) so stale cache entries miss.
#: Version 2: ``SimConfig`` grew the ``fast_forward`` knob (results are
#: unchanged, but the serialized config — and thus every hash — moved).
#: Version 3: the traffic source became a tagged union (``source``
#: replaces the top-level ``pattern``/``load`` fields) so trace-driven
#: ``WorkloadSource`` experiments flow through the engine; synthetic
#: results are unchanged, but every serialized spec — and hash — moved.
#: Version 4: non-stationary traffic kinds (burst/hotspot/transient) and
#: the adaptive routing names (``deflect``, ``xy-adapt``) joined the
#: union.  Serialization is *minimum-required-version*: a spec writes
#: the oldest version that can express it (see
#: :meth:`ExperimentSpec.min_spec_version`), so every version-3-shaped
#: spec keeps its exact version-3 hash and cache entry — pinned by
#: ``tests/golden/spec_hashes.json``.
SPEC_VERSION = 4

#: The last spec version before the version-4 additions; specs using
#: only pre-4 features serialize as this version so their hashes and
#: cache entries survive the bump.
_LEGACY_SPEC_VERSION = 3

#: Spec versions the current code still *writes* (and therefore still
#: looks up): minimum-required-version serialization keeps version-3
#: entries reachable, so ``cache gc``/``stats`` must not count them as
#: reclaimable (see :func:`~repro.engine.store.base.entry_is_unreachable`).
LIVE_SPEC_VERSIONS = frozenset({_LEGACY_SPEC_VERSION, SPEC_VERSION})

#: Routing names that already existed at version 3.  A spec naming any
#: other routing needs version 4.
LEGACY_ROUTINGS = frozenset(
    {"default", "minimal", "dor", "valiant", "ugal-l", "ugal-g"}
)

#: Topology tokens carrying a structural fingerprint instead of a catalog
#: symbol.  Fingerprinted topologies cannot be rebuilt from the token
#: alone — the runner ships the live object to workers (see
#: :func:`repro.engine.runner.ExperimentEngine.run`).
FINGERPRINT_PREFIX = "fp:"

#: Routing schemes a worker process can rebuild by name.
ROUTING_BUILDERS = {
    "default": lambda topo: default_routing(topo),
    "minimal": lambda topo: StaticMinimalRouting(topo, num_vcs=max(2, topo.diameter)),
    "dor": lambda topo: DimensionOrderRouting(topo),
    "valiant": lambda topo: ValiantRouting(topo),
    "ugal-l": lambda topo: UGALRouting(topo, global_info=False),
    "ugal-g": lambda topo: UGALRouting(topo, global_info=True),
    "deflect": lambda topo: DeflectionRouting(topo),
    "xy-adapt": lambda topo: XYAdaptiveRouting(topo),
}


def build_routing(name: str, topology: Topology) -> RoutingAlgorithm:
    """Instantiate a named routing scheme for ``topology``."""
    if name not in ROUTING_BUILDERS:
        raise ValueError(
            f"unknown routing {name!r}; options: {sorted(ROUTING_BUILDERS)}"
        )
    return ROUTING_BUILDERS[name](topology)


def topology_fingerprint(topology: Topology) -> str:
    """Stable structural identity of a topology.

    Covers everything the simulator consumes: the concrete class (it
    selects the default routing scheme), concentration, and the link
    graph with per-link physical lengths (they set wire latencies and
    buffer depths).  Display names are deliberately excluded so renamed
    but structurally identical networks share cache entries.
    """
    payload = {
        "class": type(topology).__name__,
        "concentration": topology.concentration,
        "routers": topology.num_routers,
        "links": [
            [i, j, topology.link_length_hops(i, j)] for i, j in topology.edges()
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def topology_token(topology: Topology | str) -> str:
    """Spec token for a topology: symbols pass through, objects fingerprint."""
    if isinstance(topology, str):
        return topology
    return FINGERPRINT_PREFIX + topology_fingerprint(topology)


def resolve_topology(token: str, layout: str | None = None) -> Topology:
    """Rebuild a topology from its spec token (catalog symbol or node count).

    Fingerprint tokens are *not* resolvable — the object must be supplied
    out-of-band by whoever created the spec.
    """
    from ..topos import make_network  # local: topos.catalog imports core

    if token.startswith(FINGERPRINT_PREFIX):
        raise LookupError(
            f"topology {token!r} is a fingerprint; the caller must supply "
            "the live Topology object"
        )
    if token.isdigit():
        from ..core.slimnoc import SlimNoC, design_for_nodes

        config = design_for_nodes(int(token))
        sn_layout = layout or ("sn_gr" if config.square_group_grid else "sn_subgr")
        return SlimNoC(config.q, config.concentration, layout=sn_layout)
    return make_network(token, layout=layout)


@dataclass(frozen=True)
class SyntheticTraffic:
    """Synthetic-pattern traffic: a pattern acronym at one offered load."""

    kind: ClassVar[str] = "synthetic"
    min_spec_version: ClassVar[int] = 3

    pattern: str
    load: float

    @property
    def label(self) -> str:
        return f"{self.pattern} load={self.load:g}"

    @property
    def mean_load(self) -> float:
        return self.load

    def to_dict(self) -> dict:
        return {"kind": self.kind, "pattern": self.pattern, "load": self.load}

    def build(self, topology: Topology, packet_flits: int, seed: int):
        return SyntheticSource(
            topology, self.pattern, self.load, packet_flits, seed=seed
        )


@dataclass(frozen=True)
class BurstTraffic:
    """Bursty on/off traffic: ``load`` is the *mean* offered load, so a
    burst curve shares its x-axis with the steady curve it stresses; the
    on-phase rate is scaled up by the duty cycle (see
    :class:`~repro.traffic.nonstationary.BurstSource`)."""

    kind: ClassVar[str] = "burst"
    min_spec_version: ClassVar[int] = 4

    pattern: str
    load: float
    on_cycles: int = 64
    off_cycles: int = 192
    off_load: float = 0.0

    def __post_init__(self) -> None:
        if self.on_cycles < 1 or self.off_cycles < 0:
            raise ValueError("need on_cycles >= 1 and off_cycles >= 0")
        if self.off_load < 0:
            raise ValueError("off_load must be non-negative")

    @property
    def label(self) -> str:
        return (
            f"burst:{self.pattern}:{self.on_cycles}+{self.off_cycles} "
            f"load={self.load:g}"
        )

    @property
    def mean_load(self) -> float:
        return self.load

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pattern": self.pattern,
            "load": self.load,
            "on_cycles": self.on_cycles,
            "off_cycles": self.off_cycles,
            "off_load": self.off_load,
        }

    def build(self, topology: Topology, packet_flits: int, seed: int):
        return BurstSource(
            topology,
            self.pattern,
            self.load,
            packet_flits,
            on_cycles=self.on_cycles,
            off_cycles=self.off_cycles,
            off_load=self.off_load,
            seed=seed,
        )


@dataclass(frozen=True)
class HotspotTraffic:
    """Hotspot-concentrated traffic: a ``fraction`` of the destination
    mass goes to a fixed hotspot node set, the rest to ``pattern``."""

    kind: ClassVar[str] = "hotspot"
    min_spec_version: ClassVar[int] = 4

    pattern: str
    load: float
    hotspots: tuple[int, ...] = (0,)
    fraction: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(self, "hotspots", tuple(self.hotspots))
        if not self.hotspots:
            raise ValueError("need at least one hotspot node")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")

    @property
    def label(self) -> str:
        return (
            f"hotspot:{self.pattern}:{self.fraction:g}x{len(self.hotspots)} "
            f"load={self.load:g}"
        )

    @property
    def mean_load(self) -> float:
        return self.load

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pattern": self.pattern,
            "load": self.load,
            "hotspots": list(self.hotspots),
            "fraction": self.fraction,
        }

    def build(self, topology: Topology, packet_flits: int, seed: int):
        return HotspotSource(
            topology,
            self.pattern,
            self.load,
            packet_flits,
            hotspots=self.hotspots,
            fraction=self.fraction,
            seed=seed,
        )


@dataclass(frozen=True)
class TransientTraffic:
    """Transient permutation swaps: ``patterns[k]`` is active for cycles
    ``[k*period, (k+1)*period)``, cycling through the tuple."""

    kind: ClassVar[str] = "transient"
    min_spec_version: ClassVar[int] = 4

    patterns: tuple[str, ...]
    load: float
    period: int = 256

    def __post_init__(self) -> None:
        object.__setattr__(self, "patterns", tuple(self.patterns))
        if not self.patterns:
            raise ValueError("need at least one pattern")
        if self.period < 1:
            raise ValueError("period must be >= 1")

    @property
    def label(self) -> str:
        return (
            f"transient:{'+'.join(self.patterns)}:{self.period} "
            f"load={self.load:g}"
        )

    @property
    def mean_load(self) -> float:
        return self.load

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "patterns": list(self.patterns),
            "load": self.load,
            "period": self.period,
        }

    def build(self, topology: Topology, packet_flits: int, seed: int):
        return TransientSource(
            topology,
            self.patterns,
            self.load,
            packet_flits,
            period=self.period,
            seed=seed,
        )


@dataclass(frozen=True)
class WorkloadTraffic:
    """Trace-substitute traffic: one PARSEC/SPLASH benchmark model.

    ``intensity_scale`` multiplies the benchmark's injection intensity
    (load-scaling knob for sensitivity studies); message mix, sizes, and
    causality stay the benchmark's own.
    """

    kind: ClassVar[str] = "workload"
    min_spec_version: ClassVar[int] = 3

    bench: str
    intensity_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bench not in WORKLOADS:
            raise ValueError(
                f"unknown benchmark {self.bench!r}; options: {sorted(WORKLOADS)}"
            )

    @property
    def label(self) -> str:
        if self.intensity_scale == 1.0:
            return self.bench
        return f"{self.bench} x{self.intensity_scale:g}"

    def to_dict(self) -> dict:
        # The benchmark's full parameter set rides along so the content
        # hash covers it: retuning a WorkloadSpec in WORKLOADS moves every
        # affected cache key instead of silently serving stale results.
        return {
            "kind": self.kind,
            "bench": self.bench,
            "intensity_scale": self.intensity_scale,
            "params": asdict(WORKLOADS[self.bench]),
        }

    def build(self, topology: Topology, packet_flits: int, seed: int):
        return WorkloadSource(
            topology, self.bench, seed=seed, intensity_scale=self.intensity_scale
        )


TrafficSpec = Union[
    SyntheticTraffic, BurstTraffic, HotspotTraffic, TransientTraffic, WorkloadTraffic
]


def traffic_from_dict(payload: dict) -> TrafficSpec:
    """Rebuild a traffic source from its tagged-union dict form."""
    kind = payload.get("kind")
    if kind == SyntheticTraffic.kind:
        return SyntheticTraffic(pattern=payload["pattern"], load=payload["load"])
    if kind == BurstTraffic.kind:
        return BurstTraffic(
            pattern=payload["pattern"],
            load=payload["load"],
            on_cycles=payload.get("on_cycles", 64),
            off_cycles=payload.get("off_cycles", 192),
            off_load=payload.get("off_load", 0.0),
        )
    if kind == HotspotTraffic.kind:
        return HotspotTraffic(
            pattern=payload["pattern"],
            load=payload["load"],
            hotspots=tuple(payload.get("hotspots", (0,))),
            fraction=payload.get("fraction", 0.25),
        )
    if kind == TransientTraffic.kind:
        return TransientTraffic(
            patterns=tuple(payload["patterns"]),
            load=payload["load"],
            period=payload.get("period", 256),
        )
    if kind == WorkloadTraffic.kind:
        # ``params`` is derived from WORKLOADS at serialization time, never
        # read back — the local table is the single source of truth.
        return WorkloadTraffic(
            bench=payload["bench"],
            intensity_scale=payload.get("intensity_scale", 1.0),
        )
    raise ValueError(f"unknown traffic source kind {kind!r}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation point, fully pinned and hashable.

    Attributes:
        topology: Catalog symbol (``"sn200"``), decimal node count
            (``"800"``), or ``"fp:<hash>"`` fingerprint token.
        source: Traffic source — :class:`SyntheticTraffic` or
            :class:`WorkloadTraffic` (see the :meth:`synthetic` /
            :meth:`workload` constructors).
        packet_flits: Packet size in flits (synthetic traffic; workload
            models carry their own per-message sizes).
        config: Full simulator configuration.
        routing: Routing scheme name from :data:`ROUTING_BUILDERS`.
        seed: Simulator RNG seed (injection + randomized destinations).
        warmup / measure / drain: Simulation windows in cycles.
        layout: SN layout override (catalog-symbol topologies only).
    """

    topology: str
    source: TrafficSpec
    packet_flits: int = 6
    config: SimConfig = field(default_factory=SimConfig)
    routing: str = "default"
    seed: int = 1
    warmup: int = 300
    measure: int = 800
    drain: int = 1500
    layout: str | None = None

    @classmethod
    def synthetic(
        cls, topology: str, pattern: str, load: float, **kw
    ) -> "ExperimentSpec":
        """Convenience constructor for a synthetic-pattern point."""
        return cls(topology=topology, source=SyntheticTraffic(pattern, load), **kw)

    @classmethod
    def workload(
        cls, topology: str, bench: str, intensity_scale: float = 1.0, **kw
    ) -> "ExperimentSpec":
        """Convenience constructor for a benchmark-model point."""
        return cls(
            topology=topology,
            source=WorkloadTraffic(bench, intensity_scale),
            **kw,
        )

    def min_spec_version(self) -> int:
        """The oldest :data:`SPEC_VERSION` that can express this spec.

        Serialization (and therefore :meth:`content_hash`) writes this
        version, not the current one: a spec using only version-3
        features keeps the exact bytes — and cache entries — it had
        before the version-4 traffic/routing additions.  Only specs
        naming a new traffic kind or routing move to 4.
        """
        version = getattr(type(self.source), "min_spec_version", SPEC_VERSION)
        if self.routing not in LEGACY_ROUTINGS:
            version = max(version, 4)
        return version

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "source": self.source.to_dict(),
            "packet_flits": self.packet_flits,
            "config": asdict(self.config),
            "routing": self.routing,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain": self.drain,
            "layout": self.layout,
            "spec_version": self.min_spec_version(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        payload = dict(payload)
        payload.pop("spec_version", None)
        payload["config"] = SimConfig(**payload["config"])
        if "source" in payload:
            payload["source"] = traffic_from_dict(payload["source"])
        else:  # pre-version-3 payload with top-level pattern/load
            payload["source"] = SyntheticTraffic(
                pattern=payload.pop("pattern"), load=payload.pop("load")
            )
        return cls(**payload)

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON form (the cache key).

        Memoized per instance (the dataclass is frozen, so the hash can
        never go stale) — the runner and cache consult it repeatedly.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            self.__dict__["_content_hash"] = cached
        return cached

    def shard_of(self, shard_count: int) -> int:
        """Which of ``shard_count`` campaign shards owns this spec."""
        return shard_for_key(self.content_hash(), shard_count)

    def execute(self, topology: Topology | None = None) -> SimResult:
        """Run the simulation this spec describes (in any process).

        ``topology`` short-circuits token resolution and is mandatory for
        fingerprint specs.
        """
        topo = topology
        if topo is None:
            topo = resolve_topology(self.topology, self.layout)
        routing = build_routing(self.routing, topo)
        sim = NoCSimulator(topo, self.config, routing=routing, seed=self.seed)
        source = self.source.build(topo, self.packet_flits, self.seed)
        return sim.run(
            source, warmup=self.warmup, measure=self.measure, drain=self.drain
        )


def iter_spec_keys(specs: Iterable[ExperimentSpec]) -> Iterator[str]:
    """Content hashes for ``specs`` in order — the store and shard keys.

    The iteration point shared by the cache-first pass
    (:meth:`~repro.engine.store.frontend.ResultCache.get_many`) and shard
    partitioning (:func:`~repro.engine.campaign.shard_specs`), so "the
    key of a spec" has exactly one definition.
    """
    for spec in specs:
        yield spec.content_hash()


def shard_for_key(key: str, shard_count: int) -> int:
    """Deterministic shard index of a content key, in ``[0, shard_count)``.

    Derived from the key's leading hex digits, so the partition is a
    pure function of spec *content*: disjoint, covering, and stable
    under spec-list reordering — every worker that computes the same
    spec agrees on which shard owns it.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    return int(key[:16], 16) % shard_count


#: Baseline activity of an idle-ish network relative to its offered load
#: (router bookkeeping, warmup/drain overhead): keeps the predicted cost
#: of near-zero-load points realistically non-zero.  Shared with the
#: calibration table so heuristic and calibrated costs use one shape.
_COST_BASE_ACTIVITY = COST_BASE_ACTIVITY


def spec_load(spec: ExperimentSpec) -> float:
    """Effective injected load of a spec in flits/node/cycle units.

    Synthetic traffic carries its load directly; workload intensity is
    messages/node/100 cycles, scaled into the same ballpark.  This is
    the load term of :func:`predicted_cost` and of the calibration
    buckets, factored out so both sides agree.
    """
    source = spec.source
    mean = getattr(source, "mean_load", None)
    if mean is not None:  # the whole synthetic family, bursty or not
        return mean
    return WORKLOADS[source.bench].intensity * source.intensity_scale / 100.0


def predicted_cost(
    spec: ExperimentSpec,
    num_nodes: int | None = None,
    calibration: "CostCalibration | None" = None,
) -> float:
    """Cost estimate for one simulation point.

    Without ``calibration`` the model is deliberately crude — simulated
    work scales with how many cycles run, how many nodes inject, and
    how loaded the network is::

        cost = (warmup + measure + drain) * num_nodes * (base + load)

    It exists for *balance*, not prediction: :func:`shard_specs` with
    ``balance="cost"`` weighs each spec by this number so shards carry
    comparable expected work instead of equal point counts (a 0.45-load
    point near saturation costs many times a 0.02-load one; one shard
    drawing all the hot points would gate the whole campaign).  Only
    ratios between specs matter, so the units are arbitrary.

    With a :class:`~repro.obs.calibration.CostCalibration` (and
    ``num_nodes``), the estimate becomes **measured wall seconds**
    whenever the spec's (network size, cycle budget) bucket has been
    observed — the engine records every executed spec's wall time into
    the table, so repeat campaigns converge toward real durations.
    Specs whose bucket is missing fall back to the heuristic (callers
    that must not mix units, like LPT partitioning, check coverage
    first — see ``campaign._spec_costs``).

    ``num_nodes`` comes from the campaign layer, which holds the live
    topology objects; without it the model still orders same-network
    specs correctly (the common case — one campaign, one grid).
    """
    cycles = spec.warmup + spec.measure + spec.drain
    load = spec_load(spec)
    if calibration is not None and num_nodes is not None:
        seconds = calibration.seconds_for(num_nodes, cycles, load)
        if seconds is not None:
            return seconds
    return float(cycles) * float(num_nodes or 1) * (_COST_BASE_ACTIVITY + load)
