"""Sweep/compare/workload campaign builders on top of the experiment engine.

A *campaign* expands a grid — (network × pattern × load) for synthetic
sweeps, (network × benchmark) for workload runs — into
:class:`~repro.engine.spec.ExperimentSpec`\\ s, submits them through an
:class:`~repro.engine.runner.ExperimentEngine`, and assembles the paper's
latency-load curves (:class:`~repro.analysis.sweep.SweepResult`) or
per-benchmark result tables (Figure 18 / Table 6).

Early stop on saturation ("we omit performance data for points after
network saturation") is handled as *staged batches*: loads are submitted
in chunks sized to the engine's worker count, each curve stops extending
once a chunk contains a saturated point, and the assembled curve is
truncated at the first saturated load.  Because every point is simulated
deterministically from its spec, a staged parallel campaign is
point-for-point identical to the serial sweep — parallelism can only
compute (and cache) a few extra post-saturation points, never change the
curve.

Very large campaigns can additionally be *sharded* across independent
invocations (processes or hosts): ``shard=(index, count)`` restricts a
campaign to the specs whose content hash lands in shard ``index`` (see
:func:`shard_specs` — disjoint, covering, and stable under spec-list
reordering).  A sharded run computes the full grid for its slice (no
saturation staging: that would need the other shards' results) and is a
cache-population pass; after ``cache merge`` — or a shared ``repro
serve`` rendezvous store — brings the shard results together, the
unsharded rerun assembles the real curves as a pure cache read.

Shards balance by point count by default (``balance="hash"``); with
``balance="cost"`` the partition weighs each spec by its predicted cost
(:func:`~repro.engine.spec.predicted_cost` — load × network size ×
simulated cycles) so hosts finish together instead of one shard drawing
every near-saturation point.  Both partitions are pure functions of the
spec set, so independent hosts agree on ownership with no coordination.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..obs import CostCalibration
from ..sim import SimConfig, SimResult
from ..topos.base import Topology
from ..traffic import PATTERNS
from .runner import ExperimentEngine
from .spec import (
    BurstTraffic,
    ExperimentSpec,
    HotspotTraffic,
    SyntheticTraffic,
    TransientTraffic,
    TrafficSpec,
    WorkloadTraffic,
    iter_spec_keys,
    predicted_cost,
    resolve_topology,
    shard_for_key,
    spec_load,
    topology_token,
)

#: Valid ``balance`` arguments for :func:`shard_specs`.
SHARD_BALANCE_MODES = ("hash", "cost")


def _validate_shard(shard: tuple[int, int]) -> tuple[int, int]:
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"invalid shard {index}/{count}: need count >= 1 and "
            "0 <= index < count"
        )
    return index, count


def _spec_costs(
    unique: dict[str, ExperimentSpec],
    node_counts: Mapping[str, int] | None,
    calibration: CostCalibration | None,
) -> tuple[dict[str, float], bool]:
    """Per-key costs for LPT balancing: ``(costs, calibrated)``.

    Calibrated costs are measured wall seconds; heuristic costs are
    abstract units.  The two must never mix inside one partition (a
    4e-5-seconds spec would be dwarfed by a 500000-unit one), so
    calibration applies **all-or-nothing**: every spec's bucket must be
    present in the table, otherwise the whole batch falls back to the
    heuristic.  Either way the costs — and thus the partition — are a
    deterministic function of (spec set, calibration table).
    """
    nodes = node_counts or {}
    if calibration is not None:
        calibrated: dict[str, float] | None = {}
        for key, spec in unique.items():
            num_nodes = nodes.get(spec.topology)
            seconds = (
                None
                if num_nodes is None
                else calibration.seconds_for(
                    num_nodes,
                    spec.warmup + spec.measure + spec.drain,
                    spec_load(spec),
                )
            )
            if seconds is None:
                calibrated = None
                break
            calibrated[key] = seconds
        if calibrated is not None:
            return calibrated, True
    return {
        key: predicted_cost(spec, nodes.get(spec.topology))
        for key, spec in unique.items()
    }, False


def estimate_campaign_seconds(
    specs: Sequence[ExperimentSpec],
    node_counts: Mapping[str, int] | None = None,
    calibration: CostCalibration | None = None,
) -> float | None:
    """Calibrated wall-seconds estimate for a batch of specs.

    Returns ``None`` unless *every* spec's calibration bucket has been
    observed (same all-or-nothing rule as cost balancing) — a partial
    estimate would silently understate the campaign.  Cache hits are not
    modelled; this is the cost of simulating everything.
    """
    unique: dict[str, ExperimentSpec] = {}
    for key, spec in zip(iter_spec_keys(specs), specs):
        unique.setdefault(key, spec)
    costs, calibrated = _spec_costs(unique, node_counts, calibration)
    if not calibrated:
        return None
    return sum(costs.values())


def _cost_balanced_keys(
    unique: dict[str, ExperimentSpec],
    index: int,
    count: int,
    node_counts: Mapping[str, int] | None,
    calibration: CostCalibration | None = None,
) -> set[str]:
    """Keys owned by shard ``index`` under greedy cost balancing (LPT).

    Specs are placed heaviest-first onto the currently lightest shard —
    the classic longest-processing-time heuristic, which bounds the
    spread between shards by one spec's cost.  The placement order is
    ``(-cost, key)``, a pure function of the spec *set* (and, when
    given, the calibration table — see :func:`_spec_costs`), so every
    host slicing the same campaign computes the same assignment with no
    coordination (exactly the property hash sharding has) — provided
    calibrated hosts share the same table.
    """
    costs, _ = _spec_costs(unique, node_counts, calibration)
    weighted = sorted(
        ((costs[key], key) for key in unique),
        key=lambda item: (-item[0], item[1]),
    )
    totals = [0.0] * count
    owned: set[str] = set()
    for cost, key in weighted:
        target = min(range(count), key=totals.__getitem__)
        totals[target] += cost
        if target == index:
            owned.add(key)
    return owned


def shard_specs(
    specs: Sequence[ExperimentSpec],
    index: int,
    count: int,
    *,
    balance: str = "hash",
    node_counts: Mapping[str, int] | None = None,
    calibration: CostCalibration | None = None,
) -> list[ExperimentSpec]:
    """The subset of ``specs`` owned by shard ``index`` of ``count``.

    Both balance modes are pure functions of the spec *set*: the shards
    are disjoint, cover the whole list, and are stable under reordering
    — every host slicing the same campaign agrees on who owns which
    point, with no coordination.

    * ``balance="hash"`` (default) partitions by spec content hash —
      even point *counts*, membership independent of the other specs.
    * ``balance="cost"`` weighs each spec with the predicted-cost model
      (:func:`~repro.engine.spec.predicted_cost`: load × network size ×
      simulated cycles) and places specs heaviest-first onto the
      lightest shard, so shards carry even expected *work* — the
      near-saturation points that dominate wall time spread across
      hosts.  ``node_counts`` maps topology tokens to node counts (the
      campaign layer passes it; without it, network size drops out of
      the weights).  An optional ``calibration`` table upgrades the
      weights to measured wall seconds when every spec's bucket has
      been observed (see :func:`_spec_costs`) — hosts must share the
      table for their partitions to agree.
    """
    _validate_shard((index, count))
    if balance == "hash":
        return [
            spec
            for key, spec in zip(iter_spec_keys(specs), specs)
            if shard_for_key(key, count) == index
        ]
    if balance != "cost":
        raise ValueError(
            f"unknown shard balance {balance!r}; options: "
            f"{', '.join(SHARD_BALANCE_MODES)}"
        )
    unique: dict[str, ExperimentSpec] = {}
    for key, spec in zip(iter_spec_keys(specs), specs):
        unique.setdefault(key, spec)
    owned = _cost_balanced_keys(unique, index, count, node_counts, calibration)
    return [spec for key, spec in zip(iter_spec_keys(specs), specs) if key in owned]


def _node_counts(topo_map: Mapping[str, Topology]) -> dict[str, int]:
    """Token → node-count map for the cost model, from live topologies."""
    return {token: topo.num_nodes for token, topo in topo_map.items()}


def _resolve_entry(
    topology: Topology | str, layout: str | None
) -> tuple[str, Topology]:
    """Canonical (token, object) pair for a campaign network.

    Catalog symbols are resolved to live objects here, in the parent,
    and *every* campaign spec is keyed by the structural fingerprint —
    so a sweep launched from the CLI (symbol) and one launched from the
    harness (live object) share cache entries for the same network.
    """
    if isinstance(topology, str):
        topology = resolve_topology(topology, layout)
    return topology_token(topology), topology


#: Defaults for the non-stationary traffic token grammar (below).
DEFAULT_BURST_PHASES = (64, 192)
DEFAULT_HOTSPOT_FRACTION = 0.25
DEFAULT_HOTSPOT_COUNT = 4
DEFAULT_TRANSIENT_PERIOD = 256


def _spread_hotspots(num_nodes: int, count: int) -> tuple[int, ...]:
    """``count`` hotspot nodes spread evenly across the node space, so
    the token form names the same deterministic set on every host."""
    count = max(1, min(count, num_nodes))
    return tuple(sorted({(i * num_nodes) // count for i in range(count)}))


def traffic_for_token(
    token: str, load: float, num_nodes: int
) -> TrafficSpec:
    """Parse a CLI traffic token into a tagged-union traffic source.

    Grammar (everything after the pattern acronym is optional)::

        RND                         plain stationary pattern
        burst:ADV1[:ON+OFF[:OFFLOAD]]   on/off phases (cycles), mean load
        hotspot:RND[:FRAC[:COUNT]]      FRAC of traffic to COUNT hotspots
        transient:ADV1+ADV2[:PERIOD]    pattern swap every PERIOD cycles

    ``load`` is always the mean offered load in flits/node/cycle;
    ``num_nodes`` places the deterministic hotspot set.
    """
    kind, _, rest = token.partition(":")
    try:
        if kind == "burst":
            pattern, _, tail = rest.partition(":")
            on, off = DEFAULT_BURST_PHASES
            off_load = 0.0
            if tail:
                phases, _, extra = tail.partition(":")
                on_text, _, off_text = phases.partition("+")
                on, off = int(on_text), int(off_text)
                if extra:
                    off_load = float(extra)
            _require_pattern(pattern, token)
            return BurstTraffic(
                pattern, load, on_cycles=on, off_cycles=off, off_load=off_load
            )
        if kind == "hotspot":
            pattern, _, tail = rest.partition(":")
            fraction = DEFAULT_HOTSPOT_FRACTION
            count = DEFAULT_HOTSPOT_COUNT
            if tail:
                frac_text, _, count_text = tail.partition(":")
                fraction = float(frac_text)
                if count_text:
                    count = int(count_text)
            _require_pattern(pattern, token)
            return HotspotTraffic(
                pattern,
                load,
                hotspots=_spread_hotspots(num_nodes, count),
                fraction=fraction,
            )
        if kind == "transient":
            names, _, period_text = rest.partition(":")
            patterns = tuple(p for p in names.split("+") if p)
            period = int(period_text) if period_text else DEFAULT_TRANSIENT_PERIOD
            for pattern in patterns:
                _require_pattern(pattern, token)
            if not patterns:
                raise ValueError("needs at least one pattern")
            return TransientTraffic(patterns, load, period=period)
    except ValueError as exc:
        if str(exc).startswith("bad traffic token"):
            raise  # _require_pattern already formatted the full message
        raise ValueError(
            f"bad traffic token {token!r}: {exc} "
            "(grammar: PATTERN | burst:PATTERN[:ON+OFF[:OFFLOAD]] | "
            "hotspot:PATTERN[:FRAC[:COUNT]] | transient:PAT1+PAT2[:PERIOD])"
        ) from exc
    _require_pattern(token, token)
    return SyntheticTraffic(token, load)


def _require_pattern(pattern: str, token: str) -> None:
    if pattern not in PATTERNS:
        raise ValueError(
            f"bad traffic token {token!r}: unknown pattern {pattern!r} "
            f"(options: {', '.join(sorted(PATTERNS))}; variants: "
            "burst:PATTERN[:ON+OFF[:OFFLOAD]], hotspot:PATTERN[:FRAC[:COUNT]], "
            "transient:PAT1+PAT2[:PERIOD])"
        )


def _spec_for(
    token: str,
    pattern: str,
    load: float,
    *,
    config: SimConfig | None,
    packet_flits: int,
    routing: str,
    seed: int,
    warmup: int,
    measure: int,
    drain: int,
    layout: str | None,
    num_nodes: int,
) -> ExperimentSpec:
    return ExperimentSpec(
        topology=token,
        source=traffic_for_token(pattern, load, num_nodes),
        packet_flits=packet_flits,
        config=config if config is not None else SimConfig(),
        routing=routing,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        layout=layout,
    )


def build_sweep_specs(
    topology: Topology | str,
    pattern: str,
    loads: Sequence[float],
    *,
    config: SimConfig | None = None,
    packet_flits: int = 6,
    routing: str = "default",
    seed: int = 1,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    layout: str | None = None,
) -> tuple[list[ExperimentSpec], dict[str, Topology]]:
    """Specs for one (network, pattern) sweep, plus the topology map the
    engine needs to hand the fingerprinted networks to workers."""
    token, topology = _resolve_entry(topology, layout)
    topologies = {token: topology}
    # The fingerprint token already encodes the layout's wire lengths, so
    # the spec's layout field stays None — keeping cache keys identical no
    # matter how the caller named the network.
    specs = [
        _spec_for(
            token,
            pattern,
            load,
            config=config,
            packet_flits=packet_flits,
            routing=routing,
            seed=seed,
            warmup=warmup,
            measure=measure,
            drain=drain,
            layout=None,
            num_nodes=topology.num_nodes,
        )
        for load in sorted(loads)
    ]
    return specs, topologies


def assemble_curve(
    name: str,
    pattern: str,
    loads: Sequence[float],
    results: Sequence[SimResult],
    stop_after_saturation: bool = True,
):
    """Fold per-load results into a :class:`SweepResult`, truncating after
    the first saturated point when early stop is requested."""
    from ..analysis.sweep import SweepPoint, SweepResult

    curve = SweepResult(network=name, pattern=pattern)
    for load, outcome in zip(loads, results):
        point = SweepPoint(
            load=load,
            latency=outcome.avg_latency,
            throughput=outcome.throughput,
            saturated=outcome.saturated,
        )
        curve.points.append(point)
        if point.saturated and stop_after_saturation:
            break
    return curve


def run_sweep(
    engine: ExperimentEngine,
    topology: Topology | str,
    pattern: str,
    loads: Sequence[float],
    *,
    config: SimConfig | None = None,
    packet_flits: int = 6,
    routing: str = "default",
    seed: int = 1,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    layout: str | None = None,
    stop_after_saturation: bool = True,
    name: str | None = None,
    shard: tuple[int, int] | None = None,
    shard_balance: str = "hash",
    progress=None,
):
    """One latency-load curve through the engine (cached + parallel).

    ``shard=(index, count)`` runs only this invocation's slice of the
    grid (a cache-population pass; see :func:`run_compare`), split by
    content hash or, with ``shard_balance="cost"``, by predicted cost.
    """
    curves = run_compare(
        engine,
        {_label(name, topology): topology},
        pattern,
        loads,
        config=config,
        packet_flits=packet_flits,
        routing=routing,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        layout=layout,
        stop_after_saturation=stop_after_saturation,
        shard=shard,
        shard_balance=shard_balance,
        progress=progress,
    )
    return next(iter(curves.values()))


def _label(name: str | None, topology: Topology | str) -> str:
    if name is not None:
        return name
    return topology if isinstance(topology, str) else topology.name


def run_compare(
    engine: ExperimentEngine,
    topologies: Mapping[str, Topology | str],
    pattern: str,
    loads: Sequence[float],
    *,
    configs: Mapping[str, SimConfig] | None = None,
    config: SimConfig | None = None,
    packet_flits: int = 6,
    routing: str = "default",
    seed: int = 1,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    layout: str | None = None,
    stop_after_saturation: bool = True,
    shard: tuple[int, int] | None = None,
    shard_balance: str = "hash",
    progress=None,
):
    """Sweep several labeled networks under one pattern (Figures 12-14).

    All still-unsaturated networks contribute their next chunk of loads
    to each engine batch, so a multi-worker engine parallelizes across
    networks *and* loads while preserving per-network early stop.

    With ``shard=(index, count)`` the call becomes one slice of a
    distributed campaign: the *full* (network × load) grid is built (no
    saturation staging — that would need the other shards' results),
    only the specs owned by this shard are executed, and the returned
    curves cover just those points.  ``shard_balance`` picks the
    partition (see :func:`shard_specs`): ``"hash"`` for even point
    counts, ``"cost"`` for even predicted work.  Merge the shard stores
    — or write them all into one ``repro serve`` endpoint — and rerun
    unsharded to assemble the complete curves from cache.
    """
    loads = sorted(loads)
    # layout is consumed by _resolve_entry; fingerprint-keyed specs carry
    # layout=None so cache keys don't depend on how the network was named.
    spec_kw = dict(
        packet_flits=packet_flits,
        routing=routing,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        layout=None,
    )
    per_label: dict[str, dict] = {}
    topo_map: dict[str, Topology] = {}
    for label, topology in topologies.items():
        token, topology = _resolve_entry(topology, layout)
        topo_map[token] = topology
        per_label[label] = {
            "token": token,
            "nodes": topology.num_nodes,
            "config": (configs or {}).get(label, config),
            "results": [],
            "next": 0,
            "done": not loads,
        }

    if shard is not None:
        index, count = _validate_shard(shard)
        grid: list[tuple[str, float, ExperimentSpec]] = []
        for label, info in per_label.items():
            for load in loads:
                spec = _spec_for(
                    info["token"],
                    pattern,
                    load,
                    config=info["config"],
                    num_nodes=info["nodes"],
                    **spec_kw,
                )
                grid.append((label, load, spec))
        owned = set(
            iter_spec_keys(
                shard_specs(
                    [spec for _, _, spec in grid],
                    index,
                    count,
                    balance=shard_balance,
                    node_counts=_node_counts(topo_map),
                    calibration=engine.calibration,
                )
            )
        )
        batch = []
        specs = []
        for label, load, spec in grid:
            if spec.content_hash() in owned:
                batch.append((label, load))
                specs.append(spec)
        results = engine.run(specs, topologies=topo_map, progress=progress)
        shard_points: dict[str, list] = {label: [] for label in per_label}
        for (label, load), outcome in zip(batch, results):
            shard_points[label].append((load, outcome))
        # Partial curves over this shard's own points only (no truncation
        # — the gaps belong to other shards).
        return {
            label: assemble_curve(
                label,
                pattern,
                [load for load, _ in points],
                [outcome for _, outcome in points],
                stop_after_saturation=False,
            )
            for label, points in shard_points.items()
        }

    active = [label for label, info in per_label.items() if not info["done"]]
    while active:
        if stop_after_saturation:
            # The batch tier needs several shape-compatible misses per
            # engine call to form a lockstep group, so stage coarser than
            # the worker count when it might engage.  Points computed past
            # saturation are truncated by assemble_curve (and cached, so
            # nothing is wasted on a rerun).
            width = engine.max_workers
            if engine.executor != "pool":
                width = max(width, 8)
            chunk = max(1, math.ceil(width / len(active)))
        else:
            chunk = len(loads)
        batch: list[tuple[str, float]] = []
        specs: list[ExperimentSpec] = []
        for label in active:
            info = per_label[label]
            for load in loads[info["next"] : info["next"] + chunk]:
                batch.append((label, load))
                specs.append(
                    _spec_for(
                        info["token"],
                        pattern,
                        load,
                        config=info["config"],
                        num_nodes=info["nodes"],
                        **spec_kw,
                    )
                )
            info["next"] += chunk
        results = engine.run(specs, topologies=topo_map, progress=progress)
        for (label, _load), outcome in zip(batch, results):
            per_label[label]["results"].append(outcome)
        for label in active:
            info = per_label[label]
            saturated = stop_after_saturation and any(
                r.saturated for r in info["results"]
            )
            if saturated or info["next"] >= len(loads):
                info["done"] = True
        active = [label for label, info in per_label.items() if not info["done"]]

    return {
        label: assemble_curve(
            label,
            pattern,
            loads[: len(info["results"])],
            info["results"],
            stop_after_saturation,
        )
        for label, info in per_label.items()
    }


def _workload_spec_for(
    token: str,
    bench: str,
    *,
    config: SimConfig | None,
    intensity_scale: float,
    packet_flits: int,
    routing: str,
    seed: int,
    warmup: int,
    measure: int,
    drain: int,
) -> ExperimentSpec:
    # Like the sweep builders, fingerprint-keyed specs carry layout=None
    # so cache keys don't depend on how the network was named.
    return ExperimentSpec(
        topology=token,
        source=WorkloadTraffic(bench, intensity_scale),
        packet_flits=packet_flits,
        config=config if config is not None else SimConfig(),
        routing=routing,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        layout=None,
    )


def build_workload_specs(
    topology: Topology | str,
    benches: Sequence[str],
    *,
    config: SimConfig | None = None,
    intensity_scale: float = 1.0,
    packet_flits: int = 6,
    routing: str = "default",
    seed: int = 1,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    layout: str | None = None,
) -> tuple[list[ExperimentSpec], dict[str, Topology]]:
    """Specs for one network across several benchmark models, plus the
    topology map the engine needs for the fingerprinted network."""
    token, topology = _resolve_entry(topology, layout)
    specs = [
        _workload_spec_for(
            token,
            bench,
            config=config,
            intensity_scale=intensity_scale,
            packet_flits=packet_flits,
            routing=routing,
            seed=seed,
            warmup=warmup,
            measure=measure,
            drain=drain,
        )
        for bench in benches
    ]
    return specs, {token: topology}


def workload_compare(
    engine: ExperimentEngine,
    topologies: Mapping[str, Topology | str],
    benches: Sequence[str],
    *,
    configs: Mapping[str, SimConfig] | None = None,
    config: SimConfig | None = None,
    intensity_scale: float = 1.0,
    packet_flits: int = 6,
    routing: str = "default",
    seed: int = 1,
    warmup: int = 300,
    measure: int = 800,
    drain: int = 1500,
    layout: str | None = None,
    shard: tuple[int, int] | None = None,
    shard_balance: str = "hash",
    progress=None,
) -> dict[str, dict[str, SimResult]]:
    """Run every (network × benchmark) point as one engine batch.

    Returns ``{label: {bench: SimResult}}``.  Unlike load sweeps there is
    no saturation early stop — each benchmark is a single point — so the
    whole grid is submitted at once: a multi-worker engine fans it out,
    and every point is individually content-addressed in the cache.

    With ``shard=(index, count)`` only this shard's slice of the grid is
    executed (partitioned by content hash, or by predicted cost with
    ``shard_balance="cost"``), and the returned table holds just those
    cells — a cache-population pass for distributed campaigns (merge the
    shard stores, or share a ``repro serve`` store, then rerun unsharded
    for the full table).
    """
    if shard is not None:
        shard = _validate_shard(shard)
    topo_map: dict[str, Topology] = {}
    grid: list[tuple[str, str, ExperimentSpec]] = []
    for label, topology in topologies.items():
        token, topology = _resolve_entry(topology, layout)
        topo_map[token] = topology
        label_config = (configs or {}).get(label, config)
        for bench in benches:
            spec = _workload_spec_for(
                token,
                bench,
                config=label_config,
                intensity_scale=intensity_scale,
                packet_flits=packet_flits,
                routing=routing,
                seed=seed,
                warmup=warmup,
                measure=measure,
                drain=drain,
            )
            grid.append((label, bench, spec))
    if shard is not None:
        owned = set(
            iter_spec_keys(
                shard_specs(
                    [spec for _, _, spec in grid],
                    shard[0],
                    shard[1],
                    balance=shard_balance,
                    node_counts=_node_counts(topo_map),
                    calibration=engine.calibration,
                )
            )
        )
        grid = [cell for cell in grid if cell[2].content_hash() in owned]
    batch = [(label, bench) for label, bench, _ in grid]
    specs = [spec for _, _, spec in grid]
    results = engine.run(specs, topologies=topo_map, progress=progress)
    table: dict[str, dict[str, SimResult]] = {label: {} for label in topologies}
    for (label, bench), outcome in zip(batch, results):
        table[label][bench] = outcome
    return table
