"""Grouping cache-miss specs into lockstep batches.

The batch tier (:mod:`repro.sim.batch`) steps many *independent*
simulations at once, but only when they share everything structural:
same topology (and layout), same :class:`~repro.sim.SimConfig`, same
routing scheme, and the same warmup/measure/drain windows.  Lanes then
differ only in traffic pattern, offered load, packet size, and seed.

This module owns the two decisions the engine delegates:

* :func:`group_batchable` — partition a miss list into shape-compatible
  groups (plus the specs that cannot batch at all: trace workloads,
  elastic-link or CBR configs, RNG/adaptive routing, fingerprint specs
  whose topology object differs per spec);
* :func:`batch_worthwhile` — the ``auto`` policy: a group must be big
  enough to amortize the kernel's array build, and if the PR 6 cost
  calibration says the whole group is trivial on the scalar path, the
  pool keeps it.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Sequence

from ..obs import CostCalibration
from ..sim.batch import BATCHABLE_PATTERNS, batchable_config, batchable_routing
from .spec import ExperimentSpec, spec_load

__all__ = ["BatchGroup", "group_batchable", "batch_worthwhile", "spec_batchable"]

#: ``auto`` never batches fewer lanes than this — below it the kernel's
#: array build dominates and the scalar path wins.
MIN_AUTO_LANES = 3

#: ``auto`` leaves a group on the pool/serial path when the calibration
#: predicts the whole group costs less wall time than this.
TRIVIAL_GROUP_SECONDS = 0.25


class BatchGroup:
    """Shape-compatible cache misses that can run as one lockstep batch."""

    __slots__ = ("members",)

    def __init__(self) -> None:
        self.members: list[tuple[str, ExperimentSpec]] = []

    def __len__(self) -> int:
        return len(self.members)

    @property
    def head(self) -> ExperimentSpec:
        return self.members[0][1]


def spec_batchable(spec: ExperimentSpec) -> bool:
    """Whether the batch kernel models this spec at all."""
    source = spec.source
    return (
        getattr(source, "kind", None) == "synthetic"
        and source.pattern in BATCHABLE_PATTERNS
        and batchable_routing(spec.routing)
        and batchable_config(spec.config)
    )


def _shape_key(spec: ExperimentSpec) -> tuple:
    return (
        spec.topology,
        spec.layout,
        json.dumps(asdict(spec.config), sort_keys=True),
        spec.routing,
        spec.warmup,
        spec.measure,
        spec.drain,
    )


def group_batchable(
    misses: Sequence[tuple[str, ExperimentSpec]],
) -> tuple[list[BatchGroup], list[tuple[str, ExperimentSpec]]]:
    """Partition ``misses`` into lockstep groups and a scalar remainder.

    Order inside each group and inside the remainder follows the input,
    so dispatch order stays deterministic.
    """
    groups: dict[tuple, BatchGroup] = {}
    rest: list[tuple[str, ExperimentSpec]] = []
    for key, spec in misses:
        if not spec_batchable(spec):
            rest.append((key, spec))
            continue
        group = groups.setdefault(_shape_key(spec), BatchGroup())
        group.members.append((key, spec))
    return list(groups.values()), rest


def batch_worthwhile(
    group: BatchGroup,
    nodes: int,
    calibration: CostCalibration | None,
) -> bool:
    """The ``auto`` policy for one shape-compatible group.

    Groups below :data:`MIN_AUTO_LANES` stay scalar.  When the cost
    calibration covers every member and predicts the group is trivial
    (< :data:`TRIVIAL_GROUP_SECONDS` total), the pool keeps it — the
    kernel's array build would cost more than it saves.  An uncovered
    workload batches optimistically.
    """
    if len(group) < MIN_AUTO_LANES:
        return False
    if calibration is None:
        return True
    total = 0.0
    for _, spec in group.members:
        est = calibration.seconds_for(
            nodes, spec.warmup + spec.measure + spec.drain, spec_load(spec)
        )
        if est is None:
            return True
        total += est
    return total >= TRIVIAL_GROUP_SECONDS
