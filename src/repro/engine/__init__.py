"""Parallel experiment engine with content-addressed result caching.

The engine turns figure reproduction from serial, in-process re-simulation
into an incremental, parallel pipeline:

* :mod:`~repro.engine.spec` — :class:`ExperimentSpec`, a frozen, hashable
  description of one simulation point with a stable content hash;
* :mod:`~repro.engine.store` — pluggable result stores behind the
  :class:`CacheBackend` protocol: :class:`LocalDirStore` (sharded JSON
  directory, the classic ``.repro_cache/`` layout),
  :class:`SqlitePackStore` (single WAL-mode file for 10k+ entry
  campaigns), and :class:`RemoteStore` (a JSON/HTTP client for a
  ``python -m repro serve`` rendezvous endpoint — shard hosts share one
  network store with no pack-file shipping), fronted by
  :class:`ResultCache` (codec, hit counters, batched lookups,
  ``REPRO_CACHE_MAX_BYTES`` auto-GC) and mergeable by content key via
  :func:`merge_stores`;
* :mod:`~repro.engine.runner` — :class:`ExperimentEngine`, a batch
  executor fanning cache misses across a process pool;
* :mod:`~repro.engine.campaign` — sweep/compare grid builders with
  staged early stop on saturation, (network × benchmark) workload
  campaigns (:func:`workload_compare`), and deterministic shard
  partitioning (:func:`shard_specs`) for splitting one campaign across
  hosts;
* :mod:`~repro.engine.queue` / :mod:`~repro.engine.worker` — the
  fault-tolerant work queue (:class:`JobQueue` behind ``repro serve
  --queue``) and the elastic :class:`QueueWorker` fleet loop
  (``python -m repro work``): leased batches, heartbeats, expired-lease
  requeue, and poison-spec quarantine, so workers can join, crash, or
  be killed at any point and the campaign still drains.

Specs carry a tagged traffic union — synthetic patterns *or*
PARSEC/SPLASH workload models — so every experiment class in the repo
flows through the same cached, parallel orchestration.  End to end::

    python -m repro sweep sn200 --patterns RND,ADV2 \\
        --loads 0.02:0.5:0.04 --workers 8
    python -m repro workloads sn200 fbf3 --benches barnes,fft --workers 8

or, split across two hosts and merged back together::

    host-a$ python -m repro sweep sn200 --shard 0/2 --cache-dir a.sqlite
    host-b$ python -m repro sweep sn200 --shard 1/2 --cache-dir b.sqlite
    host-a$ python -m repro cache merge a.sqlite b.sqlite
    host-a$ python -m repro sweep sn200   # pure cache read, 0 simulations

or rendezvoused over the network, with no file shipping at all::

    host-c$ python -m repro serve --store results.sqlite --port 8123
    host-a$ python -m repro sweep sn200 --shard 0/2 --cache-dir http://c:8123
    host-b$ python -m repro sweep sn200 --shard 1/2 --cache-dir http://c:8123
    any   $ python -m repro sweep sn200 --cache-dir http://c:8123  # 0 sims

or, fault-tolerantly, drained from one work queue by an elastic fleet
(workers may join late, crash, or be killed — leases expire and their
specs are re-issued)::

    host-c$ python -m repro serve --store results.sqlite --queue
    host-a$ python -m repro work http://c:8123
    host-b$ python -m repro work http://c:8123
    any   $ python -m repro sweep sn200 --queue http://c:8123

Re-running any form performs zero new simulations: every point is
served from the cache.
"""

from .campaign import (
    SHARD_BALANCE_MODES,
    assemble_curve,
    build_sweep_specs,
    build_workload_specs,
    estimate_campaign_seconds,
    run_compare,
    run_sweep,
    shard_specs,
    traffic_for_token,
    workload_compare,
)
from .queue import JobQueue, QueueClient, QueueJob, jobs_for_specs
from .runner import EXECUTOR_ENV, EXECUTORS, ExperimentEngine, RunStats, default_engine
from .spec import (
    LIVE_SPEC_VERSIONS,
    ROUTING_BUILDERS,
    SPEC_VERSION,
    BurstTraffic,
    ExperimentSpec,
    HotspotTraffic,
    SyntheticTraffic,
    TransientTraffic,
    WorkloadTraffic,
    build_routing,
    iter_spec_keys,
    predicted_cost,
    resolve_topology,
    shard_for_key,
    spec_load,
    topology_fingerprint,
    topology_token,
    traffic_from_dict,
)
from .store import (
    SCHEMA_VERSION,
    TOKEN_ENV,
    CacheBackend,
    CacheStats,
    FaultyBackend,
    GCReport,
    InjectedFault,
    LocalDirStore,
    MergeReport,
    ObjectStore,
    ObjectStoreError,
    RemoteAuthError,
    RemoteStore,
    RemoteStoreError,
    ResultCache,
    SqlitePackStore,
    StoreServer,
    default_cache_dir,
    merge_stores,
    open_backend,
)
from .worker import QueueWorker, WorkerStats, default_worker_id

__all__ = [
    "ExperimentSpec",
    "ExperimentEngine",
    "EXECUTOR_ENV",
    "EXECUTORS",
    "CacheBackend",
    "FaultyBackend",
    "InjectedFault",
    "JobQueue",
    "LocalDirStore",
    "QueueClient",
    "QueueJob",
    "QueueWorker",
    "ObjectStore",
    "ObjectStoreError",
    "SqlitePackStore",
    "RemoteStore",
    "RemoteStoreError",
    "RemoteAuthError",
    "StoreServer",
    "ResultCache",
    "CacheStats",
    "GCReport",
    "MergeReport",
    "RunStats",
    "WorkerStats",
    "SCHEMA_VERSION",
    "SHARD_BALANCE_MODES",
    "SPEC_VERSION",
    "LIVE_SPEC_VERSIONS",
    "ROUTING_BUILDERS",
    "TOKEN_ENV",
    "SyntheticTraffic",
    "BurstTraffic",
    "HotspotTraffic",
    "TransientTraffic",
    "WorkloadTraffic",
    "traffic_from_dict",
    "traffic_for_token",
    "default_engine",
    "default_cache_dir",
    "open_backend",
    "merge_stores",
    "build_routing",
    "estimate_campaign_seconds",
    "predicted_cost",
    "resolve_topology",
    "spec_load",
    "topology_fingerprint",
    "topology_token",
    "iter_spec_keys",
    "shard_for_key",
    "shard_specs",
    "build_sweep_specs",
    "build_workload_specs",
    "assemble_curve",
    "default_worker_id",
    "jobs_for_specs",
    "run_sweep",
    "run_compare",
    "workload_compare",
]
