"""Parallel experiment engine with content-addressed result caching.

The engine turns figure reproduction from serial, in-process re-simulation
into an incremental, parallel pipeline:

* :mod:`~repro.engine.spec` — :class:`ExperimentSpec`, a frozen, hashable
  description of one simulation point with a stable content hash;
* :mod:`~repro.engine.cache` — :class:`ResultCache`, an on-disk JSON
  store keyed by spec hash (schema-versioned, byte-deterministic);
* :mod:`~repro.engine.runner` — :class:`ExperimentEngine`, a batch
  executor fanning cache misses across a process pool;
* :mod:`~repro.engine.campaign` — sweep/compare grid builders with
  staged early stop on saturation, plus (network × benchmark) workload
  campaigns (:func:`workload_compare`).

Specs carry a tagged traffic union — synthetic patterns *or*
PARSEC/SPLASH workload models — so every experiment class in the repo
flows through the same cached, parallel orchestration.  End to end::

    python -m repro sweep sn200 --patterns RND,ADV2 \\
        --loads 0.02:0.5:0.04 --workers 8
    python -m repro workloads sn200 fbf3 --benches barnes,fft --workers 8

or programmatically::

    from repro.engine import ExperimentEngine, ResultCache, run_compare

    engine = ExperimentEngine(cache=ResultCache("results/"), max_workers=8)
    curves = run_compare(engine, {"sn200": "sn200", "fbf4": "fbf4"},
                         "RND", [0.02, 0.1, 0.2, 0.3])

Re-running either form performs zero new simulations: every point is
served from the cache.
"""

from .cache import (
    SCHEMA_VERSION,
    CacheStats,
    GCReport,
    ResultCache,
    default_cache_dir,
)
from .campaign import (
    assemble_curve,
    build_sweep_specs,
    build_workload_specs,
    run_compare,
    run_sweep,
    workload_compare,
)
from .runner import ExperimentEngine, RunStats, default_engine
from .spec import (
    SPEC_VERSION,
    ExperimentSpec,
    SyntheticTraffic,
    WorkloadTraffic,
    build_routing,
    resolve_topology,
    topology_fingerprint,
    topology_token,
    traffic_from_dict,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentEngine",
    "ResultCache",
    "CacheStats",
    "GCReport",
    "RunStats",
    "SCHEMA_VERSION",
    "SPEC_VERSION",
    "SyntheticTraffic",
    "WorkloadTraffic",
    "traffic_from_dict",
    "default_engine",
    "default_cache_dir",
    "build_routing",
    "resolve_topology",
    "topology_fingerprint",
    "topology_token",
    "build_sweep_specs",
    "build_workload_specs",
    "assemble_curve",
    "run_sweep",
    "run_compare",
    "workload_compare",
]
