"""Batch executor: cache lookup, then fan-out across worker processes.

:class:`ExperimentEngine` takes a list of :class:`ExperimentSpec`\\ s and
returns one :class:`~repro.sim.SimResult` per spec, in order:

1. duplicate specs are coalesced (one simulation serves all copies);
2. the content-addressed cache is consulted for every unique spec in a
   *single* batched round trip (:meth:`ResultCache.get_many` — one
   indexed query on a SQLite pack, instead of per-spec file probes);
3. misses are executed — on a ``ProcessPoolExecutor`` when the batch is
   big enough to amortize worker startup, serially in-process otherwise —
   and written back through one batched :meth:`ResultCache.put_many`.

A batch with zero misses never touches the process machinery at all:
the worker pool is created lazily by the first miss that goes parallel,
so a fully cached repeat run (e.g. replaying a campaign against a
merged shard store) costs one cache query and no ``fork``/``spawn``.

Results are *normalized* through the JSON codec in both paths, so a
fresh simulation, a parallel run, and a cache hit are indistinguishable
point-for-point (simulations are deterministic per spec; only the
meaningless per-packet latency ordering is canonicalized).

Catalog-symbol specs ship only their token to workers (the topology is
rebuilt there); fingerprint specs pickle the live topology object.

Since PR 9 there is a third dispatch tier: ``executor="batch"`` (or
``"auto"``) routes shape-compatible misses through the NumPy lockstep
kernel (:mod:`repro.sim.batch`) — many independent sims advanced per
Python-level step — before the remainder falls back to the pool/serial
path.  ``auto`` only batches when NumPy is importable and the group is
big enough to win per the cost calibration; ``batch`` raises a clear
error when NumPy is missing.  Batch results are bit-identical to the
scalar core's, so the three tiers are indistinguishable point-for-point.

Environment knobs: ``REPRO_WORKERS`` sets the default worker count,
``REPRO_NO_CACHE=1`` disables the default on-disk cache, and
``REPRO_EXECUTOR`` picks the dispatch tier (``pool``/``batch``/``auto``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..obs import CostCalibration
from ..obs.metrics import ENGINE_SPEC_SECONDS, ENGINE_SPECS, span
from ..sim import SimResult
from ..topos.base import Topology
from .spec import FINGERPRINT_PREFIX, ExperimentSpec, resolve_topology, spec_load
from .store import ResultCache

#: progress(done, total, spec, from_cache) — invoked once per unique spec.
ProgressFn = Callable[[int, int, ExperimentSpec, bool], None]

WORKERS_ENV = "REPRO_WORKERS"
NO_CACHE_ENV = "REPRO_NO_CACHE"
EXECUTOR_ENV = "REPRO_EXECUTOR"

EXECUTORS = ("pool", "batch", "auto")


def _execute_remote(payload: tuple[dict, Topology | None]) -> dict:
    """Worker entry point: rebuild the spec, simulate, return the result
    as a JSON dict plus its measured wall seconds and network size.

    Returning the serialized form (not the ``SimResult``) keeps the
    transfer compact for large runs and guarantees parallel results pass
    through exactly the codec the cache uses.  Seconds and node count
    ride along so the parent can feed the cost-calibration table without
    re-resolving the topology.
    """
    spec_dict, topology = payload
    spec = ExperimentSpec.from_dict(spec_dict)
    if topology is None:
        topology = resolve_topology(spec.topology, spec.layout)
    start = time.perf_counter()
    result = spec.execute(topology=topology)
    return {
        "result": result.to_dict(),
        "seconds": time.perf_counter() - start,
        "nodes": topology.num_nodes,
    }


@dataclass
class RunStats:
    """Accounting for one :meth:`ExperimentEngine.run` call (or, as
    ``engine.total_stats``, everything the engine has done so far)."""

    requested: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Subset of ``executed`` that ran on the lockstep batch kernel.
    batched: int = 0
    workers: int = 1
    #: Wall seconds by engine stage (cache_lookup / dispatch / simulate /
    #: write_back / total).  ``simulate`` is the *sum of per-spec measured
    #: times*, so under parallel dispatch it exceeds the wall-clock
    #: ``dispatch`` that contains it — the ratio is the realized speedup.
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def accumulate(self, other: "RunStats") -> None:
        self.requested += other.requested
        self.unique += other.unique
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.batched += other.batched
        for stage, seconds in other.stage_seconds.items():
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def since(self, earlier: "RunStats") -> "RunStats":
        return RunStats(
            requested=self.requested - earlier.requested,
            unique=self.unique - earlier.unique,
            cache_hits=self.cache_hits - earlier.cache_hits,
            executed=self.executed - earlier.executed,
            batched=self.batched - earlier.batched,
            workers=self.workers,
            stage_seconds={
                stage: seconds - earlier.stage_seconds.get(stage, 0.0)
                for stage, seconds in self.stage_seconds.items()
            },
        )

    def snapshot(self) -> "RunStats":
        return RunStats(
            requested=self.requested,
            unique=self.unique,
            cache_hits=self.cache_hits,
            executed=self.executed,
            batched=self.batched,
            workers=self.workers,
            stage_seconds=dict(self.stage_seconds),
        )

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "unique": self.unique,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "batched": self.batched,
            "workers": self.workers,
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(self.stage_seconds.items())
            },
        }


class ExperimentEngine:
    """Cache-aware, optionally parallel experiment executor.

    Args:
        cache: Result store; ``None`` disables caching entirely.
        max_workers: Process count for simulation fan-out; ``1`` (the
            default) runs everything serially in-process.
        serial_threshold: Batches with fewer misses than this run
            serially even when ``max_workers > 1`` (worker startup would
            dominate).
        calibration: Optional :class:`~repro.obs.CostCalibration`; when
            set, every executed spec's measured wall seconds are folded
            into the table, and campaign-layer cost balancing / ETAs
            read it back.  ``None`` (the default) keeps the engine — and
            ``predicted_cost`` — on the pure deterministic heuristic.
        executor: Dispatch tier for misses — ``"pool"`` (scalar core,
            serial or process fan-out), ``"batch"`` (shape-compatible
            misses on the NumPy lockstep kernel; raises
            :class:`~repro.sim.batch.BatchUnavailableError` without
            NumPy), or ``"auto"`` (batch when available and worthwhile
            per the calibration, silently falling back otherwise).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        max_workers: int = 1,
        serial_threshold: int = 2,
        calibration: CostCalibration | None = None,
        executor: str = "pool",
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.cache = cache
        self.max_workers = max_workers
        self.serial_threshold = serial_threshold
        self.calibration = calibration
        self.executor = executor
        self.last_stats = RunStats()
        self.total_stats = RunStats(workers=max_workers)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------

    @property
    def pool_active(self) -> bool:
        """Whether a worker pool currently exists.  Pure cache replays
        must leave this ``False`` — process startup is the one cost a
        merged-store repeat run is supposed to skip."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Lazily create (and then reuse) the worker pool, so staged
        campaigns don't pay process startup once per batch — and fully
        cached runs never pay it at all."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool if one was ever started (idempotent;
        a no-op for engines that only ever served cache hits)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        topologies: dict[str, Topology] | None = None,
        progress: ProgressFn | None = None,
    ) -> list[SimResult]:
        """Execute ``specs``; returns results aligned with the input order.

        ``topologies`` maps fingerprint tokens (``spec.topology``) to live
        :class:`Topology` objects for specs built from ad-hoc networks.
        """
        run_start = time.perf_counter()
        topologies = topologies or {}
        unique: dict[str, ExperimentSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_hash(), spec)
        stats = RunStats(
            requested=len(specs),
            unique=len(unique),
            workers=self.max_workers,
            stage_seconds={
                "cache_lookup": 0.0,
                "dispatch": 0.0,
                "simulate": 0.0,
                "write_back": 0.0,
                "total": 0.0,
            },
        )

        # Cache-first pass: one batched backend round trip for the whole
        # batch, not a per-spec probe.
        results: dict[str, SimResult] = {}
        with span("engine.cache_lookup") as lookup_span:
            if self.cache is not None:
                results = self.cache.get_many(unique.values())
        stats.stage_seconds["cache_lookup"] = lookup_span.seconds
        misses: list[tuple[str, ExperimentSpec]] = []
        done = 0
        for key, spec in unique.items():
            if key in results:
                stats.cache_hits += 1
                done += 1
                if progress is not None:
                    progress(done, len(unique), spec, True)
            else:
                misses.append((key, spec))
        if stats.cache_hits:
            ENGINE_SPECS.labels(outcome="cache_hit").inc(stats.cache_hits)

        def topology_for(spec: ExperimentSpec) -> Topology | None:
            if spec.topology.startswith(FINGERPRINT_PREFIX):
                try:
                    return topologies[spec.topology]
                except KeyError:
                    raise LookupError(
                        f"spec references fingerprint topology {spec.topology!r} "
                        "but no object was supplied via `topologies`"
                    ) from None
            return None

        executed: list[tuple[ExperimentSpec, SimResult]] = []

        def record(
            key: str,
            spec: ExperimentSpec,
            result: SimResult,
            seconds: float = 0.0,
            nodes: int | None = None,
        ) -> None:
            nonlocal done
            executed.append((spec, result))
            results[key] = result
            stats.executed += 1
            stats.stage_seconds["simulate"] += seconds
            done += 1
            ENGINE_SPECS.labels(outcome="executed").inc()
            if seconds > 0:
                ENGINE_SPEC_SECONDS.observe(seconds)
            if self.calibration is not None and seconds > 0 and nodes:
                self.calibration.observe(
                    nodes,
                    spec.warmup + spec.measure + spec.drain,
                    spec_load(spec),
                    seconds,
                )
            if progress is not None:
                progress(done, len(unique), spec, False)

        if misses:
            try:
                with span("engine.dispatch") as dispatch_span:
                    if self.executor != "pool":
                        misses = self._dispatch_batches(
                            misses, topology_for, record, stats
                        )
                    parallel = (
                        self.max_workers > 1
                        and len(misses) >= self.serial_threshold
                    )
                    if not misses:
                        pass
                    elif parallel:
                        pool = self._ensure_pool()
                        pending = {
                            pool.submit(
                                _execute_remote, (spec.to_dict(), topology_for(spec))
                            ): (key, spec)
                            for key, spec in misses
                        }
                        while pending:
                            finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                            for future in finished:
                                key, spec = pending.pop(future)
                                reply = future.result()
                                record(
                                    key,
                                    spec,
                                    SimResult.from_dict(reply["result"]),
                                    seconds=reply["seconds"],
                                    nodes=reply["nodes"],
                                )
                    else:
                        for key, spec in misses:
                            topo = topology_for(spec)
                            if topo is None:
                                topo = resolve_topology(spec.topology, spec.layout)
                            start = time.perf_counter()
                            raw = spec.execute(topology=topo)
                            elapsed = time.perf_counter() - start
                            # Normalize through the codec so serial results
                            # match cached/parallel ones byte-for-byte.
                            record(
                                key,
                                spec,
                                SimResult.from_dict(raw.to_dict()),
                                seconds=elapsed,
                                nodes=topo.num_nodes,
                            )
                stats.stage_seconds["dispatch"] = dispatch_span.seconds
            finally:
                # One batched write-back per engine batch (a single
                # transaction on a SQLite pack).  Flushed even when a miss
                # raises or the run is interrupted, so every simulation
                # that *did* finish survives into the store — nothing a
                # sharded campaign already paid for is re-simulated.
                if self.cache is not None and executed:
                    with span("engine.write_back") as write_span:
                        self.cache.put_many(executed)
                    stats.stage_seconds["write_back"] = write_span.seconds

        stats.stage_seconds["total"] = time.perf_counter() - run_start
        self.last_stats = stats
        self.total_stats.accumulate(stats)
        return [results[spec.content_hash()] for spec in specs]

    def _dispatch_batches(
        self,
        misses: list[tuple[str, ExperimentSpec]],
        topology_for: Callable[[ExperimentSpec], Topology | None],
        record: Callable[..., None],
        stats: RunStats,
    ) -> list[tuple[str, ExperimentSpec]]:
        """Run shape-compatible miss groups on the lockstep kernel.

        Returns the misses that stay on the pool/serial path: unbatchable
        specs, groups ``auto`` judged not worthwhile, and — under
        ``auto`` without NumPy — everything.  ``executor="batch"`` with
        NumPy missing raises instead (the tier was explicitly requested).
        """
        from ..sim.batch import (
            BatchLane,
            numpy_available,
            require_numpy,
            simulate_batch,
        )
        from .batching import batch_worthwhile, group_batchable
        from .spec import build_routing

        if not numpy_available():
            if self.executor == "batch":
                require_numpy()
            return misses

        groups, rest = group_batchable(misses)
        for group in groups:
            if len(group) < 2:
                rest.extend(group.members)
                continue
            head = group.head
            topo = topology_for(head)
            if topo is None:
                topo = resolve_topology(head.topology, head.layout)
            if self.executor == "auto" and not batch_worthwhile(
                group, topo.num_nodes, self.calibration
            ):
                rest.extend(group.members)
                continue
            routing = build_routing(head.routing, topo)
            lanes = [
                BatchLane(
                    pattern=spec.source.pattern,
                    load=spec.source.load,
                    packet_flits=spec.packet_flits,
                    seed=spec.seed,
                )
                for _, spec in group.members
            ]
            start = time.perf_counter()
            batch_results = simulate_batch(
                topo,
                head.config,
                routing,
                lanes,
                warmup=head.warmup,
                measure=head.measure,
                drain=head.drain,
            )
            per_lane = (time.perf_counter() - start) / len(lanes)
            for (key, spec), result in zip(group.members, batch_results):
                record(key, spec, result, seconds=per_lane, nodes=topo.num_nodes)
            stats.batched += len(lanes)
        return rest


_default_engines: dict[tuple, ExperimentEngine] = {}


def default_engine() -> ExperimentEngine:
    """Engine configured from the environment (used by the analysis layer).

    ``REPRO_WORKERS=N`` enables N-process fan-out; ``REPRO_NO_CACHE=1``
    turns off the on-disk cache (otherwise ``REPRO_CACHE_DIR`` or
    ``.repro_cache/``, with ``REPRO_CACHE_BACKEND`` selecting the store
    implementation); ``REPRO_EXECUTOR`` picks the dispatch tier
    (``pool``, ``batch``, or ``auto``).  One engine is shared per
    environment configuration so its worker pool and hit counters
    persist across sweeps.
    """
    from .store import BACKEND_ENV, CACHE_DIR_ENV

    no_cache = bool(os.environ.get(NO_CACHE_ENV))
    try:
        workers = max(1, int(os.environ.get(WORKERS_ENV, "") or 1))
    except ValueError:
        workers = 1
    executor = os.environ.get(EXECUTOR_ENV, "") or "pool"
    if executor not in EXECUTORS:
        executor = "pool"
    signature = (
        no_cache,
        os.environ.get(CACHE_DIR_ENV),
        os.environ.get(BACKEND_ENV),
        workers,
        executor,
    )
    engine = _default_engines.get(signature)
    if engine is None:
        cache = None if no_cache else ResultCache()
        engine = ExperimentEngine(cache=cache, max_workers=workers, executor=executor)
        _default_engines[signature] = engine
    return engine
