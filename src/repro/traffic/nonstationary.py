"""Non-stationary synthetic traffic: bursts, hotspots, transient swaps.

Three time- or space-varying variants of :class:`SyntheticSource`, built
for the adaptive-routing study (paper section 6 / Figure 20): static
minimal routing looks fine under smooth Bernoulli injection and falls
apart when the offered load moves — which is exactly what these model.

* :class:`BurstSource` — on/off phases: the *mean* offered load is the
  configured rate, delivered as bursts at ``period / on_cycles`` times
  that rate during on-phases and ``off_load`` between them.
* :class:`HotspotSource` — a fraction of all traffic is redirected to a
  small fixed set of hotspot nodes; the rest follows the base pattern.
* :class:`TransientSource` — the active pattern is swapped every
  ``period`` cycles (e.g. ``ADV1`` then ``ADV2``), so any routing state
  tuned to one permutation goes stale on a schedule.

Every variant keeps the base source's draw discipline — one
``rng.random()`` per node per cycle, in node order, extra draws only
inside the injection branch — so injection decisions are reproducible
and burst phase boundaries are *exact*: an off-phase with
``off_load=0`` injects nothing, ever, not merely rarely.
"""

from __future__ import annotations

import math
import random

from ..topos.base import Topology
from .synthetic import RANDOMIZED_PATTERNS, SyntheticSource, make_pattern


class BurstSource(SyntheticSource):
    """On/off bursty injection with an exact phase schedule.

    Args:
        topology: Target network.
        pattern: Base pattern name (destinations are drawn from it in
            both phases).
        rate: **Mean** offered load in flits/node/cycle, so burst curves
            are directly comparable to steady curves at the same x-axis
            value.  The on-phase rate is scaled up to compensate for the
            off-phase deficit.
        on_cycles / off_cycles: Phase lengths; the schedule has period
            ``on_cycles + off_cycles``.
        off_load: Offered load during off-phases (default 0 — silence).
        phase: Cycle offset of the schedule (``phase=0`` starts bursting
            at cycle 0).
    """

    def __init__(
        self,
        topology: Topology,
        pattern: str,
        rate: float,
        packet_flits: int = 6,
        on_cycles: int = 64,
        off_cycles: int = 192,
        off_load: float = 0.0,
        phase: int = 0,
        seed: int = 0,
    ):
        super().__init__(topology, pattern, rate, packet_flits, seed=seed)
        if on_cycles < 1:
            raise ValueError("on_cycles must be >= 1")
        if off_cycles < 0:
            raise ValueError("off_cycles must be >= 0")
        if off_load < 0:
            raise ValueError("off_load must be non-negative")
        self.on_cycles = on_cycles
        self.off_cycles = off_cycles
        self.off_load = off_load
        self.phase = phase
        self.period = on_cycles + off_cycles
        off_fraction = off_cycles / self.period
        peak = (rate - off_load * off_fraction) * self.period / on_cycles
        if peak < 0:
            raise ValueError(
                f"off_load={off_load:g} over {off_cycles} cycles already "
                f"exceeds the mean rate {rate:g}"
            )
        if peak > packet_flits:
            raise ValueError(
                f"on-phase load {peak:g} exceeds the injection ceiling of "
                f"{packet_flits} flits/node/cycle (1 packet/cycle); lower "
                "the mean rate or lengthen on_cycles"
            )
        self.peak_load = peak
        self._on_probability = peak / packet_flits
        self._off_probability = off_load / packet_flits

    def in_burst(self, cycle: int) -> bool:
        """Exact phase predicate: True iff ``cycle`` is in an on-phase."""
        return (cycle + self.phase) % self.period < self.on_cycles

    def packets_at(self, cycle: int, rng: random.Random):
        probability = (
            self._on_probability if self.in_burst(cycle) else self._off_probability
        )
        pattern = self.pattern
        size = self.packet_flits
        draw = rng.random
        for src in range(self.topology.num_nodes):
            if draw() < probability:
                dst = pattern(src, rng)
                if dst != src:
                    yield (src, dst, size, "data", False, 0)


class HotspotSource(SyntheticSource):
    """Background pattern plus a fixed set of hotspot destinations.

    Each injected packet targets a hotspot with probability ``fraction``
    (uniform over ``hotspots``) and the base pattern otherwise, so the
    destination mass splits exactly ``fraction`` : ``1 - fraction`` and
    :attr:`hotspot_weights` sums to 1 over the hotspot set.
    """

    def __init__(
        self,
        topology: Topology,
        pattern: str,
        rate: float,
        packet_flits: int = 6,
        hotspots: tuple[int, ...] = (0,),
        fraction: float = 0.25,
        seed: int = 0,
    ):
        super().__init__(topology, pattern, rate, packet_flits, seed=seed)
        hotspots = tuple(sorted(set(hotspots)))
        if not hotspots:
            raise ValueError("need at least one hotspot node")
        if not all(0 <= node < topology.num_nodes for node in hotspots):
            raise ValueError(
                f"hotspots {hotspots} out of range for {topology.num_nodes} nodes"
            )
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        self.hotspots = hotspots
        self.fraction = fraction

    @property
    def hotspot_weights(self) -> dict[int, float]:
        """Per-hotspot share of the redirected mass (sums to 1)."""
        share = 1.0 / len(self.hotspots)
        return {node: share for node in self.hotspots}

    def destination_mass(self) -> dict[str, float]:
        """Split of the total destination mass (sums to 1)."""
        return {"hotspot": self.fraction, "background": 1.0 - self.fraction}

    def _draw_destination(self, src: int, rng: random.Random) -> int:
        if rng.random() < self.fraction:
            return self.hotspots[rng.randrange(len(self.hotspots))]
        return self.pattern(src, rng)

    def packets_at(self, cycle: int, rng: random.Random):
        probability = self._packet_probability
        size = self.packet_flits
        draw = rng.random
        for src in range(self.topology.num_nodes):
            if draw() < probability:
                dst = self._draw_destination(src, rng)
                if dst != src:
                    yield (src, dst, size, "data", False, 0)

    def default_flow_samples(self) -> int:
        if self.fraction == 0.0:
            return super().default_flow_samples()
        # The hotspot draw randomizes even deterministic base patterns.
        return max(200, 16 * math.isqrt(self.topology.num_nodes))

    def flows(self, samples: int | None = None) -> dict[tuple[int, int], float]:
        """Background mass is sampled; hotspot mass is added exactly."""
        topo = self.topology
        flows: dict[tuple[int, int], float] = {}
        rng = random.Random(self.seed)
        samples = samples if samples is not None else self.default_flow_samples()
        background = self.rate * (1.0 - self.fraction) / samples
        weights = self.hotspot_weights
        for src in range(topo.num_nodes):
            src_router = topo.node_router(src)
            for _ in range(samples):
                dst = self.pattern(src, rng)
                if dst == src:
                    continue
                key = (src_router, topo.node_router(dst))
                flows[key] = flows.get(key, 0.0) + background
            for node, weight in weights.items():
                if node == src:
                    continue
                key = (src_router, topo.node_router(node))
                flows[key] = flows.get(key, 0.0) + self.rate * self.fraction * weight
        return flows


class TransientSource(SyntheticSource):
    """Pattern swapped on a fixed schedule: ``patterns[k]`` is active for
    cycles ``[k * period, (k + 1) * period)``, cycling."""

    def __init__(
        self,
        topology: Topology,
        patterns: tuple[str, ...],
        rate: float,
        packet_flits: int = 6,
        period: int = 256,
        phase: int = 0,
        seed: int = 0,
    ):
        patterns = tuple(patterns)
        if not patterns:
            raise ValueError("need at least one pattern")
        if period < 1:
            raise ValueError("period must be >= 1")
        super().__init__(topology, patterns[0], rate, packet_flits, seed=seed)
        self.patterns = patterns
        self.period = period
        self.phase = phase
        self.pattern_name = "+".join(patterns)
        self._pattern_fns = tuple(make_pattern(p, topology) for p in patterns)

    def active_index(self, cycle: int) -> int:
        """Index into :attr:`patterns` of the pattern active at ``cycle``."""
        return (cycle + self.phase) // self.period % len(self.patterns)

    def packets_at(self, cycle: int, rng: random.Random):
        probability = self._packet_probability
        pattern = self._pattern_fns[self.active_index(cycle)]
        size = self.packet_flits
        draw = rng.random
        for src in range(self.topology.num_nodes):
            if draw() < probability:
                dst = pattern(src, rng)
                if dst != src:
                    yield (src, dst, size, "data", False, 0)

    def default_flow_samples(self) -> int:
        if not any(name in RANDOMIZED_PATTERNS for name in self.patterns):
            return 1
        return max(200, 16 * math.isqrt(self.topology.num_nodes))

    def flows(self, samples: int | None = None) -> dict[tuple[int, int], float]:
        """Time-averaged flow matrix: each pattern contributes equally."""
        topo = self.topology
        flows: dict[tuple[int, int], float] = {}
        rng = random.Random(self.seed)
        samples = samples if samples is not None else self.default_flow_samples()
        weight = self.rate / (len(self._pattern_fns) * samples)
        for fn in self._pattern_fns:
            for src in range(topo.num_nodes):
                src_router = topo.node_router(src)
                for _ in range(samples):
                    dst = fn(src, rng)
                    if dst == src:
                        continue
                    key = (src_router, topo.node_router(dst))
                    flows[key] = flows.get(key, 0.0) + weight
        return flows
