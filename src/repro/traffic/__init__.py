"""Traffic: synthetic patterns and PARSEC/SPLASH-like workload models."""

from .nonstationary import BurstSource, HotspotSource, TransientSource
from .synthetic import PATTERNS, SyntheticSource, make_pattern
from .workloads import WORKLOADS, WorkloadSource, WorkloadSpec, workload_names

__all__ = [
    "PATTERNS",
    "make_pattern",
    "SyntheticSource",
    "BurstSource",
    "HotspotSource",
    "TransientSource",
    "WORKLOADS",
    "WorkloadSpec",
    "WorkloadSource",
    "workload_names",
]
