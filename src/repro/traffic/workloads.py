"""PARSEC/SPLASH-2 workload models (trace substitution — see DESIGN.md).

The paper drives its real-traffic experiments with Manifold+DRAMSim2
traces of 14 PARSEC/SPLASH benchmarks captured behind the L1 (section
5.1): read requests and coherence messages are 2 flits, writes 6 flits,
and every read triggers a 6-flit reply from the destination.

Those traces are not redistributable, so this module generates synthetic
message streams with the same mechanics (message mix, sizes, causality)
and per-benchmark parameters — injection intensity, read fraction,
locality, and burstiness — chosen to spread the workload space the way
the PARSEC/SPLASH suite does (memory-bound ocean/radix at the top,
compute-bound water/volrend at the bottom).  Every benchmark's stream is
deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..topos.base import Topology

READ_FLITS = 2
WRITE_FLITS = 6
REPLY_FLITS = 6


@dataclass(frozen=True)
class WorkloadSpec:
    """Traffic model parameters for one benchmark.

    Attributes:
        name: Benchmark name (paper Figure 10b / 18 / Table 6 labels).
        intensity: Mean L1-miss messages per node per 100 cycles.
        read_fraction: Share of request messages that are reads/coherence
            (2 flits, reply-generating) versus writes (6 flits, no reply).
        locality: Probability a request targets the node's neighborhood
            (directory-style striding) rather than a uniform destination.
        burstiness: 0 = Bernoulli; >0 adds on/off phases of this relative
            amplitude (memory-phase behaviour).
    """

    name: str
    intensity: float
    read_fraction: float
    locality: float
    burstiness: float


#: The 14 PARSEC/SPLASH workloads the paper evaluates, ordered as in
#: Figure 10b.  Intensities follow the well-known ranking of NoC load
#: for these suites (ocean/radix/fft memory-heavy; water/volrend light).
WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec("barnes", 1.6, 0.75, 0.35, 0.3),
        WorkloadSpec("canneal", 2.4, 0.80, 0.10, 0.2),
        WorkloadSpec("cholesky", 1.8, 0.70, 0.40, 0.4),
        WorkloadSpec("dedup", 2.0, 0.65, 0.25, 0.5),
        WorkloadSpec("ferret", 1.9, 0.70, 0.30, 0.3),
        WorkloadSpec("fft", 2.8, 0.72, 0.15, 0.6),
        WorkloadSpec("fluidanimate", 1.5, 0.68, 0.45, 0.3),
        WorkloadSpec("ocean-c", 3.2, 0.74, 0.20, 0.5),
        WorkloadSpec("radiosity", 1.4, 0.76, 0.40, 0.2),
        WorkloadSpec("radix", 3.0, 0.66, 0.10, 0.7),
        WorkloadSpec("streamcluster", 2.2, 0.78, 0.20, 0.4),
        WorkloadSpec("vips", 1.7, 0.70, 0.30, 0.3),
        WorkloadSpec("volrend", 1.2, 0.75, 0.50, 0.2),
        WorkloadSpec("water-s", 1.1, 0.72, 0.50, 0.2),
    ]
}


def workload_names() -> list[str]:
    return list(WORKLOADS)


class WorkloadSource:
    """Simulator feed for one benchmark model.

    Reads (2 flits) request a 6-flit reply from the destination —
    exercising the variable-packet-size and request/reply machinery the
    paper's trace runs exercise.  Destinations mix a local stride
    (directory home on a neighboring router) with uniform sharing misses.
    """

    def __init__(
        self,
        topology: Topology,
        benchmark: str,
        seed: int = 0,
        intensity_scale: float = 1.0,
    ):
        if benchmark not in WORKLOADS:
            raise ValueError(f"unknown benchmark {benchmark!r}; see workload_names()")
        self.topology = topology
        self.spec = WORKLOADS[benchmark]
        self.seed = seed
        self.intensity_scale = intensity_scale
        self._phase_rng = random.Random(seed ^ 0x5EED)
        self._phase_until = 0
        self._phase_level = 1.0

    @property
    def rate(self) -> float:
        """Approximate offered flits/node/cycle (for reporting)."""
        spec = self.spec
        write_fraction = 1 - spec.read_fraction
        mean_flits = spec.read_fraction * READ_FLITS + write_fraction * WRITE_FLITS
        return self.intensity_scale * spec.intensity / 100.0 * mean_flits

    def _phase(self, cycle: int) -> float:
        """On/off modulation implementing burstiness."""
        if cycle >= self._phase_until:
            span = self._phase_rng.randint(200, 600)
            self._phase_until = cycle + span
            high = 1.0 + self.spec.burstiness
            low = max(0.1, 1.0 - self.spec.burstiness)
            self._phase_level = high if self._phase_rng.random() < 0.5 else low
        return self._phase_level

    def _destination(self, src: int, rng: random.Random) -> int:
        topo = self.topology
        n = topo.num_nodes
        if rng.random() < self.spec.locality:
            # Directory home: deterministic stride within a nearby window.
            window = max(2, n // 16)
            dst = (src + 1 + rng.randrange(window)) % n
        else:
            dst = rng.randrange(n - 1)
            dst = dst if dst < src else dst + 1
        return dst

    def packets_at(self, cycle: int, rng: random.Random):
        probability = (
            self.intensity_scale * self.spec.intensity / 100.0 * self._phase(cycle)
        )
        for src in range(self.topology.num_nodes):
            if rng.random() >= probability:
                continue
            dst = self._destination(src, rng)
            if dst == src:
                continue
            if rng.random() < self.spec.read_fraction:
                yield (src, dst, READ_FLITS, "read", True, REPLY_FLITS)
            else:
                yield (src, dst, WRITE_FLITS, "write", False, 0)
