"""Synthetic traffic patterns (paper section 5.1 "Synthetic Traffic").

Five patterns plus the adaptive-routing study's asymmetric pattern:

* ``RND``  — uniform random destinations.
* ``SHF``  — bit shuffle: destination id is the source id's bits rotated
  left by one position.
* ``REV``  — bit reversal of the source id.
* ``ADV1`` — adversarial, maximising load on *single-link* paths: a
  quarter-die node shift, funnelling all traffic between group-sized
  node bands across the same few links.
* ``ADV2`` — adversarial for *multi-link* paths: a half-die (tornado)
  shift, the classic worst-case permutation for minimal routing.
* ``ASYM`` — section 6 (Figure 20): destination is ``(s mod N/2) + N/2``
  or ``(s mod N/2)`` with probability 1/2 each.

Patterns are functions from a source node to a destination node (plus an
RNG for the randomized ones).  :class:`SyntheticSource` turns a pattern
and an injection rate (flits/node/cycle) into the simulator's packet feed
with Bernoulli injection.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable

from ..topos.base import Topology

PatternFn = Callable[[int, random.Random], int]


def _bits_needed(n: int) -> int:
    return max(1, (n - 1).bit_length())


def uniform_random(topology: Topology) -> PatternFn:
    """RND: destination drawn uniformly from all other nodes."""
    n = topology.num_nodes

    def pattern(src: int, rng: random.Random) -> int:
        dst = rng.randrange(n - 1)
        return dst if dst < src else dst + 1

    return pattern


def bit_shuffle(topology: Topology) -> PatternFn:
    """SHF: rotate the source id's bits left by one."""
    n = topology.num_nodes
    bits = _bits_needed(n)

    def pattern(src: int, rng: random.Random) -> int:
        rotated = ((src << 1) | (src >> (bits - 1))) & ((1 << bits) - 1)
        return rotated % n

    return pattern


def bit_reversal(topology: Topology) -> PatternFn:
    """REV: reverse the source id's bits."""
    n = topology.num_nodes
    bits = _bits_needed(n)

    def pattern(src: int, rng: random.Random) -> int:
        value = 0
        for b in range(bits):
            if src >> b & 1:
                value |= 1 << (bits - 1 - b)
        return value % n

    return pattern


def _shift_pattern(topology: Topology, shift: int) -> PatternFn:
    n = topology.num_nodes

    def pattern(src: int, rng: random.Random) -> int:
        dst = (src + shift) % n
        return dst if dst != src else (dst + 1) % n

    return pattern


def adversarial_neighbor(topology: Topology) -> PatternFn:
    """ADV1: quarter-die shift — a deterministic permutation that funnels
    every flow across the same few inter-group (or inter-quadrant) links,
    stressing single-link paths.  Identical node-level mapping for every
    topology of the same size, so comparisons are apples-to-apples.
    """
    return _shift_pattern(topology, max(1, topology.num_nodes // 4))


def adversarial_far(topology: Topology) -> PatternFn:
    """ADV2: half-die (tornado) shift — maximises load on multi-link
    paths; the classic worst case for minimally-routed direct networks."""
    return _shift_pattern(topology, max(1, topology.num_nodes // 2))


def asymmetric(topology: Topology) -> PatternFn:
    """Figure 20's pattern: d = (s mod N/2) + N/2 or (s mod N/2), p=1/2."""
    n = topology.num_nodes
    half = n // 2

    def pattern(src: int, rng: random.Random) -> int:
        base = src % half
        dst = base + half if rng.random() < 0.5 else base
        if dst == src:
            dst = (base + half) if dst < half else base
        return dst % n

    return pattern


#: Pattern registry keyed by the paper's acronyms.
PATTERNS: dict[str, Callable[[Topology], PatternFn]] = {
    "RND": uniform_random,
    "SHF": bit_shuffle,
    "REV": bit_reversal,
    "ADV1": adversarial_neighbor,
    "ADV2": adversarial_far,
    "ASYM": asymmetric,
}


def make_pattern(name: str, topology: Topology) -> PatternFn:
    if name not in PATTERNS:
        raise ValueError(f"unknown pattern {name!r}; options: {sorted(PATTERNS)}")
    return PATTERNS[name](topology)


#: Patterns whose destination draw is randomized (everything else is a
#: fixed permutation and needs exactly one flow sample per source).
RANDOMIZED_PATTERNS = ("RND", "ASYM")


class SyntheticSource:
    """Open-loop Bernoulli injection of fixed-size packets.

    Args:
        topology: Target network (node count, groups).
        pattern: Pattern name from :data:`PATTERNS`.
        rate: Offered load in flits/node/cycle.
        packet_flits: Packet size (paper default 6).
        seed: RNG seed for the :meth:`flows` estimate of randomized
            patterns (packet injection uses the simulator's own RNG).
    """

    def __init__(
        self,
        topology: Topology,
        pattern: str,
        rate: float,
        packet_flits: int = 6,
        seed: int = 0,
    ):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.topology = topology
        self.pattern_name = pattern
        self.pattern = make_pattern(pattern, topology)
        self.rate = rate
        self.packet_flits = packet_flits
        self.seed = seed
        self._packet_probability = rate / packet_flits

    def packets_at(self, cycle: int, rng: random.Random):
        """Packet specs for this cycle: (src, dst, size, kind, reply?, reply_size).

        Called once per simulated cycle, so the per-node Bernoulli loop is
        hot: attribute lookups are hoisted out of it (the draw sequence is
        untouched — one ``rng.random()`` per node, in node order).
        """
        probability = self._packet_probability
        pattern = self.pattern
        size = self.packet_flits
        draw = rng.random
        for src in range(self.topology.num_nodes):
            if draw() < probability:
                dst = pattern(src, rng)
                if dst != src:
                    yield (src, dst, size, "data", False, 0)

    def default_flow_samples(self) -> int:
        """Per-source destination samples for :meth:`flows`.

        Deterministic permutations need exactly one sample.  Randomized
        patterns scale with network size: larger networks spread the same
        per-source sample budget over many more channels, so the busiest
        channel's estimate gets noisier unless the budget grows too.
        """
        if self.pattern_name not in RANDOMIZED_PATTERNS:
            return 1
        return max(200, 16 * math.isqrt(self.topology.num_nodes))

    def flows(self, samples: int | None = None) -> dict[tuple[int, int], float]:
        """Expected router-to-router flow matrix (flits/cycle), for the
        analytical saturation model.  Randomized patterns are averaged
        over ``samples`` draws per source (default: size-scaled, seeded
        by ``self.seed``)."""
        topo = self.topology
        flows: dict[tuple[int, int], float] = {}
        rng = random.Random(self.seed)
        samples = samples if samples is not None else self.default_flow_samples()
        for src in range(topo.num_nodes):
            src_router = topo.node_router(src)
            for _ in range(samples):
                dst = self.pattern(src, rng)
                if dst == src:
                    continue
                key = (src_router, topo.node_router(dst))
                flows[key] = flows.get(key, 0.0) + self.rate / samples
        return flows
