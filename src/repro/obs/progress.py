"""The ``--progress`` live status line for campaign commands.

One line, rewritten in place on a TTY-ish stream: done/total points,
cache-hit count, executed count, and an ETA.  The ETA prefers the
calibrated per-spec cost (``cost_fn`` returning predicted seconds for a
pending spec); when no calibration is available it falls back to the
observed pace of the run so far.  Writing goes to stderr by default so
``--json`` output on stdout stays machine-clean.
"""

from __future__ import annotations

import time
from typing import IO, Callable


def format_duration(seconds: float) -> str:
    """Compact human duration: ``12s``, ``3m40s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 10:
        return f"{seconds:.1f}s"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressLine:
    """Accumulates per-point completions and renders one ``\\r`` line.

    ``update(spec, cached)`` is called once per finished point.  When a
    ``cost_fn`` is given it is consulted for every spec (calibrated
    seconds or None); the ETA scales remaining predicted seconds by the
    observed predicted-vs-actual pace, or — with no cost data — by the
    plain measured seconds-per-point so far.
    """

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        cost_fn: Callable[[object], float | None] | None = None,
        label: str = "",
    ):
        import sys

        self.total = max(0, int(total))
        self.stream = stream if stream is not None else sys.stderr
        self.cost_fn = cost_fn
        self.label = label
        self.done = 0
        self.hits = 0
        self.executed = 0
        self.calibrated = False
        self._done_cost = 0.0
        self._pending_cost = 0.0
        self._start: float | None = None
        self._wrote = False

    def add_pending(self, specs: list) -> None:
        """Pre-compute the calibrated cost of the whole work list."""
        if self.cost_fn is None:
            return
        costs = [self.cost_fn(spec) for spec in specs]
        if any(cost is None for cost in costs):
            return
        self._pending_cost = float(sum(costs))
        self.calibrated = self._pending_cost > 0

    def eta_seconds(self) -> float | None:
        if self._start is None or self.done == 0 or self.done >= self.total:
            return None
        elapsed = time.perf_counter() - self._start
        if self.calibrated and self._done_cost > 0:
            pace = elapsed / self._done_cost
            return pace * max(0.0, self._pending_cost - self._done_cost)
        return elapsed / self.done * (self.total - self.done)

    def update(self, spec: object = None, cached: bool = False) -> None:
        if self._start is None:
            self._start = time.perf_counter()
        self.done += 1
        if cached:
            self.hits += 1
        else:
            self.executed += 1
        if self.calibrated and spec is not None and self.cost_fn is not None:
            cost = self.cost_fn(spec)
            if cost is not None:
                self._done_cost += cost
        self._render()

    def _render(self) -> None:
        percent = 100.0 * self.done / self.total if self.total else 100.0
        parts = [
            f"{self.label}{self.done}/{self.total} ({percent:.0f}%)",
            f"hits {self.hits}",
            f"sims {self.executed}",
        ]
        eta = self.eta_seconds()
        if eta is not None:
            kind = "calibrated" if self.calibrated else "pace"
            parts.append(f"eta ~{format_duration(eta)} ({kind})")
        line = "  ".join(parts)
        self.stream.write(f"\r{line:<78}")
        self.stream.flush()
        self._wrote = True

    def finish(self) -> None:
        """Terminate the in-place line (newline) if anything was drawn."""
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False


class TransferLine:
    """Live status line for bulk store transfers (``cache merge/export``).

    The transfer analog of :class:`ProgressLine`: ``advance(keys=,
    nbytes=)`` is called once per copied page, and the line shows keys
    moved, megabytes, and a pace-based ETA against the source's total
    entry count (pass ``total=0`` when the total is unknown — the ETA
    is simply omitted).
    """

    def __init__(self, total: int, stream: IO[str] | None = None, label: str = ""):
        import sys

        self.total = max(0, int(total))
        self.stream = stream if stream is not None else sys.stderr
        self.label = label or "transfer"
        self.keys = 0
        self.nbytes = 0
        self._start: float | None = None
        self._wrote = False

    def eta_seconds(self) -> float | None:
        if self._start is None or self.keys == 0 or self.keys >= self.total:
            return None
        elapsed = time.perf_counter() - self._start
        return elapsed / self.keys * (self.total - self.keys)

    def advance(self, keys: int = 0, nbytes: int = 0) -> None:
        if self._start is None:
            self._start = time.perf_counter()
        self.keys += keys
        self.nbytes += nbytes
        self._render()

    def _render(self) -> None:
        shown = f"{self.keys}/{self.total}" if self.total else str(self.keys)
        parts = [
            f"{self.label}: {shown} keys",
            f"{self.nbytes / 1e6:.1f} MB",
        ]
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta ~{format_duration(eta)}")
        line = "  ".join(parts)
        self.stream.write(f"\r{line:<78}")
        self.stream.flush()
        self._wrote = True

    def finish(self) -> None:
        """Terminate the in-place line (newline) if anything was drawn."""
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False
