"""Process-local metrics registry and stage spans.

Everything here is deliberately dependency-free and deterministic:

* the registry is **process-local** — pool workers each accumulate into
  their own copy and nothing is merged implicitly (campaign-level
  aggregation happens through :class:`~repro.engine.runner.RunStats`,
  which already crosses the process boundary);
* histogram bucket edges are **fixed** (:data:`DEFAULT_BUCKETS`), never
  derived from observed data, so two runs of the same campaign render
  byte-identical ``le=`` label sets;
* :func:`render_prometheus` sorts metric families by name and children
  by label values, so a scrape is a pure function of the recorded
  samples.

The global :data:`REGISTRY` is what ``repro serve`` exposes at
``GET /metrics`` (Prometheus text exposition format 0.0.4) and what the
engine, the store backends, and the perf harness record into.  Tests
that want isolation construct their own :class:`MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

#: Fixed histogram bucket edges (seconds).  Spanning 0.5 ms .. 60 s
#: covers everything from a single SQLite batch to a full sweep stage.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Child:
    """One labelled time series.  Thread-safe via the parent's lock."""

    __slots__ = ("_metric", "_values", "count", "total")

    def __init__(self, metric: _Metric):
        self._metric = metric
        self.total = 0.0
        self.count = 0
        self._values = (
            [0] * (len(metric.buckets) + 1) if metric.kind == "histogram" else None
        )

    def inc(self, amount: float = 1.0) -> None:
        with self._metric.lock:
            self.total += amount
            self.count += 1

    def set(self, value: float) -> None:
        with self._metric.lock:
            self.total = value
            self.count += 1

    def observe(self, value: float) -> None:
        with self._metric.lock:
            self.total += value
            self.count += 1
            for i, edge in enumerate(self._metric.buckets):
                if value <= edge:
                    self._values[i] += 1
                    return
            self._values[-1] += 1

    @property
    def value(self) -> float:
        return self.total

    def bucket_counts(self) -> list[int]:
        """Cumulative per-bucket counts (one extra entry for +Inf)."""
        out, running = [], 0
        for n in self._values:
            running += n
            out.append(running)
        return out


class _Metric:
    """A metric family: name, help text, label names, and its children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self.lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if not labelnames:
            self._children[()] = _Child(self)

    def labels(self, **labels: str) -> _Child:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self.lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _Child(self)
            return child

    # Unlabelled convenience forwarding.
    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def children(self) -> list[tuple[tuple[str, ...], _Child]]:
        with self.lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same family, so modules can declare
    their instruments at import time without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _Metric(name, help_text, kind, tuple(labelnames), buckets)
                self._metrics[name] = metric
            elif metric.kind != kind or metric.labelnames != tuple(labelnames):
                raise ValueError(f"metric {name!r} re-registered with a new shape")
            return metric

    def counter(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ) -> _Metric:
        return self._register(name, help_text, "counter", labelnames, ())

    def gauge(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ) -> _Metric:
        return self._register(name, help_text, "gauge", labelnames, ())

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Metric:
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels: str) -> float:
        """Current value of one series (0.0 if never touched)."""
        metric = self.get(name)
        if metric is None:
            return 0.0
        key = tuple(str(labels[n]) for n in metric.labelnames if n in labels)
        if len(key) != len(metric.labelnames):
            return 0.0
        with metric.lock:
            child = metric._children.get(key)
        return child.value if child else 0.0

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4, deterministic order."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._metrics.items())
        for name, metric in families:
            lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, child in metric.children():
                if metric.kind == "histogram":
                    edges = [*(f"{e:g}" for e in metric.buckets), "+Inf"]
                    for edge, count in zip(edges, child.bucket_counts()):
                        labels = _format_labels(
                            (*metric.labelnames, "le"), (*key, edge)
                        )
                        lines.append(f"{name}_bucket{labels} {count}")
                    labels = _format_labels(metric.labelnames, key)
                    lines.append(f"{name}_sum{labels} {_format_value(child.total)}")
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    labels = _format_labels(metric.labelnames, key)
                    lines.append(f"{name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"


#: The process-global registry every instrument below records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    return (registry or REGISTRY).render()


# ---------------------------------------------------------------------------
# Shared instrument families.  Declared once here; importers record into
# them via the helpers below so metric names stay in one place.
# ---------------------------------------------------------------------------

STAGE_SECONDS = REGISTRY.histogram(
    "repro_stage_seconds",
    "Wall seconds per instrumented stage (span timers)",
    ("stage",),
)
STORE_OPS = REGISTRY.counter(
    "repro_store_ops_total",
    "Cache-backend operations by backend and op",
    ("backend", "op"),
)
STORE_OP_SECONDS = REGISTRY.histogram(
    "repro_store_op_seconds",
    "Cache-backend operation latency",
    ("backend", "op"),
)
STORE_BYTES = REGISTRY.counter(
    "repro_store_bytes_total",
    "Payload bytes moved through cache backends",
    ("backend", "op"),
)
STORE_RETRIES = REGISTRY.counter(
    "repro_store_retries_total",
    "Remote-store retry attempts by endpoint",
    ("endpoint",),
)
STORE_MERGE_KEYS = REGISTRY.counter(
    "repro_store_merge_keys_total",
    "Keys processed by merge_stores by outcome (copied/skipped/conflict)",
    ("outcome",),
)
SERVER_REQUESTS = REGISTRY.counter(
    "repro_server_requests_total",
    "Store-server HTTP requests by endpoint and method",
    ("endpoint", "method"),
)
SERVER_SECONDS = REGISTRY.histogram(
    "repro_server_request_seconds",
    "Store-server request latency by endpoint",
    ("endpoint",),
)
SERVER_ERRORS = REGISTRY.counter(
    "repro_server_errors_total",
    "Store-server error responses by endpoint and status",
    ("endpoint", "status"),
)
CACHE_REQUESTS = REGISTRY.counter(
    "repro_cache_requests_total",
    "Result-cache lookups by outcome (hit/miss)",
    ("outcome",),
)
ENGINE_SPECS = REGISTRY.counter(
    "repro_engine_specs_total",
    "Experiment specs resolved by the engine, by outcome",
    ("outcome",),
)
ENGINE_SPEC_SECONDS = REGISTRY.histogram(
    "repro_engine_spec_seconds",
    "Measured wall seconds per executed experiment spec",
)
QUEUE_DEPTH = REGISTRY.gauge(
    "repro_queue_depth",
    "Work-queue jobs by state (pending/leased/done/quarantined)",
    ("state",),
)
QUEUE_SUBMITTED = REGISTRY.counter(
    "repro_queue_submitted_total",
    "Specs submitted to the work queue, by intake outcome",
    ("outcome",),
)
QUEUE_COMPLETED = REGISTRY.counter(
    "repro_queue_completed_total",
    "Specs completed through the work queue",
)
QUEUE_REQUEUED = REGISTRY.counter(
    "repro_queue_requeued_total",
    "Specs returned to the pending queue, by reason",
    ("reason",),
)
QUEUE_QUARANTINED = REGISTRY.counter(
    "repro_queue_quarantined_total",
    "Specs parked after repeated worker failures",
)
QUEUE_LEASES = REGISTRY.counter(
    "repro_queue_leases_total",
    "Leases granted to queue workers",
)
QUEUE_HEARTBEATS = REGISTRY.counter(
    "repro_queue_heartbeats_total",
    "Lease heartbeats received, by outcome (ok/unknown)",
    ("outcome",),
)


# ---------------------------------------------------------------------------
# Spans — lightweight stage timers with thread-local nesting.
# ---------------------------------------------------------------------------

_SPAN_STACK = threading.local()


def _stack() -> list[str]:
    stack = getattr(_SPAN_STACK, "names", None)
    if stack is None:
        stack = _SPAN_STACK.names = []
    return stack


def span_stack() -> tuple[str, ...]:
    """Names of the spans currently open on this thread, outermost first."""
    return tuple(_stack())


class Span:
    """Times a ``with`` block into ``repro_stage_seconds{stage=<name>}``.

    After exit, ``.seconds`` holds the measured wall time and ``.path``
    the dotted nesting path active when the span was opened.
    """

    def __init__(self, name: str, registry: MetricsRegistry | None = None):
        self.name = name
        self.seconds = 0.0
        self.path = name
        self._registry = registry
        self._start = 0.0

    def __enter__(self) -> Span:
        stack = _stack()
        self.path = ".".join([*stack, self.name]) if stack else self.name
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        histogram = (
            STAGE_SECONDS
            if self._registry is None
            else self._registry.histogram(
                "repro_stage_seconds", STAGE_SECONDS.help, ("stage",)
            )
        )
        histogram.labels(stage=self.path).observe(self.seconds)


def span(name: str, registry: MetricsRegistry | None = None) -> Span:
    """``with span("engine.dispatch") as sp: ...`` — see :class:`Span`."""
    return Span(name, registry=registry)


@contextmanager
def store_op(backend: str, op: str) -> Iterator["_StoreOp"]:
    """Instrument one cache-backend operation: op count, latency, bytes.

    The yielded handle's :meth:`~_StoreOp.add_bytes` accumulates payload
    bytes into ``repro_store_bytes_total{backend,op}``.
    """
    handle = _StoreOp()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        STORE_OPS.labels(backend=backend, op=op).inc()
        STORE_OP_SECONDS.labels(backend=backend, op=op).observe(
            time.perf_counter() - start
        )
        if handle.bytes:
            STORE_BYTES.labels(backend=backend, op=op).inc(handle.bytes)


class _StoreOp:
    __slots__ = ("bytes",)

    def __init__(self) -> None:
        self.bytes = 0

    def add_bytes(self, count: int) -> None:
        self.bytes += count
