"""The unified ``repro.*`` logger hierarchy.

Every module that emits diagnostics gets its logger through
:func:`get_logger`, which namespaces under ``repro.`` — e.g. the store
auto-GC notice logs as ``repro.engine.store`` and the HTTP server as
``repro.serve``.  Nothing is printed until :func:`configure_logging`
installs a handler; the CLI entry point calls it once, so importing
``repro`` as a library stays silent (stdlib logging etiquette).

Environment knobs (read by :func:`configure_logging` when the caller
passes no explicit override):

``REPRO_LOG``
    Level name or number (``debug``, ``info``, ``warning``, ...).
    Default ``info`` — surfaces the auto-GC notice and server request
    lines without drowning campaign output.
``REPRO_LOG_FORMAT``
    ``text`` (default) or ``json`` — JSON lines with ``ts``, ``level``,
    ``logger``, ``msg`` keys, one object per line, for log shippers.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

LOG_ENV = "REPRO_LOG"
LOG_FORMAT_ENV = "REPRO_LOG_FORMAT"

_ROOT = "repro"
#: Marker attribute so reconfiguration replaces our handler, not others.
_HANDLER_TAG = "_repro_obs_handler"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg (+ exc)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "iso": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro.`` hierarchy (``get_logger("serve")`` →
    ``repro.serve``; an already-qualified ``repro...`` name passes
    through; empty name → the ``repro`` root)."""
    if not name:
        return logging.getLogger(_ROOT)
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def _resolve_level(level: str | int | None) -> int:
    import os

    if level is None:
        level = os.environ.get(LOG_ENV, "info")
    if isinstance(level, int):
        return level
    text = str(level).strip()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text.upper())
    if isinstance(resolved, int):
        return resolved
    raise ValueError(f"unknown {LOG_ENV} level {level!r}")


def configure_logging(
    level: str | int | None = None,
    fmt: str | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install (or replace) the single handler on the ``repro`` root.

    Arguments override the ``REPRO_LOG`` / ``REPRO_LOG_FORMAT``
    environment knobs; idempotent, so tests and the CLI can call it
    repeatedly with different settings.  Returns the root logger.
    """
    import os

    if fmt is None:
        fmt = os.environ.get(LOG_FORMAT_ENV, "text")
    fmt = fmt.strip().lower()
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown {LOG_FORMAT_ENV} value {fmt!r}")

    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)

    handler = logging.StreamHandler(stream or sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    if fmt == "json":
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(_resolve_level(level))
    # Propagation stays on: the stdlib root logger has no handlers in
    # CLI use (so nothing prints twice), while capture harnesses that
    # hook the root — pytest's caplog above all — keep seeing repro
    # records after the CLI has configured itself.
    return root
