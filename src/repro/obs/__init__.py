"""Campaign observability: metrics, spans, logging, calibration, progress.

``repro.obs`` is the cross-cutting telemetry layer under every hot path
in the repo.  It deliberately imports nothing from :mod:`repro.engine`
(the engine imports *it*), so any module — store backends, the runner,
the HTTP server, the perf harness — can record into one process-local
registry without import cycles:

* :mod:`~repro.obs.metrics` — a process-local, thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms, rendered in Prometheus text exposition format
  (``repro serve`` exposes it at ``GET /metrics``), plus lightweight
  :func:`span` stage timers with thread-local nesting;
* :mod:`~repro.obs.logs` — one ``repro.*`` logger hierarchy behind
  :func:`configure_logging` (text or JSON lines, selected by the
  ``REPRO_LOG`` / ``REPRO_LOG_FORMAT`` environment knobs);
* :mod:`~repro.obs.calibration` — the measured-cost table
  (:class:`CostCalibration`): per-spec wall seconds observed by the
  engine accumulate into buckets keyed by (network size, simulated
  cycles), so ``predicted_cost`` and ``--shard-balance cost`` converge
  toward real wall times instead of the load×size×cycles heuristic;
  a fresh checkout seeds the table from the committed perf baseline
  (``benchmarks/BENCH_sim_core.json``);
* :mod:`~repro.obs.progress` — the ``--progress`` live line
  (done/total, hit rate, ETA from calibrated cost).
"""

from .calibration import (
    CALIBRATION_ENV,
    COST_BASE_ACTIVITY,
    CostCalibration,
    bucket_key,
    default_calibration,
    default_calibration_path,
    seed_from_perf_baseline,
)
from .logs import (
    LOG_ENV,
    LOG_FORMAT_ENV,
    configure_logging,
    get_logger,
)
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    Span,
    get_registry,
    render_prometheus,
    span,
    span_stack,
    store_op,
)
from .progress import ProgressLine, TransferLine, format_duration

__all__ = [
    "CALIBRATION_ENV",
    "COST_BASE_ACTIVITY",
    "DEFAULT_BUCKETS",
    "LOG_ENV",
    "LOG_FORMAT_ENV",
    "REGISTRY",
    "CostCalibration",
    "MetricsRegistry",
    "ProgressLine",
    "Span",
    "TransferLine",
    "bucket_key",
    "configure_logging",
    "default_calibration",
    "default_calibration_path",
    "format_duration",
    "get_logger",
    "get_registry",
    "render_prometheus",
    "seed_from_perf_baseline",
    "span",
    "span_stack",
    "store_op",
]
