"""Measured-cost calibration for ``--shard-balance cost`` and ETAs.

``predicted_cost`` (engine/spec.py) estimates a spec's wall time in
abstract units: ``cycles x num_nodes x (COST_BASE_ACTIVITY + load)``.
That heuristic ranks specs correctly but its units are meaningless, so
shard ETAs and the LPT partition quality are only as good as the model.
This module closes the ROADMAP loop: every executed spec's **measured**
wall seconds feed an EWMA ratio table keyed by :func:`bucket_key`
(network size x power-of-two cycle count).  A calibrated cost is then

    ``seconds = ratio[bucket] x cycles x (COST_BASE_ACTIVITY + load)``

i.e. the heuristic's *shape* within a bucket scaled to real seconds.
Buckets fold ``num_nodes`` into the ratio (node count is constant
within a bucket), which sidesteps the question of how wall time really
scales with network size — each size learns its own scale.

The table persists as JSON next to the cache (``.repro_calibration.json``
by default, ``REPRO_CALIBRATION`` to relocate).  A fresh checkout with
no table auto-seeds in memory from the committed perf baseline
(``benchmarks/BENCH_sim_core.json``) so first-run ETAs are sane.

Determinism caveat: cost-balanced **shard partitions are only
reproducible across hosts that share the same calibration table** (or
that both have none).  CI's shard jobs run with a shared checkout and
no local table, so they stay on the seeded/heuristic path.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

CALIBRATION_ENV = "REPRO_CALIBRATION"
DEFAULT_CALIBRATION_FILENAME = ".repro_calibration.json"
CALIBRATION_SCHEMA = 1

#: Baseline per-node activity of an idle-ish network — shared with
#: ``predicted_cost`` so heuristic and calibrated costs use one shape.
COST_BASE_ACTIVITY = 0.25

#: EWMA weight of the newest observation; 0.3 adapts within a few
#: campaigns without letting one noisy point whipsaw the table.
EWMA_ALPHA = 0.3


def default_calibration_path() -> Path:
    """``$REPRO_CALIBRATION`` or ``.repro_calibration.json`` in cwd."""
    override = os.environ.get(CALIBRATION_ENV)
    if override:
        return Path(override).expanduser()
    return Path(DEFAULT_CALIBRATION_FILENAME)


def bucket_key(num_nodes: int, cycles: int) -> str:
    """Calibration bucket for a spec: network size and the nearest
    power of two of its simulated-cycle budget (warmup+measure+drain).

    Cycle counts inside one figure campaign are identical, and across
    campaigns they cluster; rounding to a power of two keeps the table
    tiny while separating quick smoke points from deep drains.
    """
    cycles = max(1, int(cycles))
    return f"n{int(num_nodes)}|c{2 ** round(math.log2(cycles))}"


def _unit_cost(cycles: int, load: float) -> float:
    return float(cycles) * (COST_BASE_ACTIVITY + float(load))


class CostCalibration:
    """EWMA table of measured-seconds-per-heuristic-unit by bucket."""

    def __init__(self, path: Path | None = None):
        self.path = path
        self.buckets: dict[str, dict[str, float]] = {}
        self.dirty = False

    # -- persistence --------------------------------------------------

    @classmethod
    def load(cls, path: Path | None = None) -> CostCalibration:
        """Read the table at ``path`` (default resolved path); a missing
        or unreadable file yields an empty table, never an error."""
        resolved = path or default_calibration_path()
        table = cls(resolved)
        try:
            payload = json.loads(resolved.read_text())
        except (OSError, ValueError):
            return table
        if payload.get("schema") != CALIBRATION_SCHEMA:
            return table
        for key, entry in payload.get("buckets", {}).items():
            try:
                ratio = float(entry["ratio"])
                samples = int(entry.get("samples", 1))
            except (KeyError, TypeError, ValueError):
                continue
            if ratio > 0:
                table.buckets[key] = {"ratio": ratio, "samples": samples}
        return table

    def save(self, path: Path | None = None) -> Path:
        resolved = path or self.path or default_calibration_path()
        payload = {
            "schema": CALIBRATION_SCHEMA,
            "buckets": {
                key: {
                    "ratio": entry["ratio"],
                    "samples": int(entry["samples"]),
                }
                for key, entry in sorted(self.buckets.items())
            },
        }
        resolved.parent.mkdir(parents=True, exist_ok=True)
        resolved.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        self.dirty = False
        return resolved

    # -- recording / querying -----------------------------------------

    def observe(
        self, num_nodes: int, cycles: int, load: float, seconds: float
    ) -> None:
        """Fold one measured spec execution into its bucket's EWMA."""
        unit = _unit_cost(cycles, load)
        if unit <= 0 or seconds <= 0:
            return
        ratio = seconds / unit
        key = bucket_key(num_nodes, cycles)
        entry = self.buckets.get(key)
        if entry is None:
            self.buckets[key] = {"ratio": ratio, "samples": 1}
        else:
            entry["ratio"] += EWMA_ALPHA * (ratio - entry["ratio"])
            entry["samples"] += 1
        self.dirty = True

    def seconds_for(
        self, num_nodes: int, cycles: int, load: float
    ) -> float | None:
        """Calibrated wall-seconds estimate, or None if the bucket has
        never been observed (callers fall back to the heuristic)."""
        entry = self.buckets.get(bucket_key(num_nodes, cycles))
        if entry is None:
            return None
        return entry["ratio"] * _unit_cost(cycles, load)

    def __len__(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostCalibration(path={self.path}, buckets={len(self)})"


def seed_from_perf_baseline(
    calibration: CostCalibration, baseline_path: Path | None = None
) -> int:
    """Seed ``calibration`` from the committed perf baseline.

    Each baseline case carries measured ``seconds`` for a known
    (topology, load, cycle-budget) point; replaying them through
    :meth:`CostCalibration.observe` gives a fresh checkout real-seconds
    ETAs before any campaign has run.  Returns the number of cases
    folded in.  Seeding does not mark the table dirty — the baseline is
    derivable, so there is nothing worth persisting yet.
    """
    from ..perf import BASELINE_PATH, WORKLOADS
    from ..topos import make_network

    was_dirty = calibration.dirty
    path = baseline_path or BASELINE_PATH
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return 0
    nodes_by_symbol: dict[str, int] = {}
    seeded = 0
    for mode, report in sorted(payload.get("modes", {}).items()):
        cases = WORKLOADS.get(mode, {})
        for name, measured in sorted(report.get("cases", {}).items()):
            case = cases.get(name)
            if case is None:
                continue
            symbol, _pattern, load, _cfg, _seed, warmup, measure, drain = case
            num_nodes = nodes_by_symbol.get(symbol)
            if num_nodes is None:
                num_nodes = make_network(symbol).num_nodes
                nodes_by_symbol[symbol] = num_nodes
            seconds = measured.get("seconds")
            if not seconds:
                continue
            calibration.observe(
                num_nodes, warmup + measure + drain, load, float(seconds)
            )
            seeded += 1
    calibration.dirty = was_dirty
    return seeded


_DEFAULT: dict[str, CostCalibration] = {}


def default_calibration(refresh: bool = False) -> CostCalibration:
    """The process-wide calibration table at the resolved default path.

    Loaded once per distinct path (``REPRO_CALIBRATION`` aware, so tests
    that repoint the env get fresh tables); when the file does not exist
    the table is seeded in memory from the committed perf baseline.
    """
    key = str(default_calibration_path().resolve())
    if refresh or key not in _DEFAULT:
        table = CostCalibration.load(Path(key))
        if not table.buckets:
            seed_from_perf_baseline(table)
        _DEFAULT[key] = table
    return _DEFAULT[key]
