"""Root test configuration: give each pytest session private state files.

The experiment engine's default cache (``.repro_cache/``) persists
across runs — the right default for interactive figure reproduction,
but wrong for the test suite: a simulator change made without a
``SPEC_VERSION`` bump would let tests assert against stale cached
results from a previous run.  Unless the caller explicitly configured
the cache (``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``), point it at a
session-private temp directory: caching and the engine path stay fully
exercised (figures share identical points within the run) with no
cross-run staleness.

The measured-cost calibration table gets the same treatment: CLI tests
run ``python -m repro`` commands that would otherwise write
``.repro_calibration.json`` into the checkout (and read timings from
previous runs), so ``REPRO_CALIBRATION`` is repointed at a
session-private path unless the caller already set it.
"""

import os
import tempfile


def pytest_configure(config):
    if not (os.environ.get("REPRO_CACHE_DIR") or os.environ.get("REPRO_NO_CACHE")):
        os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-cache-")
    if not os.environ.get("REPRO_CALIBRATION"):
        os.environ["REPRO_CALIBRATION"] = os.path.join(
            tempfile.mkdtemp(prefix="repro-calibration-"), "calibration.json"
        )
