"""Root test configuration: give each pytest session a private result cache.

The experiment engine's default cache (``.repro_cache/``) persists
across runs — the right default for interactive figure reproduction,
but wrong for the test suite: a simulator change made without a
``SPEC_VERSION`` bump would let tests assert against stale cached
results from a previous run.  Unless the caller explicitly configured
the cache (``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``), point it at a
session-private temp directory: caching and the engine path stay fully
exercised (figures share identical points within the run) with no
cross-run staleness.
"""

import os
import tempfile


def pytest_configure(config):
    if not (os.environ.get("REPRO_CACHE_DIR") or os.environ.get("REPRO_NO_CACHE")):
        os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-cache-")
