"""Tests for the cycle-accurate simulator: delivery, ordering, flow control."""

import pytest

from dataclasses import replace

from repro.routing import StaticMinimalRouting, UGALRouting
from repro.sim import NoCSimulator, SimConfig, cbr, eb_var, el_links, link_latency
from repro.sim.links import CreditLink, ElasticLink
from repro.topos import make_network
from repro.traffic import SyntheticSource


def drain(sim, max_cycles=2000):
    """Step until all live packets are delivered; returns them."""
    delivered = []
    for _ in range(max_cycles):
        delivered += sim.step()
        sim.issue_replies()
        if not sim._live_packets:
            return delivered
    raise AssertionError(f"{len(sim._live_packets)} packets stuck after {max_cycles} cycles")


class TestLinkModels:
    def test_link_latency_formula(self):
        assert link_latency(0) == 1
        assert link_latency(1) == 1
        assert link_latency(5) == 5
        assert link_latency(5, hops_per_cycle=9) == 1
        assert link_latency(10, hops_per_cycle=9) == 2

    def test_credit_link_delivers_in_order_after_latency(self):
        link = CreditLink(3)
        link.send_flit("a", 0, now=10)
        link.send_flit("b", 0, now=11)
        assert link.arrivals(12) == []
        assert link.arrivals(13) == [("a", 0)]
        assert link.arrivals(14) == [("b", 0)]

    def test_credit_link_credits_round_trip(self):
        link = CreditLink(2)
        link.send_credit(1, now=5)
        assert link.credit_arrivals(6) == []
        assert link.credit_arrivals(7) == [1]

    def test_credit_link_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            CreditLink(0)

    def test_elastic_link_advances_one_per_stage(self):
        link = ElasticLink(latency=2, num_vcs=2)
        link.push("x", 0)
        assert not link.can_accept(0)
        assert link.can_accept(1)
        out = link.advance(lambda vc: True)
        assert out == []  # stage 0 -> stage 1
        out = link.advance(lambda vc: True)
        assert out == [("x", 0)]

    def test_elastic_link_blocks_on_downstream(self):
        link = ElasticLink(latency=1, num_vcs=1)
        link.push("x", 0)
        assert link.advance(lambda vc: False) == []
        assert link.in_flight == 1
        assert link.advance(lambda vc: True) == [("x", 0)]

    def test_elastic_double_push_rejected(self):
        link = ElasticLink(latency=2, num_vcs=1)
        link.push("x", 0)
        with pytest.raises(RuntimeError):
            link.push("y", 0)


class TestSinglePacket:
    def test_packet_reaches_destination(self):
        topo = make_network("sn200")
        sim = NoCSimulator(topo)
        packet = sim.inject_packet(0, 100, size=6)
        delivered = drain(sim)
        assert delivered == [packet]
        assert packet.ejected > packet.created

    def test_same_router_delivery(self):
        topo = make_network("sn200")  # p=4: nodes 0..3 share router 0
        sim = NoCSimulator(topo)
        packet = sim.inject_packet(0, 1, size=6)
        drain(sim)
        assert packet.ejected > 0
        assert packet.route.hops == 0

    def test_latency_accounts_serialization(self):
        """A 6-flit packet's tail trails its head by at least 5 cycles."""
        topo = make_network("sn200")
        sim = NoCSimulator(topo)
        p1 = sim.inject_packet(0, 100, size=1)
        drain(sim)
        sim2 = NoCSimulator(topo)
        p6 = sim2.inject_packet(0, 100, size=6)
        drain(sim2)
        assert p6.latency >= p1.latency + 5

    def test_zero_load_latency_scales_with_distance(self):
        topo = make_network("sn200")
        routing = StaticMinimalRouting(topo, num_vcs=2)
        one_hop = next(
            n for n in range(4, topo.num_nodes) if routing.route(0, topo.node_router(n)).hops == 1
        )
        two_hop = next(
            n for n in range(4, topo.num_nodes) if routing.route(0, topo.node_router(n)).hops == 2
        )
        sim1 = NoCSimulator(topo)
        pa = sim1.inject_packet(0, one_hop, 6)
        drain(sim1)
        sim2 = NoCSimulator(topo)
        pb = sim2.inject_packet(0, two_hop, 6)
        drain(sim2)
        assert pb.latency > pa.latency

    def test_smart_reduces_latency(self):
        topo = make_network("sn200")
        lat = {}
        for smart in (False, True):
            sim = NoCSimulator(topo, SimConfig().with_smart(smart))
            packet = sim.inject_packet(0, 196, 6)
            drain(sim)
            lat[smart] = packet.latency
        assert lat[True] < lat[False]


class TestFlitOrdering:
    @pytest.mark.parametrize("make_config", [SimConfig, eb_var, el_links, lambda: cbr(12)])
    def test_all_flits_arrive_in_order(self, make_config):
        """Wormhole + VC ownership must preserve per-packet flit order."""
        topo = make_network("sn54")
        sim = NoCSimulator(topo, make_config())
        arrivals = {}
        original = sim._drain_ejection

        def recording_drain():
            finished = original()
            return finished

        packets = []
        rng_pairs = [(i, (i * 17 + 5) % topo.num_nodes) for i in range(0, 54, 2)]
        for src, dst in rng_pairs:
            if src != dst:
                packets.append(sim.inject_packet(src, dst, 6))
        # Track ejection order via the eject pipe.
        seen: dict[int, list[int]] = {}
        for _ in range(3000):
            for _, flit in list(sim.eject_pipe):
                pass
            before = list(sim.eject_pipe)
            sim.step()
            for _, flit in before:
                seen.setdefault(flit.packet.pid, []).append(flit.index)
            if not sim._live_packets:
                break
        for pid, indices in seen.items():
            assert indices == sorted(indices), f"packet {pid} flits out of order"

    def test_many_packets_all_delivered(self):
        topo = make_network("sn200")
        sim = NoCSimulator(topo)
        packets = []
        for i in range(100):
            src, dst = (i * 3) % 200, (i * 7 + 50) % 200
            if src != dst:
                packets.append(sim.inject_packet(src, dst, 6))
        delivered = drain(sim, 4000)
        assert len(delivered) == len(packets)


class TestDeadlockFreedom:
    """Sustained high load must never wedge the network."""

    @pytest.mark.parametrize("symbol", ["sn200", "fbf3", "pfbf3", "t2d4", "cm4", "sn54"])
    def test_high_load_drains(self, symbol):
        topo = make_network(symbol)
        sim = NoCSimulator(topo, seed=7)
        source = SyntheticSource(topo, "RND", rate=0.5)
        for _ in range(400):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
        drain(sim, max_cycles=30000)

    @pytest.mark.parametrize("make_config", [eb_var, el_links, lambda: cbr(6), lambda: cbr(40)])
    def test_high_load_drains_all_buffering(self, make_config):
        topo = make_network("sn200")
        sim = NoCSimulator(topo, make_config(), seed=3)
        source = SyntheticSource(topo, "ADV1", rate=0.4)
        for _ in range(400):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
        drain(sim, max_cycles=30000)

    def test_ugal_high_load_drains(self):
        topo = make_network("sn200")
        routing = UGALRouting(topo, num_vcs=4, seed=1)
        sim = NoCSimulator(topo, SimConfig(num_vcs=4), routing=routing, seed=2)
        source = SyntheticSource(topo, "ASYM", rate=0.4)
        for _ in range(300):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
        drain(sim, max_cycles=30000)


class TestConservation:
    def test_flits_neither_created_nor_lost(self):
        topo = make_network("sn54")
        sim = NoCSimulator(topo, seed=11)
        source = SyntheticSource(topo, "RND", rate=0.2)
        injected_flits = 0
        for _ in range(300):
            for spec in source.packets_at(sim.now, sim.rng):
                packet = sim.inject_packet(*spec)
                injected_flits += packet.size
            sim.step()
        delivered = drain(sim)
        assert sum(p.size for p in delivered) <= injected_flits
        # Everything injected eventually ejects.
        total_delivered = sum(p.size for p in delivered)
        in_first_phase = injected_flits - total_delivered
        assert in_first_phase >= 0

    def test_throughput_matches_offered_below_saturation(self):
        topo = make_network("sn200")
        sim = NoCSimulator(topo, seed=5)
        res = sim.run(SyntheticSource(topo, "RND", 0.08), warmup=200, measure=600, drain=1200)
        assert res.throughput == pytest.approx(0.08, rel=0.15)
        assert not res.saturated


class TestCentralBuffer:
    def test_cb_reservation_is_atomic(self):
        topo = make_network("sn200")
        sim = NoCSimulator(topo, cbr(8), seed=1)
        source = SyntheticSource(topo, "ADV1", rate=0.35)
        for _ in range(300):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
            for router in sim.routers:
                assert 0 <= router.cb_free <= 8
        drain(sim, 20000)
        for router in sim.routers:
            assert router.cb_free == 8  # all reservations returned
            assert not router.cb_committed
            assert not router.cb_stream_owner

    def test_bypass_at_low_load_matches_edge_latency(self):
        """At zero load the CBR bypass path costs the same as an edge router."""
        topo = make_network("sn200")
        sim_eb = NoCSimulator(topo, SimConfig())
        p_eb = sim_eb.inject_packet(0, 100, 6)
        drain(sim_eb)
        sim_cb = NoCSimulator(topo, cbr(20))
        p_cb = sim_cb.inject_packet(0, 100, 6)
        drain(sim_cb)
        assert abs(p_cb.latency - p_eb.latency) <= 2

    def test_cb_never_used_without_config(self):
        topo = make_network("sn200")
        sim = NoCSimulator(topo, SimConfig(), seed=2)
        source = SyntheticSource(topo, "RND", rate=0.3)
        for _ in range(200):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
        assert all(not r.cb_queues for r in sim.routers)


class TestReplies:
    def test_read_generates_reply(self):
        topo = make_network("sn200")
        sim = NoCSimulator(topo)
        sim.inject_packet(0, 100, 2, kind="read", wants_reply=True, reply_size=6)
        replies = []
        for _ in range(500):
            sim.step()
            replies += sim.issue_replies()
            if replies and not sim._live_packets:
                break
        assert len(replies) == 1
        reply = replies[0]
        assert reply.src == 100 and reply.dst == 0
        assert reply.size == 6
        assert reply.ejected > 0


class TestSimResult:
    def test_empty_latency_is_nan(self):
        from repro.sim.network import SimResult

        res = SimResult(0.1, 100, 0, 0, 0, [], 200, 100, 0)
        assert res.avg_latency != res.avg_latency  # NaN
        assert not res.saturated

    def test_p99(self):
        from repro.sim.network import SimResult

        res = SimResult(0.1, 100, 100, 100, 600, list(range(100)), 200, 100, 0)
        assert res.p99_latency >= 98

    def test_repeated_percentile_access_does_not_resort(self):
        """p99 sorts once; further accesses reuse the cached order."""
        from repro.sim.network import SimResult

        res = SimResult(0.1, 100, 100, 100, 600, [5, 1, 9, 3] * 30, 200, 100, 0)
        first = res.sorted_latencies
        assert first == sorted(res.latencies)
        assert res.sorted_latencies is first  # identity: no second sort
        p99 = res.p99_latency
        assert res.p99_latency == p99
        # The latency list is treated as immutable once the result exists:
        # a later mutation must not trigger a re-sort on access.
        res.latencies.append(10**6)
        assert res.sorted_latencies is first

    def test_routing_topology_mismatch_rejected(self):
        sn = make_network("sn200")
        other = make_network("sn54")
        routing = StaticMinimalRouting(other, num_vcs=2)
        with pytest.raises(ValueError):
            NoCSimulator(sn, routing=routing)


class TestIncrementalCounters:
    """Counters that replaced per-call scans must track the scanned truth."""

    def test_elastic_in_flight_matches_stage_scan(self):
        link = ElasticLink(latency=3, num_vcs=2)
        link.push("a", 0)
        link.push("b", 1)
        for blocked in (False, True, False, True, False, False, False):
            assert link.in_flight == sum(len(s) for s in link.stages)
            link.advance(lambda vc: not blocked)
        assert link.in_flight == 0

    def test_injection_backlog_max_matches_list_scan(self):
        topo = make_network("sn54")
        sim = NoCSimulator(topo, seed=9)
        source = SyntheticSource(topo, "RND", rate=0.25)
        for _ in range(120):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
            assert sim._current_backlog() == max(sim.injection_backlog)

    def test_router_occupancy_counters_consistent(self):
        topo = make_network("sn54")
        sim = NoCSimulator(topo, seed=4)
        source = SyntheticSource(topo, "RND", rate=0.3)
        for _ in range(150):
            for spec in source.packets_at(sim.now, sim.rng):
                sim.inject_packet(*spec)
            sim.step()
            for router in sim.routers:
                occupied = {u.index for u in router.in_units if u.buffer}
                assert router.occupied == occupied
                assert router.buffered == sum(
                    len(u.buffer) for u in router.in_units
                )
                if router.buffered or router.cb_flits:
                    assert router.index in sim._active_routers


class TestFastForward:
    """`now` jumps are a pure optimization: toggling them off must not
    change a single byte of the result."""

    @pytest.mark.parametrize("make_config", [SimConfig, eb_var, el_links, lambda: cbr(12)])
    @pytest.mark.parametrize("rate", [0.004, 0.02, 0.12])
    def test_fast_forward_toggle_is_bit_identical(self, make_config, rate):
        topo = make_network("sn54")
        results = {}
        for fast_forward in (True, False):
            config = replace(make_config(), fast_forward=fast_forward)
            sim = NoCSimulator(topo, config, seed=5)
            source = SyntheticSource(topo, "RND", rate)
            results[fast_forward] = sim.run(
                source, warmup=120, measure=300, drain=700
            ).to_dict()
        assert results[True] == results[False]

    def test_fast_forward_skips_cycles_in_bulk(self):
        """At near-zero load the run loop must visit far fewer iterations
        than simulated cycles (the whole point of fast-forward)."""
        topo = make_network("sn54")
        sim = NoCSimulator(topo, SimConfig(), seed=5)
        steps = 0
        original = sim.step

        def counting_step():
            nonlocal steps
            steps += 1
            return original()

        sim.step = counting_step
        result = sim.run(
            SyntheticSource(topo, "RND", 0.002), warmup=200, measure=400, drain=800
        )
        assert result.cycles > steps  # jumped over idle stretches
