"""Observability layer: metrics registry, spans, Prometheus rendering,
logging knobs, measured-cost calibration, progress line, /metrics scrape,
and engine stage timing."""

import io
import json
import logging
import urllib.request

import pytest

from repro.engine import (
    ExperimentEngine,
    ExperimentSpec,
    RemoteStore,
    ResultCache,
    SqlitePackStore,
    StoreServer,
    estimate_campaign_seconds,
    shard_specs,
)
from repro.engine.spec import iter_spec_keys, predicted_cost
from repro.obs import (
    CostCalibration,
    ProgressLine,
    bucket_key,
    configure_logging,
    format_duration,
    get_logger,
    seed_from_perf_baseline,
    span,
    span_stack,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, Span

FAST = dict(warmup=100, measure=200, drain=300)
SLOW = dict(warmup=300, measure=800, drain=1500)
NODES = {"sn54": 54}


def fast_spec(load=0.05, **overrides) -> ExperimentSpec:
    kw = dict(topology="sn54", pattern="RND", load=load, **FAST)
    kw.update(overrides)
    return ExperimentSpec.synthetic(
        kw.pop("topology"), kw.pop("pattern"), kw.pop("load"), **kw
    )


class TestRegistry:
    def test_counter_gauge_histogram_values(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "c", ("who",))
        counter.labels(who="a").inc()
        counter.labels(who="a").inc(2)
        assert reg.value("c_total", who="a") == 3
        assert reg.value("c_total", who="never") == 0.0
        gauge = reg.gauge("g", "g")
        gauge.set(7.5)
        gauge.set(1.25)
        assert reg.value("g") == 1.25
        hist = reg.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(99.0)
        child = hist.labels()
        assert child.count == 3
        assert child.bucket_counts() == [1, 2, 3]

    def test_get_or_create_is_idempotent_but_shape_checked(self):
        reg = MetricsRegistry()
        first = reg.counter("x_total", "x", ("a",))
        assert reg.counter("x_total", "x", ("a",)) is first
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", ("b",))
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x", ("a",))

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        counter = reg.counter("y_total", "y", ("a",))
        with pytest.raises(ValueError):
            counter.labels(b="1")

    def test_prometheus_render_golden(self):
        reg = MetricsRegistry()
        counter = reg.counter("t_total", "things counted", ("who",))
        counter.labels(who="x").inc()
        counter.labels(who="y").inc(2)
        gauge = reg.gauge("g", "a gauge")
        gauge.set(1.5)
        hist = reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        expected = "\n".join(
            [
                "# HELP g a gauge",
                "# TYPE g gauge",
                "g 1.5",
                "# HELP h_seconds a histogram",
                "# TYPE h_seconds histogram",
                'h_seconds_bucket{le="0.1"} 1',
                'h_seconds_bucket{le="1"} 1',
                'h_seconds_bucket{le="+Inf"} 2',
                "h_seconds_sum 5.05",
                "h_seconds_count 2",
                "# HELP t_total things counted",
                "# TYPE t_total counter",
                't_total{who="x"} 1',
                't_total{who="y"} 2',
                "",
            ]
        )
        assert reg.render() == expected
        # Deterministic: rendering twice is byte-identical.
        assert reg.render() == expected

    def test_label_escaping(self):
        reg = MetricsRegistry()
        counter = reg.counter("e_total", "e", ("path",))
        counter.labels(path='a"b\\c\nd').inc()
        rendered = reg.render()
        assert 'e_total{path="a\\"b\\\\c\\nd"} 1' in rendered

    def test_empty_family_still_renders_help_and_type(self):
        reg = MetricsRegistry()
        reg.counter("never_total", "untouched", ("a",))
        rendered = reg.render()
        assert "# HELP never_total untouched" in rendered
        assert "# TYPE never_total counter" in rendered


class TestSpans:
    def test_nesting_builds_dotted_paths(self):
        reg = MetricsRegistry()
        with Span("outer", registry=reg) as outer:
            assert span_stack() == ("outer",)
            with Span("inner", registry=reg) as inner:
                assert span_stack() == ("outer", "inner")
        assert span_stack() == ()
        assert outer.path == "outer"
        assert inner.path == "outer.inner"
        assert outer.seconds >= inner.seconds >= 0.0
        stage = reg.get("repro_stage_seconds")
        labels = {key for key, _ in stage.children()}
        assert ("outer",) in labels and ("outer.inner",) in labels

    def test_span_helper_records_into_global_registry(self):
        before = REGISTRY.value("repro_stage_seconds", stage="test.span")
        with span("test.span"):
            pass
        # Histograms accumulate the sum; a fresh observation keeps it >= 0
        # and bumps the count.
        child = REGISTRY.get("repro_stage_seconds").labels(stage="test.span")
        assert child.count >= 1
        assert child.total >= before


class TestLogging:
    def test_namespacing(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("repro.engine.store").name == "repro.engine.store"
        assert get_logger().name == "repro"

    def test_text_and_json_formats(self):
        stream = io.StringIO()
        configure_logging(level="info", fmt="text", stream=stream)
        get_logger("t").info("hello %s", "world")
        assert "I repro.t: hello world" in stream.getvalue()

        stream = io.StringIO()
        configure_logging(level="debug", fmt="json", stream=stream)
        get_logger("t").debug("structured")
        record = json.loads(stream.getvalue())
        assert record["level"] == "debug"
        assert record["logger"] == "repro.t"
        assert record["msg"] == "structured"
        assert "ts" in record and "iso" in record

    def test_reconfigure_replaces_only_our_handler(self):
        configure_logging(stream=io.StringIO())
        configure_logging(stream=io.StringIO())
        root = logging.getLogger("repro")
        tagged = [
            h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(tagged) == 1
        # Propagation must survive configuration: pytest's caplog (and
        # any embedder hooking the root logger) captures repro records
        # through it.
        assert root.propagate is True

    def test_bad_level_and_format_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="nope", stream=io.StringIO())
        with pytest.raises(ValueError):
            configure_logging(fmt="xml", stream=io.StringIO())


class TestCalibration:
    def test_bucket_key_rounds_cycles_to_power_of_two(self):
        assert bucket_key(54, 600) == "n54|c512"
        assert bucket_key(54, 2600) == "n54|c2048"
        assert bucket_key(200, 1024) == "n200|c1024"

    def test_observe_round_trip(self, tmp_path):
        table = CostCalibration(path=tmp_path / "cal.json")
        assert table.seconds_for(54, 600, 0.05) is None
        table.observe(54, 600, 0.05, 2.0)
        assert table.dirty
        estimate = table.seconds_for(54, 600, 0.05)
        assert estimate == pytest.approx(2.0)
        # Same bucket, different load: scales with the unit cost.
        heavier = table.seconds_for(54, 600, 0.30)
        assert heavier > estimate

        path = table.save()
        assert not table.dirty
        loaded = CostCalibration.load(path)
        assert len(loaded) == 1
        assert loaded.seconds_for(54, 600, 0.05) == pytest.approx(2.0)

    def test_ewma_converges_toward_new_measurements(self, tmp_path):
        table = CostCalibration(path=tmp_path / "cal.json")
        table.observe(54, 600, 0.05, 1.0)
        for _ in range(20):
            table.observe(54, 600, 0.05, 3.0)
        assert table.seconds_for(54, 600, 0.05) == pytest.approx(3.0, rel=0.05)

    def test_load_missing_or_invalid_file_is_empty(self, tmp_path):
        assert len(CostCalibration.load(tmp_path / "absent.json")) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert len(CostCalibration.load(bad)) == 0

    def test_seed_from_perf_baseline(self, tmp_path):
        table = CostCalibration(path=tmp_path / "cal.json")
        seeded = seed_from_perf_baseline(table)
        assert seeded > 0
        assert len(table) > 0
        # Seeding is derivable from the committed baseline — nothing to save.
        assert not table.dirty

    def test_zero_or_negative_observations_ignored(self, tmp_path):
        table = CostCalibration(path=tmp_path / "cal.json")
        table.observe(54, 600, 0.05, 0.0)
        table.observe(54, 600, 0.05, -1.0)
        assert len(table) == 0 and not table.dirty


class TestCalibratedSharding:
    def grids(self):
        """Two light-cycle specs and one heavy-cycle spec: the heuristic
        thinks the heavy one dominates (4x the cycles), so LPT isolates
        it and groups both light specs on the other shard; the inverted
        calibration measures the light bucket as the slow one, which
        forces the light specs apart instead."""
        light = [fast_spec(load=0.02), fast_spec(load=0.04)]
        heavy = [fast_spec(load=0.03, **SLOW)]
        return light, heavy

    def inverted_table(self):
        """Calibration that inverts the heuristic: the small-cycle bucket
        measures *slow* and the large-cycle bucket *fast*."""
        table = CostCalibration()
        table.observe(54, 600, 0.05, 10.0)
        table.observe(54, 2600, 0.05, 0.01)
        return table

    def test_estimate_is_all_or_nothing(self):
        light, heavy = self.grids()
        table = self.inverted_table()
        full = estimate_campaign_seconds(light + heavy, NODES, table)
        assert full is not None and full > 0
        partial = CostCalibration()
        partial.observe(54, 600, 0.05, 10.0)  # only the light bucket
        assert estimate_campaign_seconds(light + heavy, NODES, partial) is None
        assert estimate_campaign_seconds(light + heavy, NODES, None) is None

    def test_calibrated_partition_differs_and_balances_seconds(self):
        light, heavy = self.grids()
        specs = light + heavy
        table = self.inverted_table()

        def cost(spec):
            return predicted_cost(spec, num_nodes=54, calibration=table)

        calibrated = [
            shard_specs(
                specs, i, 2, balance="cost", node_counts=NODES, calibration=table
            )
            for i in range(2)
        ]
        heuristic = [
            shard_specs(specs, i, 2, balance="cost", node_counts=NODES)
            for i in range(2)
        ]
        # Disjoint and covering either way.
        keys = [set(iter_spec_keys(shard)) for shard in calibrated]
        assert not keys[0] & keys[1]
        assert keys[0] | keys[1] == set(iter_spec_keys(specs))
        # The inverted table must actually change the partition.
        assert keys[0] != set(iter_spec_keys(heuristic[0]))
        # LPT guarantee on *measured* cost: shard spread is bounded by one
        # spec's cost — the heuristic partition is far outside that bound
        # here because it thinks the heavy specs dominate.
        spread = abs(sum(map(cost, calibrated[0])) - sum(map(cost, calibrated[1])))
        assert spread <= max(map(cost, specs))
        bad_spread = abs(
            sum(map(cost, heuristic[0])) - sum(map(cost, heuristic[1]))
        )
        assert spread < bad_spread

    def test_predicted_cost_falls_back_without_bucket(self):
        spec = fast_spec()
        table = CostCalibration()  # empty
        assert predicted_cost(spec, num_nodes=54, calibration=table) == (
            predicted_cost(spec, num_nodes=54)
        )


class TestEngineTelemetry:
    def test_stage_seconds_and_calibration_feedback(self, tmp_path):
        table = CostCalibration(path=tmp_path / "cal.json")
        specs = [fast_spec(load=load) for load in (0.02, 0.05)]
        with ExperimentEngine(
            cache=ResultCache(tmp_path / "cache"), calibration=table
        ) as engine:
            engine.run(specs)
            stats = engine.total_stats
        stages = stats.stage_seconds
        for key in ("cache_lookup", "dispatch", "simulate", "write_back", "total"):
            assert key in stages
        assert stages["total"] > 0
        assert stages["simulate"] > 0
        assert stats.to_dict()["stage_seconds"]["total"] > 0
        # Executed specs fed the measured-cost table.
        assert len(table) > 0 and table.dirty
        assert table.seconds_for(54, 600, 0.02) is not None

    def test_cache_hit_run_measures_no_simulate_time(self, tmp_path):
        specs = [fast_spec(load=0.02)]
        cache = ResultCache(tmp_path / "cache")
        with ExperimentEngine(cache=cache) as engine:
            engine.run(specs)
        with ExperimentEngine(cache=ResultCache(tmp_path / "cache")) as engine:
            engine.run(specs)
            stats = engine.total_stats
        assert stats.cache_hits == 1
        assert stats.stage_seconds["simulate"] == 0.0
        assert stats.stage_seconds["total"] > 0


class TestMetricsEndpoint:
    def test_scrape_against_live_server(self, tmp_path):
        with StoreServer(
            SqlitePackStore(tmp_path / "store.sqlite"), quiet=True
        ) as server:
            store = RemoteStore(server.url, retries=2, backoff=0.01)
            store.put_payload("ab" * 10, "sim", {"x": 1})
            assert store.get_payload("ab" * 10, "sim") == {"x": 1}
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = resp.read().decode("utf-8")
        assert REGISTRY.value(
            "repro_server_requests_total", endpoint="/payloads/put", method="POST"
        ) >= 1
        assert REGISTRY.value(
            "repro_store_ops_total", backend="remote", op="payloads/get"
        ) >= 1
        assert (
            'repro_server_requests_total{endpoint="/payloads/put",method="POST"}'
            in body
        )
        assert "repro_store_ops_total" in body

    def test_metrics_is_unauthenticated_like_health(self, tmp_path):
        with StoreServer(
            SqlitePackStore(tmp_path / "store.sqlite"), token="secret", quiet=True
        ) as server:
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.status == 200
                assert b"repro_server_requests_total" in resp.read()

    def test_server_errors_counted(self, tmp_path):
        before = REGISTRY.value(
            "repro_server_errors_total", endpoint="/payloads/get", status="503"
        )
        with StoreServer(
            SqlitePackStore(tmp_path / "store.sqlite"), quiet=True
        ) as server:
            server.inject_failures(1)
            store = RemoteStore(server.url, retries=3, backoff=0.01)
            assert store.get_payload("cd" * 10, "sim") is None
        after = REGISTRY.value(
            "repro_server_errors_total", endpoint="/payloads/get", status="503"
        )
        assert after >= before + 1
        assert (
            REGISTRY.value("repro_store_retries_total", endpoint="payloads/get")
            >= 1
        )


class TestProgressLine:
    def test_format_duration(self):
        assert format_duration(3.2) == "3.2s"
        assert format_duration(42) == "42s"
        assert format_duration(220) == "3m40s"
        assert format_duration(7500) == "2h05m"

    def test_counts_and_pace_eta(self):
        stream = io.StringIO()
        line = ProgressLine(total=3, stream=stream)
        line.update(cached=True)
        line.update(cached=False)
        assert line.eta_seconds() is not None
        assert not line.calibrated
        line.update(cached=False)
        assert line.eta_seconds() is None  # done == total
        out = stream.getvalue()
        assert "3/3 (100%)" in out
        assert "hits 1" in out and "sims 2" in out
        line.finish()
        assert stream.getvalue().endswith("\n")

    def test_calibrated_eta_scales_remaining_cost(self):
        stream = io.StringIO()
        specs = ["a", "b", "c", "d"]
        line = ProgressLine(total=4, stream=stream, cost_fn=lambda s: 1.0)
        line.add_pending(specs)
        assert line.calibrated
        line.update("a")
        eta = line.eta_seconds()
        assert eta is not None and eta >= 0
        rendered = stream.getvalue()
        assert "calibrated" in rendered

    def test_uncalibrated_when_any_cost_unknown(self):
        line = ProgressLine(
            total=2,
            stream=io.StringIO(),
            cost_fn=lambda s: None if s == "b" else 1.0,
        )
        line.add_pending(["a", "b"])
        assert not line.calibrated


class TestCliTelemetry:
    def run_cli(self, argv, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CALIBRATION", str(tmp_path / "cal.json"))
        return main(argv + ["--cache-dir", str(tmp_path / "cache")])

    def test_progress_smoke(self, tmp_path, monkeypatch, capsys):
        rc = self.run_cli(
            [
                "sweep", "sn54", "--loads", "0.02,0.05", "--progress",
                "--warmup", "50", "--measure", "100", "--drain", "200",
            ],
            tmp_path,
            monkeypatch,
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "2/2 (100%)" in captured.err
        assert "sims" in captured.err
        assert "stages:" in captured.out

    def test_sweep_json_carries_stage_seconds(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "sweep.json"
        rc = self.run_cli(
            [
                "sweep", "sn54", "--loads", "0.02", "--quiet",
                "--warmup", "50", "--measure", "100", "--drain", "200",
                "--json", str(out),
            ],
            tmp_path,
            monkeypatch,
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        stages = payload["engine"]["stage_seconds"]
        assert set(stages) >= {
            "cache_lookup", "dispatch", "simulate", "write_back", "total",
        }
        assert stages["total"] > 0
        # The campaign taught the calibration table and persisted it.
        saved = CostCalibration.load(tmp_path / "cal.json")
        assert len(saved) > 0

    def test_calibrated_shard_eta_printed_on_rerun(
        self, tmp_path, monkeypatch, capsys
    ):
        argv = [
            "sweep", "sn54", "--loads", "0.02,0.05,0.08",
            "--warmup", "50", "--measure", "100", "--drain", "200",
        ]
        assert self.run_cli(argv + ["--quiet"], tmp_path, monkeypatch) == 0
        capsys.readouterr()
        rc = self.run_cli(
            argv + ["--shard", "0/2", "--shard-balance", "cost"],
            tmp_path,
            monkeypatch,
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "shard 0/2:" in err
        assert "calibrated" in err
