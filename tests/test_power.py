"""Tests for the area/power/energy models — the paper's comparison metrics."""

import math

import pytest

from repro.power import (
    TECH_22NM,
    TECH_45NM,
    average_route_stats,
    dynamic_power,
    make_metrics,
    network_area,
    normalize,
    static_power,
    technology,
    tile_side_mm,
)
from repro.power.area import crossbar_area_mm2, router_buffer_flits, total_wire_mm
from repro.topos import cycle_time_ns, make_network


class TestTechnology:
    def test_lookup(self):
        assert technology(45) is TECH_45NM
        assert technology(22) is TECH_22NM
        with pytest.raises(ValueError):
            technology(7)

    def test_node_scaling(self):
        assert TECH_22NM.sram_bit_area_mm2 < TECH_45NM.sram_bit_area_mm2
        assert TECH_22NM.buffer_energy_j_per_bit < TECH_45NM.buffer_energy_j_per_bit
        assert TECH_22NM.voltage < TECH_45NM.voltage

    def test_wires_scale_worse_than_logic(self):
        """The paper's 22nm observation: wires shrink less than logic."""
        logic_scale = TECH_22NM.sram_bit_area_mm2 / TECH_45NM.sram_bit_area_mm2
        wire_scale = TECH_22NM.wire_pitch_mm / TECH_45NM.wire_pitch_mm
        assert wire_scale > logic_scale

    def test_tile_side(self):
        assert tile_side_mm(TECH_45NM, 4) == pytest.approx(4.0)
        assert tile_side_mm(TECH_22NM, 4) == pytest.approx(2.0)


class TestAreaModel:
    def test_crossbar_quadratic_in_radix(self):
        a10 = crossbar_area_mm2(TECH_45NM, 10)
        a20 = crossbar_area_mm2(TECH_45NM, 20)
        assert a20 == pytest.approx(4 * a10)

    def test_buffer_flits_fixed_depth(self):
        sn = make_network("sn200")
        flits = router_buffer_flits(sn, vcs=2, edge_buffer_flits=5)
        assert flits == [7 * 2 * 5] * 50  # k'=7 ports, 2 VCs, 5 flits

    def test_buffer_flits_variable_depth(self):
        sn = make_network("sn200")
        fixed = router_buffer_flits(sn, edge_buffer_flits=5)
        variable = router_buffer_flits(sn, edge_buffer_flits=None)
        assert sum(variable) > sum(fixed)  # RTT-sized buffers are deeper

    def test_smart_shrinks_variable_buffers(self):
        sn = make_network("sn1296")
        plain = router_buffer_flits(sn, hops_per_cycle=1, edge_buffer_flits=None)
        smart = router_buffer_flits(sn, hops_per_cycle=9, edge_buffer_flits=None)
        assert sum(smart) < sum(plain)

    def test_central_buffer_flits(self):
        sn = make_network("sn200")
        flits = router_buffer_flits(sn, central_buffer_flits=20)
        assert flits == [20 + 2 * 7 * 2] * 50

    def test_wire_mm_positive_and_layout_sensitive(self):
        basic = make_network("sn200", layout="sn_basic")
        subgr = make_network("sn200", layout="sn_subgr")
        assert total_wire_mm(subgr, TECH_45NM) < total_wire_mm(basic, TECH_45NM)

    def test_breakdown_sums_to_total(self):
        sn = make_network("sn200")
        report = network_area(sn, TECH_45NM)
        assert report.total == pytest.approx(sum(report.breakdown().values()))

    def test_paper_fig16_sn_beats_fbf_area(self):
        """SN reduces area over FBF by roughly 33-50% (Figures 15-17)."""
        sn = make_network("sn200")
        fbf = make_network("fbf4")
        ratio = network_area(sn, TECH_45NM).total / network_area(fbf, TECH_45NM).total
        assert 0.4 < ratio < 0.75

    def test_paper_low_radix_smallest(self):
        sn = make_network("sn200")
        t2d = make_network("t2d4")
        assert network_area(t2d, TECH_45NM).total < network_area(sn, TECH_45NM).total

    def test_22nm_smaller_than_45nm(self):
        sn = make_network("sn200")
        assert network_area(sn, TECH_22NM).total < network_area(sn, TECH_45NM).total


class TestStaticPower:
    def test_components_positive(self):
        report = static_power(make_network("sn200"), TECH_45NM)
        assert report.buffers > 0 and report.crossbars > 0 and report.wires > 0
        assert report.total == pytest.approx(sum(report.breakdown().values()))

    def test_sn_beats_fbf_static(self):
        """Paper: SN reduces static power over FBF by ~45-60%."""
        sn = static_power(make_network("sn200"), TECH_45NM).total
        fbf = static_power(make_network("fbf4"), TECH_45NM).total
        assert 0.35 < sn / fbf < 0.70

    def test_sn_beats_pfbf_static(self):
        sn = static_power(make_network("sn200"), TECH_45NM).total
        pfbf = static_power(make_network("pfbf4"), TECH_45NM).total
        assert sn < pfbf

    def test_low_radix_lowest_static(self):
        t2d = static_power(make_network("t2d4"), TECH_45NM).total
        sn = static_power(make_network("sn200"), TECH_45NM).total
        assert sn > 1.4 * t2d  # paper: SN uses >40% more static than T2D


class TestDynamicPower:
    def test_scales_with_rate(self):
        sn = make_network("sn200")
        stats = average_route_stats(sn)
        low = dynamic_power(sn, TECH_45NM, 0.01, 0.5, stats).total
        high = dynamic_power(sn, TECH_45NM, 0.10, 0.5, stats).total
        assert high > low
        with pytest.raises(ValueError):
            dynamic_power(sn, TECH_45NM, -0.1, 0.5, stats)

    def test_sn_beats_fbf_dynamic(self):
        """Paper Figure 16c: SN's dynamic power is below FBF's."""
        sn_t = make_network("sn200")
        fbf_t = make_network("fbf3")
        sn = dynamic_power(sn_t, TECH_45NM, 0.05, 0.5, average_route_stats(sn_t)).total
        fbf = dynamic_power(fbf_t, TECH_45NM, 0.05, 0.6, average_route_stats(fbf_t)).total
        assert sn < fbf

    def test_clock_power_floor(self):
        """Even at zero activity, clocked buffers burn dynamic power."""
        sn = make_network("sn200")
        report = dynamic_power(sn, TECH_45NM, 0.0, 0.5, average_route_stats(sn))
        assert report.buffers > 0

    def test_route_stats(self):
        sn = make_network("sn200")
        hops, wire = average_route_stats(sn)
        assert 1.0 < hops < 2.0  # diameter-2 network
        assert wire > hops  # physical length exceeds hop count


class TestEnergyMetrics:
    def test_throughput_per_power(self):
        metrics = make_metrics(
            throughput_flits_per_cycle=100.0,
            cycle_time_ns=0.5,
            static=static_power(make_network("sn200"), TECH_45NM),
            dynamic=dynamic_power(make_network("sn200"), TECH_45NM, 0.05, 0.5),
            avg_latency_cycles=25.0,
        )
        assert metrics.throughput_per_power > 0
        assert metrics.energy_delay_product > 0
        assert metrics.total_power_w == pytest.approx(
            metrics.static_power_w + metrics.dynamic_power_w
        )

    def test_edp_increases_with_latency(self):
        static = static_power(make_network("sn200"), TECH_45NM)
        dynamic = dynamic_power(make_network("sn200"), TECH_45NM, 0.05, 0.5)
        fast = make_metrics(100.0, 0.5, static, dynamic, 20.0)
        slow = make_metrics(100.0, 0.5, static, dynamic, 40.0)
        assert slow.energy_delay_product > fast.energy_delay_product

    def test_zero_throughput_edp_infinite(self):
        static = static_power(make_network("sn200"), TECH_45NM)
        dynamic = dynamic_power(make_network("sn200"), TECH_45NM, 0.0, 0.5)
        metrics = make_metrics(0.0, 0.5, static, dynamic, 20.0)
        assert math.isinf(metrics.energy_delay_product)

    def test_normalize(self):
        values = {"fbf3": 2.0, "sn": 1.0, "cm3": 1.5}
        normed = normalize(values, "fbf3")
        assert normed["fbf3"] == 1.0
        assert normed["sn"] == 0.5
        with pytest.raises(KeyError):
            normalize(values, "t2d")


class TestPaperHeadlines:
    """Figure 1b/1c: SN has the best throughput/power at both nodes."""

    @pytest.mark.parametrize("nm", [45, 22])
    def test_sn_best_throughput_per_power(self, nm):
        """Evaluated at a common offered load: saturated networks burn
        injection-side energy on traffic they cannot deliver."""
        tech = technology(nm)
        offered = 0.40
        results = {}
        for sym, sat in (("sn200", 0.42), ("fbf4", 0.45), ("t2d4", 0.10), ("cm4", 0.08)):
            topo = make_network(sym)
            ct = cycle_time_ns(sym)
            stats = average_route_stats(topo)
            delivered = min(offered, sat)
            metrics = make_metrics(
                throughput_flits_per_cycle=delivered * topo.num_nodes,
                cycle_time_ns=ct,
                static=static_power(topo, tech),
                dynamic=dynamic_power(topo, tech, offered, ct, stats),
                avg_latency_cycles=25.0,
            )
            results[sym] = metrics.throughput_per_power
        assert results["sn200"] == max(results.values())
