"""Tests for baseline topologies and the Table 4 catalog."""

import pytest

from repro.core import SlimNoC
from repro.topos import (
    ConcentratedMesh,
    Dragonfly,
    FlattenedButterfly,
    FoldedClos,
    PartitionedFBF,
    Torus2D,
    catalog_symbols,
    cycle_time_ns,
    expected_nodes,
    make_network,
)

# (symbol, p, k', k, routers, N) rows straight from Table 4.
TABLE4_ROWS = [
    ("t2d3", 3, 4, 7, 64, 192),
    ("t2d4", 4, 4, 8, 50, 200),
    ("cm3", 3, 4, 7, 64, 192),
    ("cm4", 4, 4, 8, 50, 200),
    ("fbf3", 3, 14, 17, 64, 192),
    ("fbf4", 4, 13, 17, 50, 200),
    ("pfbf3", 3, 8, 11, 64, 192),
    ("pfbf4", 4, 9, 13, 50, 200),
    ("sn200", 4, 7, 11, 50, 200),
    ("t2d9", 9, 4, 13, 144, 1296),
    ("t2d8", 8, 4, 12, 162, 1296),
    ("cm9", 9, 4, 13, 144, 1296),
    ("cm8", 8, 4, 12, 162, 1296),
    ("fbf9", 9, 22, 31, 144, 1296),
    ("fbf8", 8, 25, 33, 162, 1296),
    ("pfbf9", 9, 12, 21, 144, 1296),
    ("pfbf8", 8, 17, 25, 162, 1296),
    ("sn1296", 8, 13, 21, 162, 1296),
]


class TestTable4:
    @pytest.mark.parametrize("symbol,p,kprime,k,routers,nodes", TABLE4_ROWS)
    def test_catalog_matches_table4(self, symbol, p, kprime, k, routers, nodes):
        t = make_network(symbol)
        assert t.concentration == p
        assert t.network_radix == kprime
        assert t.router_radix == k
        assert t.num_routers == routers
        assert t.num_nodes == nodes
        assert expected_nodes(symbol) == nodes

    def test_diameters(self):
        assert make_network("sn200").diameter == 2
        assert make_network("fbf3").diameter == 2
        assert make_network("pfbf3").diameter == 4
        assert make_network("t2d3").diameter == 8
        assert make_network("cm3").diameter == 14

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError):
            make_network("hypercube")

    def test_layout_override_only_for_sn(self):
        sn = make_network("sn200", layout="sn_gr")
        assert sn.name == "sn_gr"
        with pytest.raises(ValueError):
            make_network("fbf3", layout="sn_gr")

    def test_cycle_times(self):
        assert cycle_time_ns("sn200") == 0.5
        assert cycle_time_ns("pfbf3") == 0.5
        assert cycle_time_ns("t2d9") == 0.4
        assert cycle_time_ns("cm4") == 0.4
        assert cycle_time_ns("fbf8") == 0.6
        with pytest.raises(ValueError):
            cycle_time_ns("xyz")

    def test_catalog_is_complete(self):
        symbols = catalog_symbols()
        for row in TABLE4_ROWS:
            assert row[0] in symbols


class TestTorus:
    def test_every_router_has_degree_four(self):
        t = Torus2D(6, 5, 2)
        assert all(len(n) == 4 for n in t.adjacency)

    def test_wraparound_exists(self):
        t = Torus2D(5, 5, 1)
        assert t.router_at(4, 0) in t.adjacency[t.router_at(0, 0)]

    def test_all_links_single_hop(self):
        """Folded layout: every torus link is a near-neighbor wire."""
        t = Torus2D(6, 6, 1)
        assert all(t.link_length_hops(i, j) == 1 for i, j in t.edges())

    def test_diameter(self):
        t = Torus2D(8, 8, 1)
        assert t.diameter == 8  # floor(8/2) + floor(8/2)

    def test_small_torus_rejected(self):
        with pytest.raises(ValueError):
            Torus2D(2, 2, 1)


class TestMesh:
    def test_corner_degree_two(self):
        m = ConcentratedMesh(4, 4, 2)
        assert len(m.adjacency[0]) == 2

    def test_interior_degree_four(self):
        m = ConcentratedMesh(4, 4, 2)
        assert len(m.adjacency[m.router_at(1, 1)]) == 4

    def test_diameter_is_cols_plus_rows_minus_two(self):
        m = ConcentratedMesh(5, 3, 1)
        assert m.diameter == 6

    def test_all_links_unit_length(self):
        m = ConcentratedMesh(4, 4, 1)
        assert all(m.link_length_hops(i, j) == 1 for i, j in m.edges())


class TestFlattenedButterfly:
    def test_radix(self):
        f = FlattenedButterfly(8, 8, 3)
        assert f.network_radix == 14  # 7 row + 7 col peers

    def test_diameter_two(self):
        assert FlattenedButterfly(5, 4, 1).diameter == 2

    def test_row_and_column_cliques(self):
        f = FlattenedButterfly(4, 4, 1)
        r = f.router_at(1, 2)
        neighbors = set(f.adjacency[r])
        row = {f.router_at(x, 2) for x in range(4)} - {r}
        col = {f.router_at(1, y) for y in range(4)} - {r}
        assert neighbors == row | col


class TestPartitionedFBF:
    def test_pfbf3_structure(self):
        p = PartitionedFBF(4, 4, 2, 2, 3)
        assert p.num_routers == 64
        assert p.network_radix == 8  # 3+3 clique + 2 mirror ports

    def test_corner_partition_router_lower_degree(self):
        # A router in the corner partition far from both boundaries still has
        # its clique links but mirror links only toward existing partitions.
        p = PartitionedFBF(4, 4, 2, 2, 3)
        degrees = {len(n) for n in p.adjacency}
        assert degrees == {8}  # 2x2 grid: every partition has exactly 2 neighbors

    def test_two_partition_variant(self):
        p = PartitionedFBF(5, 5, 2, 1, 4)
        assert p.network_radix == 9  # 4+4 clique + 1 mirror port
        assert p.diameter == 3

    def test_mirror_links_connect_same_local_position(self):
        p = PartitionedFBF(4, 4, 2, 2, 3)
        r = p.router_at(1, 1)  # partition (0,0), local (1,1)
        mirror_x = p.router_at(5, 1)  # partition (1,0), local (1,1)
        mirror_y = p.router_at(1, 5)  # partition (0,1), local (1,1)
        assert mirror_x in p.adjacency[r]
        assert mirror_y in p.adjacency[r]

    def test_partition_of(self):
        p = PartitionedFBF(4, 4, 2, 2, 3)
        assert p.partition_of(p.router_at(5, 6)) == (1, 1)


class TestDragonfly:
    def test_balanced_structure(self):
        d = Dragonfly(2)
        assert d.group_size == 4
        assert d.num_groups == 9
        assert d.num_routers == 36
        assert d.network_radix == 5  # 3 local + 2 global

    def test_diameter_three(self):
        assert Dragonfly(2).diameter == 3

    def test_one_link_per_group_pair(self):
        d = Dragonfly(2)
        counts = {}
        for i, j in d.edges():
            ga, gb = d.group_of(i), d.group_of(j)
            if ga != gb:
                counts[(min(ga, gb), max(ga, gb))] = counts.get((min(ga, gb), max(ga, gb)), 0) + 1
        assert set(counts.values()) == {1}
        assert len(counts) == 9 * 8 // 2

    def test_groups_are_cliques(self):
        d = Dragonfly(2)
        for g in range(d.num_groups):
            members = [r for r in range(d.num_routers) if d.group_of(r) == g]
            for a in members:
                for b in members:
                    if a != b:
                        assert b in d.adjacency[a]

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            Dragonfly(0)


class TestFoldedClos:
    def test_leaf_spine_connectivity(self):
        c = FoldedClos(8, 4, 2)
        assert c.num_routers == 12
        assert c.num_nodes == 16  # spines host no nodes
        assert c.diameter == 2

    def test_spines_host_no_nodes(self):
        c = FoldedClos(8, 4, 2)
        assert len(c.router_nodes(9)) == 0
        assert len(c.router_nodes(0)) == 2

    def test_node_router_mapping(self):
        c = FoldedClos(8, 4, 2)
        assert c.node_router(0) == 0
        assert c.node_router(15) == 7
        with pytest.raises(ValueError):
            c.node_router(16)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FoldedClos(1, 1, 2)


class TestTopologyBase:
    def test_node_router_roundtrip(self):
        t = make_network("sn200")
        for node in range(t.num_nodes):
            assert node in t.router_nodes(t.node_router(node))

    def test_node_out_of_range(self):
        t = make_network("sn200")
        with pytest.raises(ValueError):
            t.node_router(200)

    def test_partitioning_reduces_bisection(self):
        """PFBF trades FBF's full bisection for SN-class cost (Figure 9)."""
        for fbf_sym, pfbf_sym in (("fbf4", "pfbf4"), ("fbf9", "pfbf9")):
            fbf = make_network(fbf_sym)
            pfbf = make_network(pfbf_sym)
            assert pfbf.bisection_links() < fbf.bisection_links()

    def test_low_radix_networks_have_low_bisection(self):
        """Tori/meshes sit far below SN in physical bisection (10x-class gap)."""
        sn = make_network("sn1296")
        t2d = make_network("t2d9")
        assert sn.bisection_links() > 5 * t2d.bisection_links()

    def test_coordinates_unique(self):
        for symbol in ("sn200", "fbf3", "t2d4", "pfbf9"):
            t = make_network(symbol)
            assert len(set(t.coordinates.values())) == t.num_routers

    def test_concentration_validation(self):
        with pytest.raises(ValueError):
            SlimNoC(5, 0)
