"""Pluggable result stores (local + remote HTTP), shard partitioning,
merge, auto-GC, pool lifecycle."""

import itertools
import json
import logging
import random
import time

import pytest

from repro.engine import (
    ExperimentEngine,
    ExperimentSpec,
    LocalDirStore,
    RemoteAuthError,
    RemoteStore,
    RemoteStoreError,
    ResultCache,
    SqlitePackStore,
    StoreServer,
    merge_stores,
    open_backend,
    predicted_cost,
    run_compare,
    run_sweep,
    shard_for_key,
    shard_specs,
    workload_compare,
)
from repro.engine.spec import iter_spec_keys
from repro.engine.store import (
    DEFAULT_KEY_BATCH,
    SCHEMA_VERSION,
    FakeBucketServer,
    HTTPTransport,
    MemoryTransport,
    ObjectStore,
    ObjectStoreError,
    RawEntry,
    encode_entry,
    iter_all_keys,
    iter_key_pages,
    open_object_store,
)
from repro.engine.store import base as base_module
from repro.engine.store import http as http_module

#: Tiny but shape-preserving windows for the sn54/cm54 class.
FAST = dict(warmup=100, measure=200, drain=300)

LOADS = [0.02, 0.05, 0.08, 0.12, 0.2, 0.3]


def fast_spec(load=0.05, **overrides) -> ExperimentSpec:
    kw = dict(topology="sn54", pattern="RND", load=load, **FAST)
    kw.update(overrides)
    return ExperimentSpec.synthetic(
        kw.pop("topology"), kw.pop("pattern"), kw.pop("load"), **kw
    )


def spec_grid(n=24) -> list[ExperimentSpec]:
    return [fast_spec(load=0.01 + 0.005 * i) for i in range(n)]


def remote_store(server, **overrides):
    """Client against ``server`` with test-friendly retry settings."""
    kw = dict(retries=2, backoff=0.01)
    kw.update(overrides)
    return RemoteStore(server.url, **kw)


@pytest.fixture(params=["dir", "sqlite", "remote", "object"])
def backend(request, tmp_path):
    """Every store implementation, including the HTTP client against a
    live ephemeral-port server and the object store against a live fake
    bucket — the wire protocols pass the same equivalence suite the
    local backends do."""
    if request.param == "dir":
        yield LocalDirStore(tmp_path / "store")
    elif request.param == "sqlite":
        yield SqlitePackStore(tmp_path / "store.sqlite")
    elif request.param == "object":
        with FakeBucketServer() as bucket:
            store = ObjectStore(HTTPTransport(bucket.url, "tests"), prefix="repro")
            yield store
            store.close()
    else:
        with StoreServer(
            SqlitePackStore(tmp_path / "store.sqlite"), quiet=True
        ) as server:
            yield remote_store(server)


def set_mtime(backend, key, mtime):
    """Backdate one entry's LRU timestamp on either backend."""
    raw = backend.get_entry(key)
    backend.put_entry(key, raw.entry, mtime=mtime)


class TestShardPartitioning:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_disjoint_and_covering(self, count):
        specs = spec_grid()
        shards = [shard_specs(specs, i, count) for i in range(count)]
        keys = [set(iter_spec_keys(shard)) for shard in shards]
        assert set().union(*keys) == set(iter_spec_keys(specs))
        for a, b in itertools.combinations(keys, 2):
            assert not a & b
        assert sum(len(shard) for shard in shards) == len(specs)

    def test_stable_under_permutation(self):
        specs = spec_grid()
        shuffled = specs[:]
        random.Random(7).shuffle(shuffled)
        for index in range(3):
            original = set(iter_spec_keys(shard_specs(specs, index, 3)))
            permuted = set(iter_spec_keys(shard_specs(shuffled, index, 3)))
            assert original == permuted

    def test_key_sharding_is_content_based(self):
        spec = fast_spec()
        key = spec.content_hash()
        assert spec.shard_of(4) == shard_for_key(key, 4)
        assert shard_for_key(key, 1) == 0

    def test_invalid_shards_rejected(self):
        specs = spec_grid(4)
        with pytest.raises(ValueError):
            shard_specs(specs, 2, 2)
        with pytest.raises(ValueError):
            shard_specs(specs, -1, 2)
        with pytest.raises(ValueError):
            shard_for_key("ab", 0)
        with pytest.raises(ValueError):
            shard_specs(specs, 0, 2, balance="bogus")


def mixed_cost_grid() -> list[ExperimentSpec]:
    """Specs whose predicted costs vary widely (loads and windows)."""
    specs = [fast_spec(load=0.01 + 0.05 * i) for i in range(8)]
    specs += [
        fast_spec(load=0.3, warmup=300, measure=800, drain=1500),
        fast_spec(load=0.45, warmup=300, measure=800, drain=1500),
    ]
    return specs


class TestCostBalancedSharding:
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_disjoint_and_covering(self, count):
        specs = mixed_cost_grid()
        shards = [
            shard_specs(specs, i, count, balance="cost") for i in range(count)
        ]
        keys = [set(iter_spec_keys(shard)) for shard in shards]
        assert set().union(*keys) == set(iter_spec_keys(specs))
        for a, b in itertools.combinations(keys, 2):
            assert not a & b

    def test_stable_under_permutation(self):
        specs = mixed_cost_grid()
        shuffled = specs[:]
        random.Random(11).shuffle(shuffled)
        for index in range(3):
            original = set(
                iter_spec_keys(shard_specs(specs, index, 3, balance="cost"))
            )
            permuted = set(
                iter_spec_keys(shard_specs(shuffled, index, 3, balance="cost"))
            )
            assert original == permuted

    def test_balances_predicted_work(self):
        """Greedy LPT property: the spread between the heaviest and
        lightest shard is at most one spec's cost — far tighter than
        hash partitioning can promise on a skewed grid."""
        specs = mixed_cost_grid()
        costs = {spec.content_hash(): predicted_cost(spec) for spec in specs}
        totals = [
            sum(costs[key] for key in iter_spec_keys(
                shard_specs(specs, index, 2, balance="cost")
            ))
            for index in range(2)
        ]
        assert max(totals) - min(totals) <= max(costs.values())

    def test_cost_model_orders_by_load_size_and_cycles(self):
        light = fast_spec(load=0.02)
        heavy = fast_spec(load=0.45)
        long = fast_spec(load=0.02, warmup=300, measure=800, drain=1500)
        assert predicted_cost(heavy) > predicted_cost(light)
        assert predicted_cost(long) > predicted_cost(light)
        assert predicted_cost(light, num_nodes=200) > predicted_cost(
            light, num_nodes=54
        )

    def test_cost_sharded_campaign_covers_grid(self, tmp_path):
        """Two cost-balanced shard runs cover the grid exactly once, and
        the unsharded rerun over the union is a pure cache read."""
        cache = ResultCache(tmp_path / "store.sqlite")
        engine = ExperimentEngine(cache=cache)
        executed = []
        for index in range(2):
            run_sweep(
                engine, "sn54", "RND", LOADS, **FAST,
                shard=(index, 2), shard_balance="cost",
            )
            executed.append(engine.last_stats.executed)
        assert sum(executed) == len(LOADS)
        curve = run_sweep(engine, "sn54", "RND", LOADS, **FAST)
        assert engine.last_stats.executed == 0
        assert [p.load for p in curve.points] == LOADS


class TestBackendEquivalence:
    """Both backends expose identical store semantics."""

    def test_payload_round_trip_and_kind_check(self, backend):
        backend.put_payload("ab" * 32, "sim", {"x": 1}, spec={"spec_version": 1})
        assert backend.get_payload("ab" * 32, "sim") == {"x": 1}
        assert backend.get_payload("ab" * 32, "other") is None
        assert backend.get_payload("cd" * 32, "sim") is None

    def test_iter_keys_sorted(self, backend):
        keys = ["ff" * 32, "aa" * 32, "0b" * 32]
        for key in keys:
            backend.put_payload(key, "sim", {"k": key})
        assert list(backend.iter_keys()) == sorted(keys)

    def test_stats_counts_entries_and_bytes(self, backend):
        assert backend.stats().entries == 0
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        backend.put_payload("bb" * 32, "sim", {"x": 2})
        stats = backend.stats()
        assert stats.entries == 2
        assert stats.size_bytes > 0
        assert stats.reclaimable_entries == 0

    def test_clear(self, backend):
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        assert backend.clear() == 1
        assert backend.stats().entries == 0

    def test_get_many_returns_only_hits(self, backend):
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        backend.put_payload("bb" * 32, "other", {"x": 2})
        found = backend.get_payload_many(["aa" * 32, "bb" * 32, "cc" * 32], "sim")
        assert found == {"aa" * 32: {"x": 1}}

    def test_gc_unreachable_schema(self, backend):
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        raw = backend.get_entry("aa" * 32)
        entry = dict(raw.entry)
        entry["schema"] = SCHEMA_VERSION + 1
        backend.put_entry("aa" * 32, entry)
        backend.put_payload("bb" * 32, "sim", {"x": 2})
        stats = backend.stats()
        assert stats.reclaimable_entries == 1
        report = backend.gc()
        assert report.removed_entries == 1
        assert backend.get_payload("bb" * 32, "sim") is not None

    def test_gc_lru_order_and_max_bytes(self, backend):
        now = time.time()
        for i, key in enumerate(["aa" * 32, "bb" * 32, "cc" * 32]):
            backend.put_payload(key, "sim", {"x": i})
            set_mtime(backend, key, now - 3600 + i)
        keep = backend.get_entry("cc" * 32)
        keep_bytes = len(encode_entry(keep.entry))
        report = backend.gc(max_bytes=keep_bytes, now=now)
        assert report.removed_entries == 2
        assert backend.get_payload("cc" * 32, "sim") is not None
        assert backend.get_payload("aa" * 32, "sim") is None

    def test_gc_max_age(self, backend):
        now = time.time()
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        backend.put_payload("bb" * 32, "sim", {"x": 2})
        set_mtime(backend, "aa" * 32, now - 10 * 86400)
        report = backend.gc(max_age_days=7, now=now)
        assert report.removed_entries == 1
        assert backend.get_payload("bb" * 32, "sim") is not None
        assert backend.get_payload("aa" * 32, "sim") is None

    def test_hit_refreshes_lru_position(self, backend):
        now = time.time()
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        set_mtime(backend, "aa" * 32, now - 10 * 86400)
        assert backend.get_payload("aa" * 32, "sim") is not None
        assert backend.get_entry("aa" * 32).mtime > now - 86400

    def test_size_bytes_matches_stats(self, backend):
        assert backend.size_bytes() == 0
        backend.put_payload("aa" * 32, "sim", {"x": 1})
        backend.put_payload("bb" * 32, "sim", {"x": 2})
        assert backend.size_bytes() == backend.stats().size_bytes

    def test_engine_round_trip(self, backend, tmp_path):
        cache = ResultCache(backend=backend)
        engine = ExperimentEngine(cache=cache)
        specs = [fast_spec(), fast_spec(load=0.08)]
        first = engine.run(specs)
        assert engine.last_stats.executed == 2
        again = engine.run(specs)
        assert engine.last_stats.executed == 0
        assert engine.last_stats.cache_hits == 2
        for a, b in zip(first, again):
            assert a.avg_latency == b.avg_latency
            assert a.latencies == b.latencies


class TestBackendCrossEquivalence:
    def test_same_keys_and_payloads_via_both_backends(self, tmp_path):
        """One campaign written through each backend stores identical
        canonical entries under identical keys."""
        specs = [fast_spec(), fast_spec(load=0.08)]
        local = LocalDirStore(tmp_path / "dir")
        pack = SqlitePackStore(tmp_path / "pack.sqlite")
        ExperimentEngine(cache=ResultCache(backend=local)).run(specs)
        ExperimentEngine(cache=ResultCache(backend=pack)).run(specs)
        assert list(local.iter_keys()) == list(pack.iter_keys())
        for key in local.iter_keys():
            assert (
                local.get_entry(key).encoded() == pack.get_entry(key).encoded()
            )

    def test_open_backend_dispatch(self, tmp_path, monkeypatch):
        assert isinstance(open_backend(tmp_path / "plain"), LocalDirStore)
        assert isinstance(open_backend(tmp_path / "pack.sqlite"), SqlitePackStore)
        assert isinstance(open_backend(tmp_path / "pack.db"), SqlitePackStore)
        assert isinstance(
            open_backend(f"sqlite:{tmp_path}/url"), SqlitePackStore
        )
        assert isinstance(open_backend(f"dir:{tmp_path}/x.sqlite"), LocalDirStore)
        monkeypatch.setenv("REPRO_OBJECT_ENDPOINT", "http://127.0.0.1:1")
        assert isinstance(open_backend("s3://bucket/prefix"), ObjectStore)
        assert isinstance(
            open_backend("obj:http://127.0.0.1:1/bucket/prefix"), ObjectStore
        )
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        packed = open_backend(tmp_path / "plain")
        assert isinstance(packed, SqlitePackStore)
        assert packed.path.name == "results.sqlite"
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "bogus")
        with pytest.raises(ValueError):
            open_backend(tmp_path / "plain")

    def test_deprecated_location_forms_warn_once(self, tmp_path, caplog):
        """Suffix-sniffed pack paths and REPRO_CACHE_BACKEND=sqlite still
        work, but each form logs exactly one deprecation line per
        process — the explicit schemes stay silent."""
        base_module._DEPRECATION_WARNED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.engine.store"):
            open_backend(tmp_path / "pack.sqlite")
            open_backend(tmp_path / "other.sqlite")  # same form: no new line
            open_backend(f"sqlite:{tmp_path}/explicit.sqlite")
            open_backend(tmp_path / "plain")
        warned = [r for r in caplog.records if "deprecated" in r.getMessage()]
        assert len(warned) == 1
        assert "sqlite:" in warned[0].getMessage()

    def test_two_connections_share_one_pack(self, tmp_path):
        """Concurrent writers on one host: separate connections to the
        same pack see each other's entries, and gc (incremental vacuum,
        no exclusive lock) runs while the other connection stays open."""
        a = SqlitePackStore(tmp_path / "pack.sqlite")
        b = SqlitePackStore(tmp_path / "pack.sqlite")
        a.put_payload("aa" * 32, "sim", {"x": 1})
        b.put_payload("bb" * 32, "sim", {"x": 2})
        assert list(a.iter_keys()) == list(b.iter_keys())
        report = a.gc(max_bytes=0)
        assert report.removed_entries == 2
        assert b.stats().entries == 0

    def test_result_cache_path_still_means_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "legacy")
        assert isinstance(cache.backend, LocalDirStore)
        spec = fast_spec()
        ExperimentEngine(cache=cache).run([spec])
        assert cache.path_for(spec).is_file()
        packed = ResultCache(tmp_path / "pack.sqlite")
        with pytest.raises(NotImplementedError):
            packed.path_for(spec)


class TestMerge:
    def fill(self, backend, loads):
        cache = ResultCache(backend=backend)
        ExperimentEngine(cache=cache).run([fast_spec(load=x) for x in loads])
        return cache

    def test_merge_copies_and_skips(self, tmp_path):
        a = LocalDirStore(tmp_path / "a")
        b = SqlitePackStore(tmp_path / "b.sqlite")
        self.fill(a, [0.02, 0.05])
        self.fill(b, [0.05, 0.08])  # 0.05 overlaps, byte-identical
        report = merge_stores(b, a)
        assert report.copied == 1
        assert report.skipped == 1
        assert report.conflicts == 0
        assert b.stats().entries == 3

    def test_merge_counts_conflicts_and_keeps_ours(self, tmp_path):
        a = LocalDirStore(tmp_path / "a")
        b = LocalDirStore(tmp_path / "b")
        self.fill(a, [0.02])
        self.fill(b, [0.02])
        (key,) = a.iter_keys()
        ours = b.get_entry(key).entry
        tampered = json.loads(json.dumps(ours))
        tampered["result"]["avg_latency"] = -1.0
        a.put_entry(key, tampered)
        report = merge_stores(b, a)
        assert report.conflicts == 1
        assert report.copied == 0
        assert b.get_entry(key).entry == ours  # destination wins

    def test_merge_preserves_lru_timestamps(self, tmp_path):
        a = LocalDirStore(tmp_path / "a")
        b = SqlitePackStore(tmp_path / "b.sqlite")
        self.fill(a, [0.02])
        (key,) = a.iter_keys()
        old = time.time() - 5 * 86400
        set_mtime(a, key, old)
        merge_stores(b, a)
        assert abs(b.get_entry(key).mtime - old) < 2.0


class TestRemoteStore:
    """Wire-protocol behavior beyond the shared backend-equivalence
    suite: auth, retry/backoff, offline errors, merge transport."""

    @pytest.fixture
    def server(self, tmp_path):
        with StoreServer(
            SqlitePackStore(tmp_path / "served.sqlite"), quiet=True
        ) as server:
            yield server

    def test_open_backend_and_result_cache_dispatch(self):
        store = open_backend("http://127.0.0.1:1/base/")
        assert isinstance(store, RemoteStore)
        assert store.location == "http://127.0.0.1:1/base"
        cache = ResultCache("https://example.invalid:8123")
        assert isinstance(cache.backend, RemoteStore)
        assert cache.location == "https://example.invalid:8123"

    def test_health_is_unauthenticated(self, tmp_path):
        with StoreServer(
            SqlitePackStore(tmp_path / "s.sqlite"), token="secret", quiet=True
        ) as server:
            health = remote_store(server).ping()
            assert health["ok"] is True
            assert health["schema"] == SCHEMA_VERSION

    def test_auth_token_rejection_and_acceptance(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_TOKEN", raising=False)
        with StoreServer(
            SqlitePackStore(tmp_path / "s.sqlite"), token="secret", quiet=True
        ) as server:
            with pytest.raises(RemoteAuthError):
                remote_store(server).put_payload("aa" * 32, "sim", {"x": 1})
            with pytest.raises(RemoteAuthError):
                remote_store(server, token="wrong").stats()
            good = remote_store(server, token="secret")
            good.put_payload("aa" * 32, "sim", {"x": 1})
            assert good.get_payload("aa" * 32, "sim") == {"x": 1}
            # Clients pick the token up from the environment by default.
            monkeypatch.setenv("REPRO_CACHE_TOKEN", "secret")
            assert remote_store(server).stats().entries == 1

    def test_non_ascii_token_compares_not_crashes(self, tmp_path, monkeypatch):
        """A non-ASCII token must yield a clean 401/200, never a handler
        crash (str compare_digest raises on non-ASCII input)."""
        monkeypatch.delenv("REPRO_CACHE_TOKEN", raising=False)
        with StoreServer(
            SqlitePackStore(tmp_path / "s.sqlite"), token="sécret", quiet=True
        ) as server:
            with pytest.raises(RemoteAuthError):
                remote_store(server, token="wröng").stats()
            assert remote_store(server, token="sécret").stats().entries == 0

    def test_retry_with_backoff_on_transient_failures(self, server):
        sleeps = []
        store = remote_store(
            server, retries=4, backoff=0.05, sleep=sleeps.append, jitter=lambda: 1.0
        )
        store.put_payload("aa" * 32, "sim", {"x": 1})
        server.inject_failures(2)
        assert store.get_payload("aa" * 32, "sim") == {"x": 1}
        assert sleeps == [0.05, 0.1]  # exponential backoff, then success

    def test_retries_exhausted_surface_one_clear_error(self, server):
        server.inject_failures(10)
        store = remote_store(server, sleep=lambda _s: None)
        with pytest.raises(RemoteStoreError, match="unreachable after 2"):
            store.iter_keys()

    def test_offline_server_error_names_the_cure(self, tmp_path):
        server = StoreServer(SqlitePackStore(tmp_path / "s.sqlite"))
        url = server.url
        server.close()  # nothing listens on that port anymore
        store = RemoteStore(url, retries=2, backoff=0, sleep=lambda _s: None)
        with pytest.raises(RemoteStoreError, match="repro serve"):
            store.stats()

    def test_remote_merge_round_trip_is_byte_identical(self, tmp_path, server):
        """local pack -> remote -> fresh local pack preserves canonical
        bytes and LRU timestamps: the network is a transport, not a
        transform."""
        source = SqlitePackStore(tmp_path / "src.sqlite")
        ExperimentEngine(cache=ResultCache(backend=source)).run(
            [fast_spec(), fast_spec(load=0.08)]
        )
        backdated = source.iter_keys()[0]
        old = time.time() - 3 * 86400
        source.put_entry(backdated, source.get_entry(backdated).entry, mtime=old)

        remote = remote_store(server)
        up = merge_stores(remote, source)
        assert (up.copied, up.conflicts) == (2, 0)
        out = SqlitePackStore(tmp_path / "out.sqlite")
        down = merge_stores(out, remote)
        assert (down.copied, down.conflicts) == (2, 0)
        for key in source.iter_keys():
            assert out.get_entry(key).encoded() == source.get_entry(key).encoded()
        assert abs(out.get_entry(backdated).mtime - old) < 2.0

    def test_concurrent_shards_rendezvous_without_file_shipping(
        self, tmp_path, server
    ):
        """The acceptance flow, in-process: two sharded sweeps write the
        same live endpoint, and the unsharded rerun (from any client)
        simulates nothing.  No store files move between cache
        locations."""
        for index in range(2):
            with ExperimentEngine(
                cache=ResultCache(backend=remote_store(server))
            ) as engine:
                run_sweep(engine, "sn54", "RND", LOADS, **FAST, shard=(index, 2))
                assert engine.total_stats.cache_hits == 0
        with ExperimentEngine(
            cache=ResultCache(backend=remote_store(server))
        ) as engine:
            curve = run_sweep(engine, "sn54", "RND", LOADS, **FAST)
            assert engine.total_stats.executed == 0
            assert not engine.pool_active
        assert [p.load for p in curve.points] == LOADS


class TestShardedCampaignEndToEnd:
    def test_merged_shards_make_rerun_pure_cache_read(self, tmp_path):
        """The acceptance criterion: two --shard i/2 runs into separate
        stores, merged, make the full unsharded rerun simulate nothing."""
        shard_stats = []
        for index in range(2):
            with ExperimentEngine(
                cache=ResultCache(tmp_path / f"shard{index}")
            ) as engine:
                run_sweep(
                    engine, "sn54", "RND", LOADS, **FAST, shard=(index, 2)
                )
                shard_stats.append(engine.total_stats.snapshot())
        executed = [stats.executed for stats in shard_stats]
        assert sum(executed) == len(LOADS)  # disjoint + covering

        merged = ResultCache(tmp_path / "merged.sqlite")
        for index in range(2):
            merge_stores(merged.backend, LocalDirStore(tmp_path / f"shard{index}"))

        with ExperimentEngine(cache=merged, max_workers=2) as engine:
            curve = run_sweep(engine, "sn54", "RND", LOADS, **FAST)
            assert engine.total_stats.executed == 0
            assert not engine.pool_active
        assert [p.load for p in curve.points] == LOADS

    def test_sharded_equals_unsharded_point_for_point(self, tmp_path):
        unsharded = run_sweep(
            ExperimentEngine(cache=ResultCache(tmp_path / "ref")),
            "sn54",
            "RND",
            LOADS,
            **FAST,
            stop_after_saturation=False,
        )
        by_load = {}
        for index in range(3):
            partial = run_sweep(
                ExperimentEngine(cache=ResultCache(tmp_path / f"s{index}")),
                "sn54",
                "RND",
                LOADS,
                **FAST,
                shard=(index, 3),
            )
            for point in partial.points:
                by_load[point.load] = point
        assert [by_load[p.load] for p in unsharded.points] == unsharded.points

    def test_sharded_compare_and_workloads(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        topos = {"sn54": "sn54", "cm54": "cm54"}
        curves0 = run_compare(engine, topos, "RND", LOADS[:3], **FAST, shard=(0, 2))
        curves1 = run_compare(engine, topos, "RND", LOADS[:3], **FAST, shard=(1, 2))
        points = sum(
            len(curves[label].points)
            for curves in (curves0, curves1)
            for label in topos
        )
        assert points == len(topos) * 3
        table0 = workload_compare(engine, topos, ["barnes", "fft"], **FAST,
                                  shard=(0, 2))
        table1 = workload_compare(engine, topos, ["barnes", "fft"], **FAST,
                                  shard=(1, 2))
        cells0 = {(n, b) for n in table0 for b in table0[n]}
        cells1 = {(n, b) for n in table1 for b in table1[n]}
        assert not cells0 & cells1
        assert len(cells0 | cells1) == 4
        full = workload_compare(engine, topos, ["barnes", "fft"], **FAST)
        assert engine.last_stats.executed == 0  # shards covered the grid
        assert all(set(full[label]) == {"barnes", "fft"} for label in topos)


class TestAutoGC:
    def test_put_past_threshold_triggers_lru_gc(self, tmp_path, caplog):
        cache = ResultCache(tmp_path, max_bytes=1)  # any put overflows
        engine = ExperimentEngine(cache=cache)
        with caplog.at_level(logging.INFO, logger="repro.engine.store"):
            engine.run([fast_spec()])
        assert any("auto-gc" in record.message for record in caplog.records)
        assert cache.stats().entries == 0  # budget of 1 byte keeps nothing

    def test_threshold_keeps_newest_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        engine.run([fast_spec()])
        entry_bytes = cache.stats().size_bytes
        # Budget for ~2 entries; running 4 specs one at a time must evict
        # the oldest as each new one lands.
        cache.max_bytes = int(entry_bytes * 2.5)
        specs = [fast_spec(load=0.02 + 0.01 * i) for i in range(4)]
        for spec in specs:
            engine.run([spec])
            time.sleep(0.02)  # keep mtime order unambiguous
        assert cache.stats().size_bytes <= cache.max_bytes
        assert cache.get(specs[-1]) is not None

    def test_env_var_sets_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert ResultCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "junk")
        assert ResultCache(tmp_path).max_bytes is None
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert ResultCache(tmp_path).max_bytes is None


class TestRunnerDurability:
    def test_partial_results_survive_a_failing_batch(self, tmp_path):
        """Results that finished before a miss raised are flushed to the
        store — an interrupted shard never re-simulates paid-for work."""
        from repro.engine import topology_fingerprint
        from repro.topos import make_network

        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        good = fast_spec()
        bad = fast_spec(topology="fp:" + topology_fingerprint(make_network("cm54")))
        with pytest.raises(LookupError):  # no topology supplied for the fingerprint
            engine.run([good, bad])
        assert cache.get(good) is not None


class TestPoolLifecycle:
    def test_pure_cache_run_never_starts_pool(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        specs = [fast_spec(load=x) for x in (0.02, 0.05, 0.08)]
        ExperimentEngine(cache=cache).run(specs)

        import repro.engine.runner as runner_module

        def poisoned(*args, **kwargs):
            raise AssertionError("pool started on a pure cache read")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", poisoned)
        with ExperimentEngine(cache=cache, max_workers=4) as engine:
            results = engine.run(specs)
            assert engine.last_stats.cache_hits == len(specs)
            assert not engine.pool_active
        assert len(results) == len(specs)

    def test_close_is_idempotent_and_engine_reusable(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path), max_workers=2)
        specs = [fast_spec(load=x) for x in (0.02, 0.05, 0.08)]
        engine.run(specs)
        assert engine.pool_active  # misses went parallel
        engine.close()
        engine.close()
        assert not engine.pool_active
        engine.run(specs)  # cache hits; must not resurrect the pool
        assert not engine.pool_active
        engine.close()


class TestCursoredIteration:
    """The redesigned ``iter_keys`` contract on every backend: one
    sorted bounded page per call, resumable via ``start_after``."""

    def seed(self, backend, n=7):
        keys = [f"{i:02d}" + "ab" * 31 for i in range(n)]
        for key in keys:
            backend.put_payload(key, "sim", {"k": key})
        return keys

    def test_empty_store_yields_empty_page(self, backend):
        assert backend.iter_keys() == []
        assert backend.iter_keys(start_after="zz" * 32, limit=5) == []
        assert list(iter_all_keys(backend)) == []

    def test_start_after_past_last_key(self, backend):
        keys = self.seed(backend)
        assert backend.iter_keys(start_after=keys[-1]) == []
        assert backend.iter_keys(start_after="zz" * 32) == []

    def test_limit_one_pages_through_everything(self, backend):
        keys = self.seed(backend)
        seen = []
        cursor = None
        for _ in range(len(keys) + 2):
            page = backend.iter_keys(start_after=cursor, limit=1)
            if not page:
                break
            assert len(page) == 1
            seen.extend(page)
            cursor = page[-1]
        assert seen == sorted(keys)

    def test_pages_partition_the_key_space(self, backend):
        keys = self.seed(backend)
        pages = list(iter_key_pages(backend, batch=3))
        assert [len(p) for p in pages] == [3, 3, 1]
        assert [k for page in pages for k in page] == sorted(keys)

    def test_limit_zero_is_empty_not_unbounded(self, backend):
        self.seed(backend)
        assert backend.iter_keys(limit=0) == []

    def test_cursor_survives_concurrent_writes(self, backend):
        """Keyset semantics: entries added or removed behind an
        in-flight cursor never make it skip or re-serve keys at or
        before the cursor."""
        keys = self.seed(backend, n=6)
        first = backend.iter_keys(limit=3)
        assert first == sorted(keys)[:3]
        # A writer lands a key *behind* the cursor and one ahead of it.
        behind = "00" + "ff" * 31
        ahead = "98" + "ff" * 31
        backend.put_payload(behind, "sim", {"k": "behind"})
        backend.put_payload(ahead, "sim", {"k": "ahead"})
        rest = []
        cursor = first[-1]
        while True:
            page = backend.iter_keys(start_after=cursor, limit=3)
            if not page:
                break
            rest.extend(page)
            cursor = page[-1]
        assert rest == sorted(keys)[3:] + [ahead]  # ahead seen, behind not
        assert behind not in rest
        full = list(iter_all_keys(backend))
        assert full == sorted(keys + [behind, ahead])


class TestObjectStore:
    """Object-store specifics beyond the shared equivalence suite:
    location parsing, the bucket wire protocol, and merge transport."""

    @pytest.fixture
    def bucket(self):
        with FakeBucketServer() as server:
            yield server

    def test_obj_location_parsing(self, bucket):
        store = open_object_store(f"obj:{bucket.url}/ci/campaign")
        assert isinstance(store, ObjectStore)
        assert store.prefix == "campaign"
        store.put_payload("aa" * 32, "sim", {"x": 1})
        assert store.get_payload("aa" * 32, "sim") == {"x": 1}
        store.close()

    def test_s3_location_uses_endpoint_env(self, bucket, monkeypatch):
        monkeypatch.setenv("REPRO_OBJECT_ENDPOINT", bucket.url)
        store = open_object_store("s3://ci/campaign")
        store.put_payload("aa" * 32, "sim", {"x": 1})
        same = open_object_store("s3://ci/campaign")
        assert same.get_payload("aa" * 32, "sim") == {"x": 1}
        other_prefix = open_object_store("s3://ci/elsewhere")
        assert other_prefix.stats().entries == 0
        for s in (store, same, other_prefix):
            s.close()

    def test_s3_location_without_boto3_names_the_cure(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBJECT_ENDPOINT", raising=False)
        import importlib.util

        if importlib.util.find_spec("boto3") is not None:
            pytest.skip("boto3 installed; the guarded-import path is moot")
        with pytest.raises(ObjectStoreError, match="REPRO_OBJECT_ENDPOINT"):
            open_object_store("s3://bucket/prefix")

    def test_bad_locations_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            open_object_store("obj:ftp://host/bucket")
        with pytest.raises(ValueError):
            open_object_store("obj:http://127.0.0.1:1/")
        monkeypatch.setenv("REPRO_OBJECT_ENDPOINT", "http://127.0.0.1:1")
        with pytest.raises(ValueError):
            open_object_store("s3://")

    def test_unreachable_endpoint_is_one_clear_error(self):
        store = open_object_store("obj:http://127.0.0.1:1/ci/campaign")
        with pytest.raises(ObjectStoreError, match="unreachable"):
            store.put_payload("aa" * 32, "sim", {"x": 1})

    def test_merge_round_trip_is_byte_identical(self, tmp_path, bucket):
        """pack -> bucket -> fresh pack preserves canonical bytes and
        LRU timestamps: the bucket is a transport, not a transform."""
        source = SqlitePackStore(tmp_path / "src.sqlite")
        ExperimentEngine(cache=ResultCache(backend=source)).run(
            [fast_spec(), fast_spec(load=0.08)]
        )
        backdated = source.iter_keys()[0]
        old = time.time() - 3 * 86400
        source.put_entry(backdated, source.get_entry(backdated).entry, mtime=old)

        remote = ObjectStore(HTTPTransport(bucket.url, "ci"), prefix="campaign")
        up = merge_stores(remote, source)
        assert (up.copied, up.conflicts) == (2, 0)
        out = SqlitePackStore(tmp_path / "out.sqlite")
        down = merge_stores(out, remote)
        assert (down.copied, down.conflicts) == (2, 0)
        for key in source.iter_keys():
            assert out.get_entry(key).encoded() == source.get_entry(key).encoded()
        assert abs(out.get_entry(backdated).mtime - old) < 2.0
        remote.close()

    def test_request_log_shows_batched_puts(self, bucket):
        store = ObjectStore(HTTPTransport(bucket.url, "ci"), prefix="campaign")
        store.put_payload_many(
            [(f"{i:02d}" + "aa" * 31, "sim", {"i": i}, None) for i in range(5)]
        )
        puts = [line for line in bucket.request_log if line.startswith("PUT ")]
        assert len(puts) == 5
        store.close()


class CappedTransport:
    """Delegating transport that fails the test on any page or batch
    larger than the cap — the bucket-level batch-size assertion."""

    def __init__(self, inner, cap):
        self.inner = inner
        self.cap = cap
        self.location = inner.location
        self.max_seen = 0

    def _check(self, n):
        self.max_seen = max(self.max_seen, n)
        assert n <= self.cap, f"transport batch of {n} keys exceeds cap {self.cap}"

    def get_many(self, keys):
        self._check(len(keys))
        return self.inner.get_many(keys)

    def put_many(self, items):
        self._check(len(items))
        return self.inner.put_many(items)

    def touch_many(self, items):
        self._check(len(items))
        return self.inner.touch_many(items)

    def delete_many(self, keys):
        self._check(len(keys))
        return self.inner.delete_many(keys)

    def list_page(self, prefix, start_after, limit):
        self._check(limit)
        page = self.inner.list_page(prefix, start_after, limit)
        self._check(len(page))
        return page

    def close(self):
        self.inner.close()


class CappedBackend:
    """Delegating backend that fails the test on any single key fetch
    larger than the cap — the store-level batch-size assertion."""

    def __init__(self, inner, cap):
        self.inner = inner
        self.cap = cap
        self.location = inner.location
        self.max_seen = 0
        self.pages = 0

    def _check(self, n):
        self.max_seen = max(self.max_seen, n)
        assert n <= self.cap, f"key fetch of {n} keys exceeds cap {self.cap}"

    def iter_keys(self, start_after=None, limit=None):
        page = list(self.inner.iter_keys(start_after=start_after, limit=limit))
        self._check(len(page))
        self.pages += 1
        return page

    def get_entry_many(self, keys):
        keys = list(keys)
        self._check(len(keys))
        return self.inner.get_entry_many(keys)

    def get_payload_many(self, keys, kind):
        keys = list(keys)
        self._check(len(keys))
        return self.inner.get_payload_many(keys, kind)

    def put_entry_many(self, entries):
        entries = list(entries)
        self._check(len(entries))
        return self.inner.put_entry_many(entries)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestBoundedIterationAt50k:
    """The acceptance bound: a 50k-entry store's stats, gc, and merge
    complete with every key fetch capped at 512 keys."""

    CAP = 512
    N = 50_000

    def entries(self):
        now = time.time()
        for i in range(self.N):
            # No "spec" field: reachable under every schema check, and
            # small enough that 50k of them build in a few seconds.
            yield RawEntry(
                key=f"{i:08x}" + "00" * 28,
                entry={"schema": SCHEMA_VERSION, "kind": "sim", "result": {"i": i}},
                mtime=now - (self.N - i),
            )

    def fill(self, backend):
        chunk = []
        for raw in self.entries():
            chunk.append(raw)
            if len(chunk) == 500:
                backend.put_entry_many(chunk)
                chunk = []
        if chunk:
            backend.put_entry_many(chunk)

    def test_sqlite_stats_merge_gc_stay_bounded(self, tmp_path):
        transport = CappedTransport(MemoryTransport(), self.CAP)
        bucket_store = ObjectStore(transport, prefix="repro")
        pack = SqlitePackStore(tmp_path / "big.sqlite")
        self.fill(pack)

        source = CappedBackend(pack, self.CAP)
        stats = source.stats()
        assert stats.entries == self.N
        assert stats.reclaimable_entries == 0

        # merge streams cursored pages through both capped wrappers.
        report = merge_stores(bucket_store, source)
        assert report.copied == self.N
        assert source.pages >= self.N // DEFAULT_KEY_BATCH

        # Object-store maintenance paths observe the transport cap.
        assert bucket_store.stats().entries == self.N
        gc_report = bucket_store.gc(max_bytes=0)
        assert gc_report.removed_entries == self.N

        # SQLite gc pages internally; the pack still empties fully.
        pack_report = pack.gc(max_bytes=0)
        assert pack_report.removed_entries == self.N
        assert pack.stats().entries == 0
        assert transport.max_seen <= self.CAP
        assert source.max_seen <= self.CAP


class TestWireProtocolV2:
    @pytest.fixture
    def server(self, tmp_path):
        with StoreServer(
            SqlitePackStore(tmp_path / "served.sqlite"), quiet=True
        ) as server:
            yield server

    def test_health_advertises_protocol(self, server):
        health = remote_store(server).ping()
        assert health["protocol"] == http_module.PROTOCOL_VERSION
        assert health["protocol"] >= 2

    def test_keys_list_pages_and_next_cursor(self, server):
        store = remote_store(server)
        keys = [f"{i:02d}" + "cd" * 31 for i in range(5)]
        for key in keys:
            store.put_payload(key, "sim", {"k": key})
        first = store._call("keys/list", {"start_after": None, "limit": 2})
        assert first["keys"] == keys[:2]
        assert first["next"] == keys[1]
        second = store._call("keys/list", {"start_after": first["next"], "limit": 9})
        assert second["keys"] == keys[2:]
        assert second["next"] is None

    def test_legacy_keys_endpoint_still_serves_full_dump(self, server):
        store = remote_store(server)
        keys = [f"{i:02d}" + "ef" * 31 for i in range(4)]
        for key in keys:
            store.put_payload(key, "sim", {"k": key})
        assert store._call("keys")["keys"] == keys

    def test_client_falls_back_to_legacy_keys_on_old_server(
        self, server, monkeypatch
    ):
        """A pre-redesign server (no keys/list route) still iterates
        correctly: the client notices the 404 once, then pages the
        legacy full dump client-side."""
        monkeypatch.delitem(http_module._POST_ROUTES, "/keys/list")
        store = remote_store(server)
        keys = [f"{i:02d}" + "aa" * 31 for i in range(5)]
        for key in keys:
            store.put_payload(key, "sim", {"k": key})
        assert store.iter_keys(limit=2) == keys[:2]
        assert store._legacy_keys is True
        assert store.iter_keys(start_after=keys[1], limit=2) == keys[2:4]
        assert list(iter_all_keys(store, batch=2)) == keys
        # A fresh client (fresh fallback flag) sees the same key space.
        assert list(iter_all_keys(remote_store(server), batch=3)) == keys


class TestMergeObservability:
    def test_merge_emits_progress_pages_and_counters(self, tmp_path):
        from repro.obs.metrics import REGISTRY

        a = SqlitePackStore(tmp_path / "a.sqlite")
        b = SqlitePackStore(tmp_path / "b.sqlite")
        keys = [f"{i:02d}" + "bb" * 31 for i in range(7)]
        for key in keys:
            a.put_payload(key, "sim", {"k": key})
        b.put_payload(keys[0], "sim", {"k": keys[0]})  # one skip

        before = REGISTRY.value("repro_store_merge_keys_total", outcome="copied")
        deltas = []
        report = merge_stores(b, a, progress=deltas.append, batch=3)
        assert report.copied == 6
        assert report.skipped == 1
        assert len(deltas) == 3  # pages of 3, 3, 1
        assert sum(d.copied for d in deltas) == report.copied
        assert sum(d.skipped for d in deltas) == report.skipped
        after = REGISTRY.value("repro_store_merge_keys_total", outcome="copied")
        assert after - before == 6

    def test_transfer_line_renders_keys_bytes_eta(self):
        import io

        from repro.obs import TransferLine

        stream = io.StringIO()
        line = TransferLine(10, stream=stream, label="transfer")
        line.advance(keys=4, nbytes=2_000_000)
        text = stream.getvalue()
        assert "transfer: 4/10 keys" in text
        assert "2.0 MB" in text
        line.advance(keys=6, nbytes=500_000)
        line.finish()
        assert stream.getvalue().endswith("\n")
