"""Golden-digest regression tests for the simulator core.

The activity-tracked scheduler (active router/link sets + fast-forward,
see :mod:`repro.sim.network`) is a pure performance optimization: for any
(topology, pattern, flow control, seed) it must produce **bit-identical**
``SimResult``\\ s to the naive lockstep core it replaced.  These tests pin
that contract: every case in :data:`MATRIX` is simulated and its
``SimResult.to_dict()`` is hashed; the digests were recorded *before* the
refactor (``tests/golden/sim_digests.json``) and any drift — one cycle,
one latency sample, one reordered packet — fails the suite.

Regenerate (only after an intentional, spec-version-bumping semantic
change to the simulator)::

    PYTHONPATH=src python tests/test_golden_digests.py --regen
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.engine.campaign import traffic_for_token
from repro.engine.spec import ExperimentSpec, SyntheticTraffic
from repro.sim import NoCSimulator, SimConfig, cbr, eb_var, el_links
from repro.topos import make_network
from repro.traffic import SyntheticSource

GOLDEN_PATH = Path(__file__).parent / "golden" / "sim_digests.json"
ADAPTIVE_GOLDEN_PATH = Path(__file__).parent / "golden" / "adaptive_digests.json"
SPEC_HASH_PATH = Path(__file__).parent / "golden" / "spec_hashes.json"

CONFIGS = {
    "eb": SimConfig,
    "ebvar": eb_var,
    "el": el_links,
    "cbr12": lambda: cbr(12),
}

#: (topology, pattern, config key, load, seed, warmup, measure, drain).
#: Covers both flow controls and the CBR across a low-diameter SN, a
#: flattened butterfly, and a torus (dateline VCs), under a randomized and
#: an adversarial pattern, at a sub-saturation and a contended load.  The
#: very-low-load rows matter specifically for the fast-forward path: only
#: when the network drains empty *inside* the measurement window do
#: ``now`` jumps overlap live injection, which is where a skipped or
#: double-consumed ``packets_at`` draw would desynchronize the RNG.
MATRIX: list[tuple[str, str, str, float, int, int, int, int]] = [
    (topo, pattern, cfg, 0.08, 1, 80, 200, 600)
    for topo in ("sn54", "fbf3", "t2d4")
    for pattern in ("RND", "ADV1")
    for cfg in ("eb", "el", "cbr12")
] + [
    ("sn54", "RND", cfg, 0.30, 2, 80, 200, 600)
    for cfg in ("eb", "ebvar", "el", "cbr12")
] + [
    ("sn54", "RND", cfg, 0.02, 1, 100, 250, 600)
    for cfg in ("eb", "ebvar", "el", "cbr12")
] + [
    ("sn200", "RND", "eb", 0.008, 1, 200, 500, 1200),
    ("sn200", "ADV2", "el", 0.01, 3, 200, 500, 1200),
]


#: (topology, traffic token, routing, config key, load, seed, warmup,
#: measure, drain).  The adaptive/non-stationary corpus: every routing
#: name and traffic kind added in SPEC_VERSION 4, run through the exact
#: spec path the engine uses (``ExperimentSpec.execute``), so a drift in
#: the live-occupancy oracle, the deflection chooser, or any variant's
#: injection schedule moves a digest here.
ADAPTIVE_MATRIX: list[tuple[str, str, str, str, float, int, int, int, int]] = [
    ("sn54", "ADV1", "ugal-l", "eb", 0.12, 1, 80, 200, 600),
    ("sn54", "ADV2", "ugal-g", "eb", 0.12, 1, 80, 200, 600),
    ("sn54", "ADV1", "deflect", "eb", 0.12, 1, 80, 200, 600),
    ("sn54", "ADV1", "valiant", "el", 0.10, 1, 80, 200, 600),
    ("fbf3", "ADV1", "xy-adapt", "eb", 0.10, 1, 80, 200, 600),
    ("sn54", "burst:RND:16+48", "default", "eb", 0.10, 1, 80, 200, 600),
    ("sn54", "burst:ADV1:32+96:0.02", "ugal-l", "el", 0.10, 2, 80, 200, 600),
    ("sn72", "burst:ADV2:64+64", "deflect", "eb", 0.12, 1, 80, 200, 600),
    ("sn54", "hotspot:RND:0.3:3", "default", "eb", 0.08, 1, 80, 200, 600),
    ("sn54", "hotspot:RND:0.25:4", "deflect", "cbr12", 0.08, 1, 80, 200, 600),
    ("fbf3", "hotspot:SHF:0.4:2", "xy-adapt", "el", 0.08, 1, 80, 200, 600),
    ("sn54", "transient:ADV1+ADV2:64", "default", "eb", 0.10, 1, 80, 200, 600),
    ("sn72", "transient:ADV1+ADV2:64", "ugal-l", "eb", 0.10, 1, 80, 200, 600),
]


def case_id(case: tuple) -> str:
    topo, pattern, cfg, load, seed, warmup, measure, drain = case
    return f"{topo}/{pattern}/{cfg}/load={load:g}/seed={seed}/{warmup}+{measure}+{drain}"


def adaptive_case_id(case: tuple) -> str:
    topo, token, routing, cfg, load, seed, warmup, measure, drain = case
    return (
        f"{topo}/{token}/{routing}/{cfg}/load={load:g}/seed={seed}/"
        f"{warmup}+{measure}+{drain}"
    )


def adaptive_spec(case: tuple) -> ExperimentSpec:
    topo_sym, token, routing, cfg, load, seed, warmup, measure, drain = case
    topology = make_network(topo_sym)
    return ExperimentSpec(
        topology=topo_sym,
        source=traffic_for_token(token, load, topology.num_nodes),
        config=CONFIGS[cfg](),
        routing=routing,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
    )


def run_adaptive_case(case: tuple) -> dict:
    return adaptive_spec(case).execute().to_dict()


def run_case(case: tuple) -> dict:
    topo_sym, pattern, cfg, load, seed, warmup, measure, drain = case
    topology = make_network(topo_sym)
    sim = NoCSimulator(topology, CONFIGS[cfg](), seed=seed)
    source = SyntheticSource(topology, pattern, load)
    result = sim.run(source, warmup=warmup, measure=measure, drain=drain)
    return result.to_dict()


def digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def load_golden() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())["digests"]


@pytest.mark.parametrize("case", MATRIX, ids=case_id)
def test_simresult_matches_golden_digest(case):
    golden = load_golden()
    assert case_id(case) in golden, "regenerate tests/golden/sim_digests.json"
    assert digest(run_case(case)) == golden[case_id(case)]


def test_matrix_and_golden_file_agree():
    """Every matrix case is pinned and no stale digests linger."""
    golden = load_golden()
    assert sorted(golden) == sorted(case_id(c) for c in MATRIX)


def test_repeated_runs_are_deterministic():
    """Two fresh simulators over the same case agree exactly (no hidden
    global state beyond the packet-id counter, which to_dict excludes)."""
    case = MATRIX[0]
    assert run_case(case) == run_case(case)


def load_adaptive_golden() -> dict[str, str]:
    return json.loads(ADAPTIVE_GOLDEN_PATH.read_text())["digests"]


@pytest.mark.parametrize("case", ADAPTIVE_MATRIX, ids=adaptive_case_id)
def test_adaptive_case_matches_golden_digest(case):
    golden = load_adaptive_golden()
    cid = adaptive_case_id(case)
    assert cid in golden, "regenerate tests/golden/adaptive_digests.json"
    assert digest(run_adaptive_case(case)) == golden[cid]


def test_adaptive_matrix_and_golden_file_agree():
    golden = load_adaptive_golden()
    assert sorted(golden) == sorted(adaptive_case_id(c) for c in ADAPTIVE_MATRIX)


def test_adaptive_specs_serialize_as_version_4():
    """Every adaptive/non-stationary case needs — and declares — spec
    version 4 (new routing name, new traffic kind, or both)."""
    for case in ADAPTIVE_MATRIX:
        spec = adaptive_spec(case)
        payload = spec.to_dict()
        source = payload["source"]
        legacy = source["kind"] == "synthetic" and payload["routing"] in {
            "default",
            "minimal",
            "dor",
            "valiant",
            "ugal-l",
            "ugal-g",
        }
        assert payload["spec_version"] == (3 if legacy else 4), adaptive_case_id(case)


def test_legacy_spec_hashes_unchanged_by_version_bump():
    """The SPEC_VERSION 3 -> 4 bump must not move any pre-existing key.

    ``tests/golden/spec_hashes.json`` holds the ``content_hash()`` of all
    28 golden-matrix specs *recorded under the version-3 code*, before
    the version-4 traffic/routing additions existed.  Minimum-required-
    version serialization keeps those specs emitting ``spec_version: 3``
    byte-for-byte, so every cached result stays addressable.
    """
    golden = json.loads(SPEC_HASH_PATH.read_text())["hashes"]
    assert sorted(golden) == sorted(case_id(c) for c in MATRIX)
    for case in MATRIX:
        topo, pattern, cfg, load, seed, warmup, measure, drain = case
        spec = ExperimentSpec(
            topology=topo,
            source=SyntheticTraffic(pattern, load),
            config=CONFIGS[cfg](),
            routing="default",
            seed=seed,
            warmup=warmup,
            measure=measure,
            drain=drain,
        )
        assert spec.to_dict()["spec_version"] == 3, case_id(case)
        assert spec.content_hash() == golden[case_id(case)], case_id(case)


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    digests = {}
    for case in MATRIX:
        payload = run_case(case)
        digests[case_id(case)] = digest(payload)
        print(f"{case_id(case)}  cycles={payload['cycles']}"
              f" delivered={payload['delivered_packets']}")
    GOLDEN_PATH.write_text(json.dumps(
        {"note": "sha256 over canonical SimResult.to_dict() JSON; "
                 "regenerate only on intentional semantic changes "
                 "(bump repro.engine.spec.SPEC_VERSION alongside)",
         "digests": digests},
        indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")


def regenerate_adaptive() -> None:
    ADAPTIVE_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    digests = {}
    for case in ADAPTIVE_MATRIX:
        payload = run_adaptive_case(case)
        digests[adaptive_case_id(case)] = digest(payload)
        print(f"{adaptive_case_id(case)}  cycles={payload['cycles']}"
              f" delivered={payload['delivered_packets']}")
    ADAPTIVE_GOLDEN_PATH.write_text(json.dumps(
        {"note": "sha256 over canonical SimResult.to_dict() JSON for the "
                 "adaptive-routing / non-stationary-traffic corpus (run "
                 "via ExperimentSpec.execute); regenerate only on "
                 "intentional semantic changes (bump "
                 "repro.engine.spec.SPEC_VERSION alongside)",
         "digests": digests},
        indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {ADAPTIVE_GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen-adaptive" in sys.argv:
        # The adaptive corpus alone — the classic 28-case file is append-
        # only history and must stay byte-identical across spec versions.
        regenerate_adaptive()
    elif "--regen" in sys.argv:
        regenerate()
        regenerate_adaptive()
    else:
        raise SystemExit("refusing to run without --regen / --regen-adaptive")
