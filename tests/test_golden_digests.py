"""Golden-digest regression tests for the simulator core.

The activity-tracked scheduler (active router/link sets + fast-forward,
see :mod:`repro.sim.network`) is a pure performance optimization: for any
(topology, pattern, flow control, seed) it must produce **bit-identical**
``SimResult``\\ s to the naive lockstep core it replaced.  These tests pin
that contract: every case in :data:`MATRIX` is simulated and its
``SimResult.to_dict()`` is hashed; the digests were recorded *before* the
refactor (``tests/golden/sim_digests.json``) and any drift — one cycle,
one latency sample, one reordered packet — fails the suite.

Regenerate (only after an intentional, spec-version-bumping semantic
change to the simulator)::

    PYTHONPATH=src python tests/test_golden_digests.py --regen
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.sim import NoCSimulator, SimConfig, cbr, eb_var, el_links
from repro.topos import make_network
from repro.traffic import SyntheticSource

GOLDEN_PATH = Path(__file__).parent / "golden" / "sim_digests.json"

CONFIGS = {
    "eb": SimConfig,
    "ebvar": eb_var,
    "el": el_links,
    "cbr12": lambda: cbr(12),
}

#: (topology, pattern, config key, load, seed, warmup, measure, drain).
#: Covers both flow controls and the CBR across a low-diameter SN, a
#: flattened butterfly, and a torus (dateline VCs), under a randomized and
#: an adversarial pattern, at a sub-saturation and a contended load.  The
#: very-low-load rows matter specifically for the fast-forward path: only
#: when the network drains empty *inside* the measurement window do
#: ``now`` jumps overlap live injection, which is where a skipped or
#: double-consumed ``packets_at`` draw would desynchronize the RNG.
MATRIX: list[tuple[str, str, str, float, int, int, int, int]] = [
    (topo, pattern, cfg, 0.08, 1, 80, 200, 600)
    for topo in ("sn54", "fbf3", "t2d4")
    for pattern in ("RND", "ADV1")
    for cfg in ("eb", "el", "cbr12")
] + [
    ("sn54", "RND", cfg, 0.30, 2, 80, 200, 600)
    for cfg in ("eb", "ebvar", "el", "cbr12")
] + [
    ("sn54", "RND", cfg, 0.02, 1, 100, 250, 600)
    for cfg in ("eb", "ebvar", "el", "cbr12")
] + [
    ("sn200", "RND", "eb", 0.008, 1, 200, 500, 1200),
    ("sn200", "ADV2", "el", 0.01, 3, 200, 500, 1200),
]


def case_id(case: tuple) -> str:
    topo, pattern, cfg, load, seed, warmup, measure, drain = case
    return f"{topo}/{pattern}/{cfg}/load={load:g}/seed={seed}/{warmup}+{measure}+{drain}"


def run_case(case: tuple) -> dict:
    topo_sym, pattern, cfg, load, seed, warmup, measure, drain = case
    topology = make_network(topo_sym)
    sim = NoCSimulator(topology, CONFIGS[cfg](), seed=seed)
    source = SyntheticSource(topology, pattern, load)
    result = sim.run(source, warmup=warmup, measure=measure, drain=drain)
    return result.to_dict()


def digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def load_golden() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())["digests"]


@pytest.mark.parametrize("case", MATRIX, ids=case_id)
def test_simresult_matches_golden_digest(case):
    golden = load_golden()
    assert case_id(case) in golden, "regenerate tests/golden/sim_digests.json"
    assert digest(run_case(case)) == golden[case_id(case)]


def test_matrix_and_golden_file_agree():
    """Every matrix case is pinned and no stale digests linger."""
    golden = load_golden()
    assert sorted(golden) == sorted(case_id(c) for c in MATRIX)


def test_repeated_runs_are_deterministic():
    """Two fresh simulators over the same case agree exactly (no hidden
    global state beyond the packet-id counter, which to_dict excludes)."""
    case = MATRIX[0]
    assert run_case(case) == run_case(case)


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    digests = {}
    for case in MATRIX:
        payload = run_case(case)
        digests[case_id(case)] = digest(payload)
        print(f"{case_id(case)}  cycles={payload['cycles']}"
              f" delivered={payload['delivered_packets']}")
    GOLDEN_PATH.write_text(json.dumps(
        {"note": "sha256 over canonical SimResult.to_dict() JSON; "
                 "regenerate only on intentional semantic changes "
                 "(bump repro.engine.spec.SPEC_VERSION alongside)",
         "digests": digests},
        indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("refusing to run without --regen")
    regenerate()
