"""Cross-module property-based tests (hypothesis) on system invariants."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlimNoC, layout_coordinates, mms_graph
from repro.core.costmodel import round_trip_cycles
from repro.core.placement import wire_path
from repro.routing import (
    DeflectionRouting,
    MinimalPaths,
    QueueOracle,
    StaticMinimalRouting,
    UGALRouting,
)
from repro.sim import NoCSimulator, SimConfig, link_latency
from repro.topos import make_network
from repro.traffic import (
    BurstSource,
    HotspotSource,
    SyntheticSource,
    TransientSource,
    make_pattern,
)


@given(st.sampled_from([3, 4, 5, 8, 9]), st.sampled_from(["sn_basic", "sn_subgr", "sn_gr"]))
@settings(max_examples=30, deadline=None)
def test_layout_wire_paths_cover_manhattan(q, layout):
    """Every placed wire's slot count equals its Manhattan length + 1."""
    graph = mms_graph(q)
    coords = layout_coordinates(graph, layout)
    rng = random.Random(q)
    edges = graph.edges()
    for i, j in rng.sample(edges, min(20, len(edges))):
        ci, cj = coords[i], coords[j]
        manhattan = abs(ci[0] - cj[0]) + abs(ci[1] - cj[1])
        assert len(wire_path(ci, cj)) == manhattan + 1


@given(st.integers(0, 40), st.integers(1, 12))
@settings(max_examples=80, deadline=None)
def test_rtt_and_link_latency_consistent(distance, h):
    """RTT = 2 x link cycles + 3 for any distance and SMART reach."""
    rtt = round_trip_cycles(distance, h)
    cycles = link_latency(distance, h)
    if distance == 0:
        assert rtt == 3
    else:
        assert rtt == 2 * cycles + 3 or cycles == 1


@given(st.integers(0, 199), st.integers(0, 199))
@settings(max_examples=50, deadline=None)
def test_minimal_paths_symmetric_length(src, dst):
    """Undirected graph: |path(a,b)| == |path(b,a)|."""
    paths = MinimalPaths(make_network("sn200"))
    assert paths.hop_count(src // 4, dst // 4) == paths.hop_count(dst // 4, src // 4)


@given(st.integers(1, 10_000))
@settings(max_examples=40, deadline=None)
def test_sim_single_packet_always_delivered(seed):
    """Any single random packet is delivered, flits in order."""
    topo = make_network("sn54")
    rng = random.Random(seed)
    src = rng.randrange(topo.num_nodes)
    dst = rng.randrange(topo.num_nodes)
    if src == dst:
        dst = (dst + 1) % topo.num_nodes
    sim = NoCSimulator(topo, SimConfig(), seed=seed)
    packet = sim.inject_packet(src, dst, size=rng.randint(1, 8))
    for _ in range(500):
        sim.step()
        if packet.ejected >= 0:
            break
    assert packet.ejected > packet.created
    routing = StaticMinimalRouting(topo, num_vcs=2)
    expected = routing.route(topo.node_router(src), topo.node_router(dst))
    assert packet.route.path == expected.path


@given(st.sampled_from(["RND", "SHF", "REV", "ADV1", "ADV2", "ASYM"]))
@settings(max_examples=12, deadline=None)
def test_every_pattern_simulates_clean(pattern):
    """Low-load run: all created packets delivered for every pattern."""
    topo = make_network("sn54")
    sim = NoCSimulator(topo, seed=9)
    res = sim.run(
        SyntheticSource(topo, pattern, 0.05), warmup=100, measure=200, drain=600
    )
    assert res.delivered_packets == res.created_packets
    assert not res.saturated


@given(st.integers(2, 6), st.integers(2, 9))
@settings(max_examples=20, deadline=None)
def test_slimnoc_scales(q_index, p):
    """Any (q, p) pair builds a consistent network."""
    q = [2, 3, 4, 5, 7, 8, 9][q_index]
    sn = SlimNoC(q, p)
    assert sn.num_nodes == 2 * q * q * p
    assert sn.diameter == 2
    assert sn.router_radix == sn.network_radix + p


@pytest.mark.parametrize("symbol", ["sn200", "fbf3", "pfbf4", "t2d4"])
def test_throughput_never_exceeds_offered(symbol):
    """Conservation: accepted throughput <= offered load."""
    topo = make_network(symbol)
    sim = NoCSimulator(topo, seed=3)
    res = sim.run(SyntheticSource(topo, "RND", 0.1), warmup=150, measure=400, drain=900)
    assert res.throughput <= 0.1 * 1.25  # Bernoulli noise margin


# --- non-stationary traffic variants -----------------------------------------

_TOPO54 = make_network("sn54")


def _variant_sources(seed):
    """One instance of every traffic variant over sn54 at a busy rate."""
    return [
        SyntheticSource(_TOPO54, "RND", 0.3, seed=seed),
        BurstSource(_TOPO54, "ADV1", 0.2, on_cycles=16, off_cycles=48, seed=seed),
        BurstSource(
            _TOPO54, "RND", 0.2, on_cycles=8, off_cycles=8, off_load=0.05, seed=seed
        ),
        HotspotSource(
            _TOPO54, "RND", 0.3, hotspots=(0, 13, 27), fraction=0.4, seed=seed
        ),
        TransientSource(_TOPO54, ("ADV1", "ADV2"), 0.3, period=32, seed=seed),
    ]


@given(st.integers(1, 10_000))
@settings(max_examples=25, deadline=None)
def test_variant_destinations_valid_and_never_self(seed):
    """Every traffic variant emits in-range destinations != source."""
    n = _TOPO54.num_nodes
    for source in _variant_sources(seed):
        rng = random.Random(seed)
        for cycle in range(40):
            for src, dst, size, kind, reply, reply_size in source.packets_at(
                cycle, rng
            ):
                assert 0 <= src < n and 0 <= dst < n
                assert dst != src
                assert size == source.packet_flits and kind == "data"


@given(
    st.integers(1, 64),
    st.integers(0, 128),
    st.integers(0, 500),
    st.integers(1, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_burst_phase_boundaries_exact(on_cycles, off_cycles, phase, seed):
    """off_load=0 injects nothing, ever, outside the on-phase — and the
    on-phase is exactly ``(cycle + phase) % period < on_cycles``."""
    period = on_cycles + off_cycles
    rate = min(0.5, 6 * on_cycles / period)  # keep peak under the ceiling
    source = BurstSource(
        _TOPO54, "RND", rate, on_cycles=on_cycles, off_cycles=off_cycles, phase=phase
    )
    rng = random.Random(seed)
    for cycle in range(3 * period):
        expected = (cycle + phase) % period < on_cycles
        assert source.in_burst(cycle) == expected
        packets = list(source.packets_at(cycle, rng))
        if not expected:
            assert packets == []


def test_burst_mean_load_is_conserved():
    """Peak load exactly compensates the off-phase deficit."""
    for off_load in (0.0, 0.02, 0.1):
        source = BurstSource(
            _TOPO54, "RND", 0.2, on_cycles=64, off_cycles=192, off_load=off_load
        )
        mean = (
            source.peak_load * source.on_cycles + off_load * source.off_cycles
        ) / source.period
        assert math.isclose(mean, 0.2, rel_tol=0, abs_tol=1e-12)
        assert source.rate == 0.2  # the configured rate stays the mean


@given(
    st.lists(st.integers(0, 53), min_size=1, max_size=8),
    st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_hotspot_mass_sums_to_one(hotspots, fraction):
    """Hotspot weights and the destination-mass split each sum to 1."""
    source = HotspotSource(
        _TOPO54, "RND", 0.2, hotspots=tuple(hotspots), fraction=fraction
    )
    assert math.isclose(sum(source.hotspot_weights.values()), 1.0, abs_tol=1e-12)
    assert math.isclose(sum(source.destination_mass().values()), 1.0, abs_tol=1e-12)
    assert len(source.hotspot_weights) == len(set(hotspots))


def test_hotspot_full_fraction_targets_only_hotspots():
    """fraction=1.0: every destination is a hotspot node."""
    hotspots = (3, 17, 40)
    source = HotspotSource(_TOPO54, "RND", 0.5, hotspots=hotspots, fraction=1.0)
    rng = random.Random(7)
    seen = set()
    for cycle in range(200):
        for src, dst, *_ in source.packets_at(cycle, rng):
            assert dst in hotspots
            seen.add(dst)
    assert seen == set(hotspots)  # all hotspots actually drawn


@given(st.integers(1, 100), st.integers(0, 300), st.integers(1, 10_000))
@settings(max_examples=40, deadline=None)
def test_transient_swaps_patterns_exactly_on_schedule(period, phase, seed):
    """At every cycle the destinations match the scheduled pattern, and
    the swap happens exactly at multiples of ``period``."""
    source = TransientSource(
        _TOPO54, ("ADV1", "ADV2"), 0.5, period=period, phase=phase, seed=seed
    )
    fns = [make_pattern("ADV1", _TOPO54), make_pattern("ADV2", _TOPO54)]
    rng = random.Random(seed)
    for cycle in range(3 * period + 2):
        k = (cycle + phase) // period % 2
        assert source.active_index(cycle) == k
        for src, dst, *_ in source.packets_at(cycle, rng):
            # ADV1/ADV2 are deterministic permutations: exact check.
            assert dst == fns[k](src, rng)


# --- adaptive routes ---------------------------------------------------------


class _RandomQueues(QueueOracle):
    """Deterministic pseudo-random congestion state for route properties."""

    def __init__(self, seed, ceiling=24):
        self.seed = seed
        self.ceiling = ceiling

    def output_queue(self, router: int, neighbor: int) -> int:
        mixed = self.seed * 1_000_003 + router * 1_009 + neighbor
        return random.Random(mixed).randrange(self.ceiling)


def _adaptive_routers(oracle):
    return [
        UGALRouting(_TOPO54, oracle=oracle),
        UGALRouting(_TOPO54, global_info=True, oracle=oracle),
        DeflectionRouting(_TOPO54, oracle=oracle),
        DeflectionRouting(_TOPO54, oracle=oracle, threshold=4),
    ]


@given(st.integers(1, 10_000), st.integers(0, 17), st.integers(0, 17))
@settings(max_examples=80, deadline=None)
def test_adaptive_routes_connected_and_deadlock_covered(seed, src, dst):
    """Under arbitrary congestion, every emitted route is a connected
    router walk and its VC schedule satisfies the hop-index deadlock
    rule: ascending per hop, capped strictly below num_vcs."""
    oracle = _RandomQueues(seed)
    for routing in _adaptive_routers(oracle):
        route = routing.route(src, dst)
        assert route.path[0] == src and route.path[-1] == dst
        assert len(route.vcs) == route.hops
        for a, b in zip(route.path, route.path[1:]):
            assert b in _TOPO54.router_neighbors(a)
        assert route.vcs == tuple(
            min(h, routing.num_vcs - 1) for h in range(route.hops)
        )
        for vc in route.vcs:
            assert 0 <= vc < routing.num_vcs
        if src == dst:
            assert route.path == (src,) and route.vcs == ()


@given(st.integers(1, 10_000))
@settings(max_examples=15, deadline=None)
def test_deflection_only_lengthens_paths(seed):
    """A deflected route is never shorter than minimal and at most one
    extra hop beyond the deflected neighbor's own minimal path."""
    oracle = _RandomQueues(seed)
    routing = DeflectionRouting(_TOPO54, oracle=oracle)
    minimal = MinimalPaths(_TOPO54)
    for src in range(_TOPO54.num_routers):
        for dst in range(_TOPO54.num_routers):
            route = routing.route(src, dst)
            assert route.hops >= minimal.hop_count(src, dst)
            assert route.hops <= routing.num_vcs


@given(st.integers(1, 1_000))
@settings(max_examples=6, deadline=None)
def test_deflection_never_drops_flits(seed):
    """Conservation under congestion: with live deflection routing every
    created packet is delivered once the network drains."""
    topo = make_network("sn54")
    sim = NoCSimulator(topo, SimConfig(), routing=DeflectionRouting(topo), seed=seed)
    res = sim.run(
        SyntheticSource(topo, "ADV1", 0.12), warmup=100, measure=250, drain=2500
    )
    assert res.delivered_packets == res.created_packets
    assert res.delivered_flits == res.delivered_packets * 6
    assert not res.saturated
