"""Cross-module property-based tests (hypothesis) on system invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlimNoC, layout_coordinates, mms_graph
from repro.core.costmodel import round_trip_cycles
from repro.core.placement import wire_path
from repro.routing import MinimalPaths, StaticMinimalRouting
from repro.sim import NoCSimulator, SimConfig, link_latency
from repro.topos import make_network
from repro.traffic import SyntheticSource


@given(st.sampled_from([3, 4, 5, 8, 9]), st.sampled_from(["sn_basic", "sn_subgr", "sn_gr"]))
@settings(max_examples=30, deadline=None)
def test_layout_wire_paths_cover_manhattan(q, layout):
    """Every placed wire's slot count equals its Manhattan length + 1."""
    graph = mms_graph(q)
    coords = layout_coordinates(graph, layout)
    rng = random.Random(q)
    edges = graph.edges()
    for i, j in rng.sample(edges, min(20, len(edges))):
        ci, cj = coords[i], coords[j]
        manhattan = abs(ci[0] - cj[0]) + abs(ci[1] - cj[1])
        assert len(wire_path(ci, cj)) == manhattan + 1


@given(st.integers(0, 40), st.integers(1, 12))
@settings(max_examples=80, deadline=None)
def test_rtt_and_link_latency_consistent(distance, h):
    """RTT = 2 x link cycles + 3 for any distance and SMART reach."""
    rtt = round_trip_cycles(distance, h)
    cycles = link_latency(distance, h)
    if distance == 0:
        assert rtt == 3
    else:
        assert rtt == 2 * cycles + 3 or cycles == 1


@given(st.integers(0, 199), st.integers(0, 199))
@settings(max_examples=50, deadline=None)
def test_minimal_paths_symmetric_length(src, dst):
    """Undirected graph: |path(a,b)| == |path(b,a)|."""
    paths = MinimalPaths(make_network("sn200"))
    assert paths.hop_count(src // 4, dst // 4) == paths.hop_count(dst // 4, src // 4)


@given(st.integers(1, 10_000))
@settings(max_examples=40, deadline=None)
def test_sim_single_packet_always_delivered(seed):
    """Any single random packet is delivered, flits in order."""
    topo = make_network("sn54")
    rng = random.Random(seed)
    src = rng.randrange(topo.num_nodes)
    dst = rng.randrange(topo.num_nodes)
    if src == dst:
        dst = (dst + 1) % topo.num_nodes
    sim = NoCSimulator(topo, SimConfig(), seed=seed)
    packet = sim.inject_packet(src, dst, size=rng.randint(1, 8))
    for _ in range(500):
        sim.step()
        if packet.ejected >= 0:
            break
    assert packet.ejected > packet.created
    routing = StaticMinimalRouting(topo, num_vcs=2)
    expected = routing.route(topo.node_router(src), topo.node_router(dst))
    assert packet.route.path == expected.path


@given(st.sampled_from(["RND", "SHF", "REV", "ADV1", "ADV2", "ASYM"]))
@settings(max_examples=12, deadline=None)
def test_every_pattern_simulates_clean(pattern):
    """Low-load run: all created packets delivered for every pattern."""
    topo = make_network("sn54")
    sim = NoCSimulator(topo, seed=9)
    res = sim.run(
        SyntheticSource(topo, pattern, 0.05), warmup=100, measure=200, drain=600
    )
    assert res.delivered_packets == res.created_packets
    assert not res.saturated


@given(st.integers(2, 6), st.integers(2, 9))
@settings(max_examples=20, deadline=None)
def test_slimnoc_scales(q_index, p):
    """Any (q, p) pair builds a consistent network."""
    q = [2, 3, 4, 5, 7, 8, 9][q_index]
    sn = SlimNoC(q, p)
    assert sn.num_nodes == 2 * q * q * p
    assert sn.diameter == 2
    assert sn.router_radix == sn.network_radix + p


@pytest.mark.parametrize("symbol", ["sn200", "fbf3", "pfbf4", "t2d4"])
def test_throughput_never_exceeds_offered(symbol):
    """Conservation: accepted throughput <= offered load."""
    topo = make_network(symbol)
    sim = NoCSimulator(topo, seed=3)
    res = sim.run(SyntheticSource(topo, "RND", 0.1), warmup=150, measure=400, drain=900)
    assert res.throughput <= 0.1 * 1.25  # Bernoulli noise margin
