"""Workload-source determinism, tagged-union specs, campaigns, cache GC."""

import json
import random
import time

import pytest

from repro.analysis import edp_table, workload_table
from repro.engine import (
    ExperimentEngine,
    ExperimentSpec,
    ResultCache,
    SyntheticTraffic,
    WorkloadTraffic,
    traffic_from_dict,
    workload_compare,
)
from repro.topos import make_network
from repro.traffic import WORKLOADS, WorkloadSource

#: Tiny but shape-preserving windows for the sn54/cm54 class.
FAST = dict(warmup=100, measure=200, drain=300)


def stream(source: WorkloadSource, cycles: int, seed: int) -> list:
    rng = random.Random(seed)
    return [list(source.packets_at(cycle, rng)) for cycle in range(cycles)]


class TestWorkloadSourceDeterminism:
    def test_same_seed_identical_stream(self):
        topo = make_network("sn54")
        a = stream(WorkloadSource(topo, "fft", seed=5), 400, seed=9)
        b = stream(WorkloadSource(topo, "fft", seed=5), 400, seed=9)
        assert a == b
        assert any(a)  # the stream actually injects something

    def test_seed_changes_stream(self):
        topo = make_network("sn54")
        a = stream(WorkloadSource(topo, "fft", seed=5), 400, seed=9)
        c = stream(WorkloadSource(topo, "fft", seed=6), 400, seed=9)
        assert a != c

    def test_message_mechanics(self):
        topo = make_network("sn54")
        packets = [
            p
            for specs in stream(WorkloadSource(topo, "ocean-c", seed=1), 600, seed=2)
            for p in specs
        ]
        kinds = {p[3] for p in packets}
        assert kinds <= {"read", "write"}
        for src, dst, size, kind, wants_reply, reply_size in packets:
            assert src != dst
            if kind == "read":
                assert (size, wants_reply, reply_size) == (2, True, 6)
            else:
                assert (size, wants_reply, reply_size) == (6, False, 0)


class TestTaggedUnionSpecs:
    def test_synthetic_round_trip(self):
        spec = ExperimentSpec.synthetic("sn54", "RND", 0.05, **FAST)
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()
        assert isinstance(clone.source, SyntheticTraffic)

    def test_workload_round_trip(self):
        spec = ExperimentSpec.workload("sn54", "barnes", intensity_scale=1.5, **FAST)
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()
        assert isinstance(clone.source, WorkloadTraffic)

    def test_legacy_v2_payload_still_parses(self):
        payload = ExperimentSpec.synthetic("sn54", "RND", 0.05, **FAST).to_dict()
        del payload["source"]
        payload.update(pattern="RND", load=0.05, spec_version=2)
        clone = ExperimentSpec.from_dict(payload)
        assert clone.source == SyntheticTraffic("RND", 0.05)

    def test_hash_distinguishes_kinds_and_knobs(self):
        synthetic = ExperimentSpec.synthetic("sn54", "RND", 0.05, **FAST)
        wl = ExperimentSpec.workload("sn54", "barnes", **FAST)
        assert synthetic.content_hash() != wl.content_hash()
        assert (
            wl.content_hash()
            != ExperimentSpec.workload("sn54", "fft", **FAST).content_hash()
        )
        assert (
            wl.content_hash()
            != ExperimentSpec.workload(
                "sn54", "barnes", intensity_scale=0.5, **FAST
            ).content_hash()
        )

    def test_hash_covers_workload_params(self):
        # Retuning a benchmark in WORKLOADS must move its cache keys.
        spec = ExperimentSpec.workload("sn54", "barnes", **FAST)
        before = spec.content_hash()
        original = WORKLOADS["barnes"]
        try:
            WORKLOADS["barnes"] = type(original)(
                original.name, original.intensity * 2, original.read_fraction,
                original.locality, original.burstiness,
            )
            retuned = ExperimentSpec.workload("sn54", "barnes", **FAST)
            assert retuned.content_hash() != before
        finally:
            WORKLOADS["barnes"] = original

    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTraffic("not-a-bench")
        with pytest.raises(ValueError):
            traffic_from_dict({"kind": "nope"})

    def test_workload_spec_executes(self):
        result = ExperimentSpec.workload("sn54", "water-s", **FAST).execute()
        assert result.delivered_packets > 0


class TestWorkloadCampaigns:
    def test_compare_grid_and_caching(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        table = workload_compare(
            engine, {"sn54": "sn54", "cm54": "cm54"}, ["barnes", "fft"], **FAST
        )
        assert set(table) == {"sn54", "cm54"}
        assert set(table["sn54"]) == {"barnes", "fft"}
        assert engine.last_stats.executed == 4
        again = workload_compare(
            engine, {"sn54": "sn54", "cm54": "cm54"}, ["barnes", "fft"], **FAST
        )
        assert engine.last_stats.executed == 0  # zero new simulations
        for label in table:
            for bench in table[label]:
                assert (
                    table[label][bench].avg_latency
                    == again[label][bench].avg_latency
                )

    def test_workload_table_joins_power(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        table = workload_table(
            ["sn54", "cm54"], ["barnes"], engine=engine, **FAST
        )
        row = table["sn54"]["barnes"]
        assert row.total_power_w > 0
        assert row.energy_delay_product > 0
        edp = edp_table(table, "cm54")
        assert edp["barnes"]["cm54"] == 1.0


class TestCacheGC:
    def fill(self, tmp_path, n=4):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        specs = [
            ExperimentSpec.synthetic("sn54", "RND", 0.02 + 0.01 * i, **FAST)
            for i in range(n)
        ]
        engine.run(specs)
        return cache, specs

    def test_max_bytes_keeps_most_recent(self, tmp_path):
        cache, specs = self.fill(tmp_path)
        # Spread mtimes, oldest first, then re-read one to bump its LRU slot.
        for i, spec in enumerate(specs):
            path = cache.path_for(spec)
            stamp = time.time() - 3600 + i
            import os

            os.utime(path, (stamp, stamp))
        keep_size = cache.path_for(specs[-1]).stat().st_size
        report = cache.gc(max_bytes=keep_size)
        assert report.removed_entries == len(specs) - 1
        assert cache.get(specs[-1]) is not None  # newest mtime survived
        assert cache.get(specs[0]) is None

    def test_max_bytes_zero_empties_cache(self, tmp_path):
        cache, specs = self.fill(tmp_path)
        report = cache.gc(max_bytes=0)
        assert report.kept_entries == 0
        assert cache.stats().entries == 0
        # subsequent runs still work (cache repopulates cleanly)
        engine = ExperimentEngine(cache=cache)
        engine.run([specs[0]])
        assert engine.last_stats.executed == 1
        assert cache.stats().entries == 1

    def test_max_age_evicts_stale_only(self, tmp_path):
        import os

        cache, specs = self.fill(tmp_path)
        old = time.time() - 10 * 86400
        for spec in specs[:2]:
            path = cache.path_for(spec)
            os.utime(path, (old, old))
        report = cache.gc(max_age_days=7)
        assert report.removed_entries == 2
        assert cache.get(specs[2]) is not None
        assert cache.get(specs[0]) is None

    def test_hit_touches_mtime(self, tmp_path):
        import os

        cache, specs = self.fill(tmp_path, n=1)
        path = cache.path_for(specs[0])
        old = time.time() - 10 * 86400
        os.utime(path, (old, old))
        assert cache.get(specs[0]) is not None  # hit refreshes LRU position
        assert path.stat().st_mtime > old + 86400

    def test_unreachable_versions_reclaimable_and_collected(self, tmp_path):
        cache, specs = self.fill(tmp_path, n=2)
        path = cache.path_for(specs[0])
        entry = json.loads(path.read_text())
        entry["spec"]["spec_version"] = 2  # superseded spec version
        path.write_text(json.dumps(entry))
        stats = cache.stats()
        assert stats.reclaimable_entries == 1
        assert stats.reclaimable_bytes > 0
        report = cache.gc()  # no limits: only unreachable garbage goes
        assert report.removed_entries == 1
        assert cache.get(specs[1]) is not None
