"""Tests for synthetic traffic patterns and PARSEC/SPLASH workload models."""

import random

import pytest

from repro.topos import make_network
from repro.traffic import (
    PATTERNS,
    SyntheticSource,
    WORKLOADS,
    WorkloadSource,
    make_pattern,
    workload_names,
)


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_destinations_in_range(self, name):
        topo = make_network("sn200")
        pattern = make_pattern(name, topo)
        rng = random.Random(0)
        for src in range(0, 200, 7):
            dst = pattern(src, rng)
            assert 0 <= dst < 200

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("TRANSPOSE", make_network("sn200"))

    def test_shuffle_is_rotation(self):
        topo = make_network("sn1024")  # power-of-two N: exact bit ops
        pattern = make_pattern("SHF", topo)
        rng = random.Random(0)
        assert pattern(1, rng) == 2
        assert pattern(512, rng) == 1  # msb wraps to lsb

    def test_reversal_is_involution(self):
        topo = make_network("sn1024")
        pattern = make_pattern("REV", topo)
        rng = random.Random(0)
        for src in (1, 5, 100, 511):
            assert pattern(pattern(src, rng), rng) == src

    def test_rnd_covers_many_destinations(self):
        topo = make_network("sn200")
        pattern = make_pattern("RND", topo)
        rng = random.Random(1)
        destinations = {pattern(0, rng) for _ in range(500)}
        assert len(destinations) > 100
        assert 0 not in destinations  # never self

    def test_adv1_is_quarter_shift_permutation(self):
        topo = make_network("sn200")
        pattern = make_pattern("ADV1", topo)
        rng = random.Random(0)
        destinations = {pattern(src, rng) for src in range(200)}
        assert len(destinations) == 200  # a permutation
        assert pattern(0, rng) == 50

    def test_adv2_is_tornado(self):
        topo = make_network("sn200")
        pattern = make_pattern("ADV2", topo)
        rng = random.Random(0)
        assert pattern(0, rng) == 100
        assert pattern(150, rng) == 50

    def test_adversarial_loads_exceed_uniform(self):
        """ADV patterns concentrate channel load above RND's (their point)."""
        from repro.routing import MinimalPaths

        topo = make_network("sn200")
        paths = MinimalPaths(topo)
        adv = SyntheticSource(topo, "ADV1", 0.1).flows()
        rnd = SyntheticSource(topo, "RND", 0.1).flows()
        assert paths.max_channel_load(adv) > paths.max_channel_load(rnd)

    def test_adversarial_works_on_grid_networks(self):
        topo = make_network("fbf3")
        pattern = make_pattern("ADV1", topo)
        rng = random.Random(0)
        for src in range(0, 192, 13):
            assert 0 <= pattern(src, rng) < 192

    def test_asym_halves(self):
        topo = make_network("sn200")
        pattern = make_pattern("ASYM", topo)
        rng = random.Random(3)
        for src in range(0, 200, 7):
            dst = pattern(src, rng)
            assert dst % 100 == src % 100 or dst != src

    def test_patterns_never_return_self(self):
        topo = make_network("sn200")
        rng = random.Random(5)
        for name in PATTERNS:
            pattern = make_pattern(name, topo)
            for src in range(0, 200, 17):
                for _ in range(5):
                    if name in ("SHF", "REV"):
                        continue  # fixed permutations may map src->src
                    assert pattern(src, rng) != src


class TestSyntheticSource:
    def test_rate_controls_volume(self):
        topo = make_network("sn200")
        rng = random.Random(0)
        low = SyntheticSource(topo, "RND", 0.02)
        high = SyntheticSource(topo, "RND", 0.3)
        count_low = sum(len(list(low.packets_at(c, rng))) for c in range(200))
        count_high = sum(len(list(high.packets_at(c, rng))) for c in range(200))
        assert count_high > 5 * count_low

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSource(make_network("sn200"), "RND", -0.1)

    def test_packet_spec_shape(self):
        topo = make_network("sn200")
        source = SyntheticSource(topo, "RND", 0.5)
        rng = random.Random(0)
        for spec in source.packets_at(0, rng):
            src, dst, size, kind, wants_reply, reply_size = spec
            assert size == 6
            assert kind == "data"
            assert not wants_reply

    def test_flows_scale_with_rate(self):
        topo = make_network("sn54")
        flows = SyntheticSource(topo, "ADV1", 0.2).flows()
        assert sum(flows.values()) == pytest.approx(0.2 * 54, rel=0.01)


class TestWorkloads:
    def test_all_fourteen_benchmarks(self):
        assert len(workload_names()) == 14
        assert "barnes" in WORKLOADS and "water-s" in WORKLOADS

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSource(make_network("sn200"), "doom")

    def test_message_mechanics(self):
        """Reads are 2 flits with 6-flit replies; writes are 6 flits."""
        topo = make_network("sn200")
        source = WorkloadSource(topo, "ocean-c", seed=1)
        rng = random.Random(1)
        reads = writes = 0
        for cycle in range(300):
            for src, dst, size, kind, wants_reply, reply_size in source.packets_at(cycle, rng):
                if kind == "read":
                    assert size == 2 and wants_reply and reply_size == 6
                    reads += 1
                else:
                    assert size == 6 and not wants_reply
                    writes += 1
        assert reads > writes > 0  # read-dominated mixes

    def test_intensity_ordering(self):
        """Memory-bound benchmarks inject more than compute-bound ones."""
        assert WORKLOADS["ocean-c"].intensity > WORKLOADS["water-s"].intensity
        assert WORKLOADS["radix"].intensity > WORKLOADS["volrend"].intensity

    def test_rate_property_reflects_intensity(self):
        topo = make_network("sn200")
        heavy = WorkloadSource(topo, "ocean-c")
        light = WorkloadSource(topo, "water-s")
        assert heavy.rate > light.rate

    def test_deterministic_given_seed(self):
        topo = make_network("sn200")
        a = WorkloadSource(topo, "fft", seed=7)
        b = WorkloadSource(topo, "fft", seed=7)
        rng_a, rng_b = random.Random(7), random.Random(7)
        for cycle in range(100):
            assert list(a.packets_at(cycle, rng_a)) == list(b.packets_at(cycle, rng_b))

    def test_locality_biases_destinations(self):
        topo = make_network("sn1296")
        local = WorkloadSource(topo, "volrend", seed=0)  # locality 0.5
        rng = random.Random(0)
        near = far = 0
        window = topo.num_nodes // 16
        for cycle in range(400):
            for src, dst, *_ in local.packets_at(cycle, rng):
                if 0 < (dst - src) % topo.num_nodes <= window:
                    near += 1
                else:
                    far += 1
        assert near > far * 0.5  # strong local bias

    def test_intensity_scale(self):
        topo = make_network("sn200")
        base = WorkloadSource(topo, "fft", seed=0)
        double = WorkloadSource(topo, "fft", seed=0, intensity_scale=2.0)
        assert double.rate == pytest.approx(2 * base.rate)
