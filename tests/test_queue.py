"""Fault-tolerant work queue: leases, quarantine, restart, chaos recovery."""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.engine import (
    ExperimentEngine,
    ExperimentSpec,
    FaultyBackend,
    InjectedFault,
    JobQueue,
    QueueClient,
    QueueWorker,
    RemoteStore,
    RemoteStoreError,
    ResultCache,
    SqlitePackStore,
    StoreServer,
    jobs_for_specs,
)
from repro.obs.metrics import REGISTRY

SRC = Path(__file__).resolve().parent.parent / "src"

#: Tiny but shape-preserving windows for the sn54 class.
FAST = dict(warmup=100, measure=200, drain=300)


def fast_spec(load=0.05, **overrides) -> ExperimentSpec:
    kw = dict(topology="sn54", pattern="RND", load=load, **FAST)
    kw.update(overrides)
    return ExperimentSpec.synthetic(
        kw.pop("topology"), kw.pop("pattern"), kw.pop("load"), **kw
    )


def spec_grid(n=6) -> list[ExperimentSpec]:
    return [fast_spec(load=0.01 + 0.005 * i) for i in range(n)]


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def backend(tmp_path):
    store = SqlitePackStore(tmp_path / "q.sqlite")
    yield store
    store.close()


def make_queue(backend, **kw) -> JobQueue:
    kw.setdefault("lease_seconds", 10.0)
    return JobQueue(backend, **kw)


class TestJobQueue:
    def test_submit_orders_heaviest_first(self, backend):
        queue = make_queue(backend)
        jobs = [
            {"key": "a" * 64, "spec": fast_spec(load=0.02).to_dict(), "cost": 1.0},
            {"key": "b" * 64, "spec": fast_spec(load=0.30).to_dict(), "cost": 9.0},
            {"key": "c" * 64, "spec": fast_spec(load=0.10).to_dict(), "cost": 4.0},
        ]
        reply = queue.submit(jobs)
        assert reply["accepted"] == 3 and reply["total"] == 3
        grant = queue.claim("w1", max_specs=3)
        keys = [job["key"] for job in grant["lease"]["jobs"]]
        assert keys == ["b" * 64, "c" * 64, "a" * 64]

    def test_submit_is_idempotent_by_key(self, backend):
        queue = make_queue(backend)
        jobs = jobs_for_specs(spec_grid(3))
        assert queue.submit(jobs)["accepted"] == 3
        again = queue.submit(jobs)
        assert again["accepted"] == 0 and again["duplicates"] == 3
        assert queue.status()["total"] == 3

    def test_store_resident_results_are_done_at_submit(self, backend):
        spec = fast_spec()
        ExperimentEngine(cache=ResultCache(backend=backend)).run([spec])
        queue = make_queue(backend)
        reply = queue.submit(jobs_for_specs([spec]))
        assert reply["cached"] == 1 and reply["accepted"] == 0
        status = queue.status()
        assert status["done"] == 1 and status["drained"]
        assert queue.claim("w1")["state"] == "drained"

    def test_empty_queue_reads_empty_not_drained(self, backend):
        """Workers may join the fleet before the campaign is submitted."""
        queue = make_queue(backend)
        assert queue.claim("early-bird")["state"] == "empty"
        assert not queue.status()["drained"]

    def test_expired_lease_returns_specs_to_queue(self, backend):
        clock = FakeClock()
        queue = make_queue(backend, clock=clock)
        queue.submit(jobs_for_specs(spec_grid(2)))
        before = REGISTRY.value("repro_queue_requeued_total", reason="expired")
        grant = queue.claim("w1", max_specs=2)
        assert grant["state"] == "lease"
        assert queue.claim("w2")["state"] == "empty"
        clock.advance(10.1)  # past the lease deadline
        regrant = queue.claim("w2", max_specs=2)
        assert regrant["state"] == "lease"
        assert {j["key"] for j in regrant["lease"]["jobs"]} == {
            j["key"] for j in grant["lease"]["jobs"]
        }
        after = REGISTRY.value("repro_queue_requeued_total", reason="expired")
        assert after == before + 2

    def test_heartbeat_extends_the_lease(self, backend):
        clock = FakeClock()
        queue = make_queue(backend, clock=clock)
        queue.submit(jobs_for_specs(spec_grid(1)))
        grant = queue.claim("w1")
        lease_id = grant["lease"]["id"]
        for _ in range(3):
            clock.advance(8.0)  # under the 10s lease each time
            assert queue.heartbeat(lease_id)["ok"]
        assert queue.claim("w2")["state"] == "empty"  # still held
        clock.advance(10.1)
        assert not queue.heartbeat(lease_id)["ok"]  # expired → unknown

    def test_complete_is_idempotent_and_stale_safe(self, backend):
        clock = FakeClock()
        queue = make_queue(backend, clock=clock)
        queue.submit(jobs_for_specs(spec_grid(2)))
        grant = queue.claim("w1", max_specs=2)
        keys = [j["key"] for j in grant["lease"]["jobs"]]
        clock.advance(10.1)
        regrant = queue.claim("w2", max_specs=1)  # w1's batch expired
        # The stale worker still reports: done counts, but the key now
        # leased to w2 must not be double-queued.
        reply = queue.complete(grant["lease"]["id"], "w1", done=[keys[1]])
        assert reply["ok"] and not reply["known_lease"]
        assert queue.status()["done"] == 1
        reply = queue.complete(regrant["lease"]["id"], "w2", done=[keys[0]])
        assert reply["known_lease"]
        status = queue.status()
        assert status["done"] == 2 and status["drained"]
        assert status["pending"] == 0

    def test_unsettled_lease_keys_are_released(self, backend):
        queue = make_queue(backend)
        queue.submit(jobs_for_specs(spec_grid(3)))
        grant = queue.claim("w1", max_specs=3)
        keys = [j["key"] for j in grant["lease"]["jobs"]]
        queue.complete(grant["lease"]["id"], "w1", done=keys[:1])
        status = queue.status()
        assert status["done"] == 1 and status["pending"] == 2

    def test_quarantine_after_distinct_workers(self, backend):
        queue = make_queue(backend, quarantine_workers=2, max_attempts=5)
        queue.submit(jobs_for_specs(spec_grid(1)))
        grant = queue.claim("w1")
        key = grant["lease"]["jobs"][0]["key"]
        reply = queue.complete(
            grant["lease"]["id"], "w1", failed=[{"key": key, "error": "boom"}]
        )
        assert reply["quarantined"] == []  # one worker is not enough
        grant = queue.claim("w2")
        reply = queue.complete(
            grant["lease"]["id"], "w2", failed=[{"key": key, "error": "boom"}]
        )
        assert reply["quarantined"] == [key]
        status = queue.status()
        assert status["quarantined"] == 1 and status["drained"]
        report = status["quarantine"][0]
        assert report["attempts"] == 2 and sorted(report["workers"]) == ["w1", "w2"]

    def test_quarantine_after_max_attempts_single_worker(self, backend):
        """A one-worker fleet still terminates on a poison spec."""
        queue = make_queue(backend, quarantine_workers=3, max_attempts=2)
        queue.submit(jobs_for_specs(spec_grid(1)))
        for round_no in range(2):
            grant = queue.claim("only-worker")
            key = grant["lease"]["jobs"][0]["key"]
            reply = queue.complete(
                grant["lease"]["id"],
                "only-worker",
                failed=[{"key": key, "error": f"crash {round_no}"}],
            )
        assert reply["quarantined"] == [key]
        assert queue.claim("only-worker")["state"] == "drained"

    def test_state_survives_coordinator_restart(self, backend):
        clock = FakeClock()
        queue = make_queue(backend, clock=clock)
        queue.submit(jobs_for_specs(spec_grid(4)), topologies={"sn54": "sn54"})
        grant = queue.claim("w1", max_specs=2)
        keys = [j["key"] for j in grant["lease"]["jobs"]]
        queue.complete(grant["lease"]["id"], "w1", done=[keys[0]], released=[keys[1]])
        reborn = JobQueue.load(backend, lease_seconds=10.0)
        status = reborn.status()
        assert status["total"] == 4 and status["done"] == 1
        assert status["pending"] == 3  # leases are volatile; nothing stranded
        assert reborn.topologies == {"sn54": "sn54"}

    def test_restart_absorbs_results_landed_after_last_persist(self, backend):
        specs = spec_grid(2)
        queue = make_queue(backend)
        queue.submit(jobs_for_specs(specs))
        # A worker crashes after its write-back but before complete():
        # the result is in the store, the queue never heard about it.
        ExperimentEngine(cache=ResultCache(backend=backend)).run([specs[0]])
        reborn = JobQueue.load(backend, lease_seconds=10.0)
        status = reborn.status()
        assert status["done"] == 1 and status["pending"] == 1

    def test_in_flight_lease_requeued_on_restart(self, backend):
        queue = make_queue(backend)
        queue.submit(jobs_for_specs(spec_grid(2)))
        queue.claim("w1", max_specs=2)
        reborn = JobQueue.load(backend, lease_seconds=10.0)
        assert reborn.status()["pending"] == 2
        assert reborn.claim("w2", max_specs=2)["state"] == "lease"


class TestQueueWire:
    """The queue protocol over a live ephemeral-port server."""

    def test_round_trip_over_http(self, backend):
        queue = make_queue(backend)
        with StoreServer(backend, quiet=True, queue=queue) as server:
            client = QueueClient(server.url)
            specs = spec_grid(2)
            reply = client.submit(
                jobs_for_specs(specs), topologies={"sn54": "sn54"}
            )
            assert reply["accepted"] == 2
            grant = client.claim("w1", max_specs=1)
            assert grant["state"] == "lease"
            lease = grant["lease"]
            assert lease["topologies"] == {"sn54": "sn54"}
            assert client.heartbeat(lease["id"])["ok"]
            reply = client.complete(
                lease["id"], "w1", done=[lease["jobs"][0]["key"]]
            )
            assert reply["ok"] and reply["known_lease"]
            status = client.status()
            assert status["done"] == 1 and status["pending"] == 1

    def test_queue_endpoints_404_when_disabled(self, backend):
        with StoreServer(backend, quiet=True) as server:
            client = QueueClient(server.url, retries=1)
            with pytest.raises(RemoteStoreError, match="repro serve --queue"):
                client.status()

    def test_queue_endpoints_require_the_token(self, backend):
        from repro.engine import RemoteAuthError

        queue = make_queue(backend)
        with StoreServer(
            backend, token="secret", quiet=True, queue=queue
        ) as server:
            with pytest.raises(RemoteAuthError):
                QueueClient(server.url, retries=1).status()
            client = QueueClient(server.url, token="secret")
            assert client.status()["total"] == 0

    def test_missing_field_is_a_client_error(self, backend):
        queue = make_queue(backend)
        with StoreServer(backend, quiet=True, queue=queue) as server:
            request = urllib.request.Request(
                server.url + "/queue/claim",
                data=json.dumps({}).encode(),  # no "worker"
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 400


class TestRetryHardening:
    def test_retry_after_header_overrides_backoff(self, backend):
        with StoreServer(backend, quiet=True) as server:
            server.inject_failures(1, retry_after=0.7)
            sleeps = []
            store = RemoteStore(
                server.url, retries=3, backoff=99.0, sleep=sleeps.append
            )
            store.put_payload("aa" * 32, "sim", {"x": 1})
            assert sleeps == [0.7]  # server-directed, not 99s exponential

    def test_full_jitter_scales_the_backoff(self, backend):
        with StoreServer(backend, quiet=True) as server:
            server.inject_failures(2)
            sleeps = []
            store = RemoteStore(
                server.url,
                retries=4,
                backoff=0.8,
                sleep=sleeps.append,
                jitter=lambda: 0.5,
            )
            assert store.get_payload("aa" * 32, "sim") is None
            assert sleeps == [0.4, 0.8]  # backoff * 2**(n-1) * jitter

    def test_retry_wall_budget_caps_the_outage(self, backend):
        with StoreServer(backend, quiet=True) as server:
            server.inject_failures(10)
            store = RemoteStore(
                server.url,
                retries=8,
                backoff=30.0,
                max_retry_seconds=1.0,
                sleep=lambda _s: None,
                jitter=lambda: 1.0,
            )
            with pytest.raises(RemoteStoreError, match="retry budget"):
                store.get_payload("aa" * 32, "sim")

    def test_fail_every_nth_request(self, backend):
        with StoreServer(backend, quiet=True, fail_every=2) as server:
            retries_before = REGISTRY.value(
                "repro_store_retries_total", endpoint="payloads/put"
            )
            store = RemoteStore(
                server.url, retries=3, backoff=0.0, sleep=lambda _s: None
            )
            for i in range(4):
                store.put_payload(f"{i:02d}" * 32, "sim", {"x": i})
            retries_after = REGISTRY.value(
                "repro_store_retries_total", endpoint="payloads/put"
            )
            assert retries_after >= retries_before + 2
            assert store.stats().entries == 4  # every write landed anyway

    def test_health_and_metrics_exempt_from_injection(self, backend):
        with StoreServer(backend, quiet=True) as server:
            server.inject_failures(5)
            with urllib.request.urlopen(server.url + "/health") as resp:
                assert resp.status == 200
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.status == 200
            assert server._httpd.fail_requests == 5  # untouched


class TestFaultyBackend:
    def test_fail_next_then_recover(self, backend):
        faulty = FaultyBackend(backend)
        faulty.fail_next(1)
        with pytest.raises(InjectedFault):
            faulty.put_payload("aa" * 32, "sim", {"x": 1})
        assert faulty.faults_injected == 1
        faulty.put_payload("aa" * 32, "sim", {"x": 1})
        assert faulty.get_payload("aa" * 32, "sim") == {"x": 1}

    def test_fail_every_is_deterministic(self, backend):
        faulty = FaultyBackend(backend, fail_every=2)
        outcomes = []
        for i in range(4):
            try:
                faulty.put_payload(f"{i:02d}" * 32, "sim", {"x": i})
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault"]

    def test_maintenance_ops_pass_through(self, backend):
        faulty = FaultyBackend(backend)
        faulty.fail_next(100)
        assert faulty.stats().entries == 0  # not a failable op
        faulty.close()  # tears down cleanly even while "failing"

    def test_queue_persist_survives_store_faults(self, backend):
        """persist() is best-effort: a flaky store must not take down a
        queue operation (state is re-persisted on the next one)."""
        faulty = FaultyBackend(backend)
        queue = make_queue(faulty)
        faulty.fail_next(1)
        queue.submit(jobs_for_specs(spec_grid(1)))  # persist fault swallowed
        assert queue.status()["total"] == 1
        queue.persist()  # healthy again: state lands
        assert JobQueue.load(backend).status()["total"] == 1


class TestQueueWorker:
    def test_worker_drains_the_queue(self, backend):
        queue = make_queue(backend)
        specs = spec_grid(3)
        queue.submit(jobs_for_specs(specs), topologies={"sn54": "sn54"})
        with StoreServer(backend, quiet=True, queue=queue) as server:
            worker = QueueWorker(
                server.url, worker_id="t1", max_specs=2, sleep=0.05
            )
            stats = worker.run()
            assert stats.done == 3 and stats.failed == 0
            assert stats.executed == 3
            status = QueueClient(server.url).status()
            assert status["drained"] and status["done"] == 3
        # Every result is in the coordinator's store: a local engine
        # pointed at it re-simulates nothing.
        engine = ExperimentEngine(cache=ResultCache(backend=backend))
        engine.run(specs)
        assert engine.total_stats.executed == 0
        assert engine.total_stats.cache_hits == 3

    def test_second_worker_sees_drained_and_exits(self, backend):
        queue = make_queue(backend)
        queue.submit(jobs_for_specs(spec_grid(1)))
        with StoreServer(backend, quiet=True, queue=queue) as server:
            QueueWorker(server.url, worker_id="t1", sleep=0.05).run()
            late = QueueWorker(server.url, worker_id="t2", sleep=0.05)
            stats = late.run()
            assert stats.leases == 0 and stats.done == 0

    def test_poison_spec_is_isolated_and_quarantined(self, backend):
        queue = make_queue(backend, quarantine_workers=1)
        good = fast_spec()
        poison = fast_spec(load=0.08).to_dict()
        poison["topology"] = "no-such-network"
        jobs = jobs_for_specs([good]) + [
            {"key": "ee" * 32, "spec": poison, "cost": 99.0}
        ]
        queue.submit(jobs)
        with StoreServer(backend, quiet=True, queue=queue) as server:
            worker = QueueWorker(
                server.url, worker_id="t1", max_specs=2, sleep=0.05
            )
            stats = worker.run()
            assert stats.done == 1 and stats.failed == 1
            status = QueueClient(server.url).status()
            assert status["drained"] and status["quarantined"] == 1
            report = status["quarantine"][0]
            assert report["key"] == "ee" * 32
            assert "no-such-network" in report["error"]

    def test_request_stop_before_run_exits_immediately(self, backend):
        queue = make_queue(backend)
        queue.submit(jobs_for_specs(spec_grid(2)))
        with StoreServer(backend, quiet=True, queue=queue) as server:
            worker = QueueWorker(server.url, worker_id="t1", sleep=0.05)
            worker.request_stop()
            stats = worker.run()
            assert stats.leases == 0
            assert QueueClient(server.url).status()["pending"] == 2


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise AssertionError(f"timed out after {timeout}s waiting for {what}")


class TestChaosRecovery:
    """The acceptance path: SIGKILL a live worker mid-campaign and the
    survivor drains the queue with zero re-simulation afterwards."""

    def _spawn(self, argv, tmp_path, name):
        env = os.environ.copy()
        env["PYTHONPATH"] = str(SRC)
        env["REPRO_CALIBRATION"] = str(tmp_path / "calibration.json")
        log = open(tmp_path / f"{name}.log", "w")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )
        return proc, log

    def test_sigkilled_worker_recovers(self, tmp_path):
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        specs = spec_grid(10)
        procs = []
        logs = []
        try:
            serve, log = self._spawn(
                [
                    "serve",
                    "--store",
                    str(tmp_path / "q.sqlite"),
                    "--queue",
                    "--port",
                    str(port),
                    "--lease-seconds",
                    "3",
                ],
                tmp_path,
                "serve",
            )
            procs.append(serve)
            logs.append(log)
            client = QueueClient(url, retries=3, backoff=0.2)
            _wait_for(
                lambda: serve.poll() is None
                and self._healthy(url),
                15,
                "the coordinator to come up",
            )
            reply = client.submit(jobs_for_specs(specs))
            assert reply["accepted"] == 10
            for name in ("victim", "survivor"):
                proc, log = self._spawn(
                    [
                        "work",
                        url,
                        "--id",
                        name,
                        "--max-specs",
                        "4" if name == "victim" else "2",
                        "--poll",
                        "0.2",
                    ],
                    tmp_path,
                    name,
                )
                procs.append(proc)
                logs.append(log)
            victim = procs[1]
            # Kill the victim the moment it holds a live lease.
            _wait_for(
                lambda: "victim" in client.status()["workers"],
                30,
                "the victim to claim a lease",
            )
            victim.kill()  # SIGKILL: no drain, no complete, no release
            victim.wait(timeout=10)
            status = _wait_for(
                lambda: (s := client.status())["drained"] and s,
                120,
                "the survivor to drain the queue",
            )
            assert status["done"] == 10 and status["quarantined"] == 0
            # The victim's lease expired and its specs were re-issued.
            with urllib.request.urlopen(url + "/metrics") as resp:
                metrics = resp.read().decode()
            requeued = sum(
                float(line.rsplit(" ", 1)[1])
                for line in metrics.splitlines()
                if line.startswith("repro_queue_requeued_total")
            )
            assert requeued >= 1
            # Zero re-simulation: assembling the campaign afterwards is
            # a pure cache read against the coordinator's store.
            engine = ExperimentEngine(
                cache=ResultCache(backend=RemoteStore(url))
            )
            engine.run(specs)
            assert engine.total_stats.executed == 0
            assert engine.total_stats.cache_hits == 10
        except BaseException:
            for log in logs:
                log.flush()
                text = Path(log.name).read_text()
                print(f"---- {log.name} ----\n{text}", file=sys.stderr)
            raise
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
            for log in logs:
                log.close()

    @staticmethod
    def _healthy(url) -> bool:
        try:
            with urllib.request.urlopen(url + "/health", timeout=1) as resp:
                return resp.status == 200
        except OSError:
            return False
