"""Tests for the analysis harness: sweeps, large-N model, metrics."""

import math

import pytest

from repro.analysis import (
    LargeScaleModel,
    compare_networks,
    format_table,
    geometric_mean,
    relative_improvement,
    sweep_loads,
)
from repro.sim import SimConfig
from repro.topos import make_network


class TestSweep:
    def test_latency_rises_with_load(self):
        topo = make_network("sn54")
        result = sweep_loads(
            topo, "RND", [0.02, 0.2], warmup=200, measure=400, drain=800
        )
        assert result.latencies[0] < result.latencies[-1] * 1.5 + 5

    def test_stops_after_saturation(self):
        topo = make_network("cm54")  # low-radix: saturates early
        result = sweep_loads(
            topo, "RND", [0.05, 0.6, 0.8], warmup=200, measure=300, drain=600
        )
        assert result.points[-1].saturated or len(result.points) == 3
        if result.points[-1].saturated:
            assert len(result.points) < 3

    def test_zero_load_and_lookup(self):
        topo = make_network("sn54")
        result = sweep_loads(topo, "RND", [0.02, 0.1], warmup=200, measure=300, drain=600)
        assert result.zero_load_latency() == result.points[0].latency
        assert result.latency_at(0.02) == result.points[0].latency
        assert result.saturation_throughput() > 0

    def test_empty_sweep_raises(self):
        from repro.analysis.sweep import SweepResult

        empty = SweepResult("x", "RND")
        with pytest.raises(ValueError):
            empty.zero_load_latency()
        with pytest.raises(ValueError):
            empty.latency_at(0.1)

    def test_compare_networks(self):
        topos = {"sn54": make_network("sn54"), "t2d54": make_network("t2d54")}
        results = compare_networks(
            topos, "RND", [0.02], warmup=150, measure=250, drain=400
        )
        assert set(results) == {"sn54", "t2d54"}
        assert results["sn54"].network == "sn54"


class TestLargeScaleModel:
    def test_zero_load_reasonable(self):
        model = LargeScaleModel.build(make_network("sn1296"), "RND")
        assert 15 < model.zero_load_latency() < 50

    def test_smart_lowers_zero_load(self):
        topo = make_network("sn1296")
        plain = LargeScaleModel.build(topo, "RND")
        smart = LargeScaleModel.build(topo, "RND", SimConfig().with_smart())
        assert smart.zero_load_latency() < plain.zero_load_latency()

    def test_latency_monotone_in_load(self):
        model = LargeScaleModel.build(make_network("sn1296"), "RND")
        rates = [0.01, 0.1, 0.3, 0.5]
        latencies = [model.latency(r) for r in rates]
        assert latencies == sorted(latencies)

    def test_saturation_is_infinite_latency(self):
        model = LargeScaleModel.build(make_network("sn1296"), "RND")
        assert math.isinf(model.latency(model.saturation_rate * 1.01))
        with pytest.raises(ValueError):
            model.latency(-0.1)

    def test_sn_throughput_far_above_torus(self):
        """Paper section 5.2.2: SN improves throughput 10x over T2D at 1296."""
        sn = LargeScaleModel.build(make_network("sn1296"), "RND")
        t2d = LargeScaleModel.build(make_network("t2d9"), "RND")
        assert sn.saturation_rate > 8 * t2d.saturation_rate

    def test_sn_beats_pfbf_latency_with_smart(self):
        """Paper Figs 12-13 (SMART): SN's latency is ~6-25% below PFBF's —
        with single-cycle wires, SN's diameter-2 advantage dominates."""
        smart = SimConfig().with_smart()
        sn = LargeScaleModel.build(make_network("sn1296"), "RND", smart)
        pfbf = LargeScaleModel.build(make_network("pfbf9"), "RND", smart)
        assert sn.zero_load_latency() < pfbf.zero_load_latency()

    def test_sweep_compatible_output(self):
        model = LargeScaleModel.build(make_network("sn1296"), "RND")
        result = model.sweep([0.01, 0.1, 2.0])
        assert result.points[-1].saturated
        assert result.points[0].latency < result.points[1].latency

    def test_model_tracks_simulator_at_small_n(self):
        """Cross-check: analytical zero-load within ~40% of cycle-accurate."""
        topo = make_network("sn200")
        model = LargeScaleModel.build(topo, "RND")
        simulated = sweep_loads(topo, "RND", [0.01], warmup=200, measure=400, drain=600)
        ratio = model.zero_load_latency() / simulated.zero_load_latency()
        assert 0.6 < ratio < 1.4


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_relative_improvement(self):
        assert relative_improvement(45, 100) == pytest.approx(0.55)
        with pytest.raises(ValueError):
            relative_improvement(1, 0)

    def test_format_table(self):
        text = format_table(["net", "lat"], [["sn", 12.5], ["fbf", 14.0]], title="T")
        assert "T" in text and "sn" in text and "12.5" in text
        lines = text.splitlines()
        assert set(lines[2]) <= {"-", " "}
