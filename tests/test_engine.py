"""Tests for the experiment engine: specs, cache, runner, campaigns."""

import json

import pytest

from repro.analysis import compare_networks, sweep_loads
from repro.engine import (
    ExperimentEngine,
    ExperimentSpec,
    ResultCache,
    resolve_topology,
    run_compare,
    topology_fingerprint,
)
from repro.engine.cache import SCHEMA_VERSION
from repro.sim import SimConfig, SimResult
from repro.topos import make_network

#: Tiny but shape-preserving windows for the sn54/cm54 class.
FAST = dict(warmup=100, measure=200, drain=300)


def fast_spec(load=0.05, **overrides) -> ExperimentSpec:
    kw = dict(topology="sn54", pattern="RND", load=load, **FAST)
    kw.update(overrides)
    return ExperimentSpec.synthetic(
        kw.pop("topology"), kw.pop("pattern"), kw.pop("load"), **kw
    )


class TestExperimentSpec:
    def test_json_round_trip(self):
        spec = fast_spec(config=SimConfig(num_vcs=3, elastic_links=True))
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_hash_sensitive_to_every_knob(self):
        base = fast_spec()
        assert base.content_hash() != fast_spec(load=0.06).content_hash()
        assert base.content_hash() != fast_spec(seed=2).content_hash()
        assert (
            base.content_hash()
            != fast_spec(config=SimConfig(num_vcs=4)).content_hash()
        )

    def test_fingerprint_stable_and_structural(self):
        a, b = make_network("sn54"), make_network("sn54")
        assert topology_fingerprint(a) == topology_fingerprint(b)
        assert topology_fingerprint(a) != topology_fingerprint(make_network("cm54"))
        # layouts change wire lengths, hence the fingerprint
        assert topology_fingerprint(make_network("sn200")) != topology_fingerprint(
            make_network("sn200", layout="sn_gr")
        )

    def test_resolve_topology(self):
        assert resolve_topology("sn54").num_nodes == 54
        assert resolve_topology("200").num_nodes >= 200
        with pytest.raises(LookupError):
            resolve_topology("fp:deadbeef")

    def test_execute_matches_direct_simulation(self):
        spec = fast_spec()
        direct = spec.execute(topology=make_network("sn54"))
        rebuilt = spec.execute()
        assert direct.avg_latency == rebuilt.avg_latency
        assert direct.throughput == rebuilt.throughput


class TestResultCache:
    def test_same_spec_twice_is_byte_identical_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        spec = fast_spec()
        (first,) = engine.run([spec])
        assert engine.last_stats.executed == 1
        blob = cache.path_for(spec).read_bytes()
        (second,) = engine.run([spec])
        assert engine.last_stats.executed == 0
        assert engine.last_stats.cache_hits == 1
        # re-serializing the result reproduces the file byte-for-byte
        cache.put(spec, second)
        assert cache.path_for(spec).read_bytes() == blob
        assert first.avg_latency == second.avg_latency
        assert first.latencies == second.latencies

    def test_schema_version_mismatch_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        spec = fast_spec()
        engine.run([spec])
        path = cache.path_for(spec)
        entry = json.loads(path.read_text())
        entry["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        engine.run([spec])
        assert engine.last_stats.executed == 1  # stale entry ignored
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = fast_spec()
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(spec) is None
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, "kind": "sim"}))
        assert cache.get(spec) is None  # well-formed but truncated entry

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        engine.run([fast_spec(), fast_spec(load=0.08)])
        stats = cache.stats()
        assert stats.entries == 2 and stats.size_bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestRunner:
    def test_duplicate_specs_coalesce(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        spec = fast_spec()
        results = engine.run([spec, spec, spec])
        assert engine.last_stats.requested == 3
        assert engine.last_stats.unique == 1
        assert engine.last_stats.executed == 1
        assert results[0].avg_latency == results[2].avg_latency

    def test_runs_without_cache(self):
        engine = ExperimentEngine(cache=None)
        (result,) = engine.run([fast_spec()])
        assert result.delivered_packets > 0

    def test_fingerprint_spec_needs_topology(self, tmp_path):
        topo = make_network("sn54")
        spec = fast_spec(topology="fp:" + topology_fingerprint(topo))
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        with pytest.raises(LookupError):
            engine.run([spec])
        (result,) = engine.run([spec], topologies={spec.topology: topo})
        assert result.delivered_packets > 0


class TestCampaignParity:
    #: 2 topologies x 7 loads; the top loads saturate both networks, so
    #: truncation and early stop are exercised in both execution modes.
    LOADS = [0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7]

    def test_parallel_matches_serial_point_for_point(self, tmp_path):
        topos = {"sn54": make_network("sn54"), "cm54": make_network("cm54")}
        serial = run_compare(
            ExperimentEngine(cache=ResultCache(tmp_path / "serial")),
            topos, "RND", self.LOADS, **FAST,
        )
        with ExperimentEngine(
            cache=ResultCache(tmp_path / "par"), max_workers=2
        ) as parallel_engine:
            parallel = run_compare(
                parallel_engine, topos, "RND", self.LOADS, **FAST
            )
        assert set(serial) == set(parallel) == set(topos)
        for label in topos:
            assert serial[label].points == parallel[label].points
            assert serial[label].points[-1].saturated
            assert len(serial[label].points) <= len(self.LOADS)

    def test_repeated_sweep_loads_serves_from_cache(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        topo = make_network("sn54")
        first = sweep_loads(topo, "RND", [0.02, 0.1], engine=engine, **FAST)
        assert engine.last_stats.executed > 0
        again = sweep_loads(topo, "RND", [0.02, 0.1], engine=engine, **FAST)
        assert engine.last_stats.executed == 0  # zero new simulations
        assert first.points == again.points

    def test_symbol_and_object_sweeps_share_cache(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        by_symbol = sweep_loads("sn54", "RND", [0.02], engine=engine, **FAST)
        assert engine.last_stats.executed == 1
        by_object = sweep_loads(
            make_network("sn54"), "RND", [0.02], engine=engine, **FAST
        )
        assert engine.last_stats.executed == 0  # same fingerprint, same key
        assert by_symbol.points == by_object.points

    def test_compare_networks_accepts_symbols(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        curves = compare_networks(
            {"sn54": "sn54", "t2d54": "t2d54"}, "RND", [0.02],
            engine=engine, **FAST,
        )
        assert set(curves) == {"sn54", "t2d54"}
        assert curves["sn54"].network == "sn54"


class TestTrafficTokens:
    """The CLI traffic-token grammar -> tagged-union traffic specs."""

    def test_plain_pattern(self):
        from repro.engine import SyntheticTraffic, traffic_for_token

        spec = traffic_for_token("ADV1", 0.1, 54)
        assert spec == SyntheticTraffic("ADV1", 0.1)
        assert spec.mean_load == 0.1

    def test_burst_forms(self):
        from repro.engine import BurstTraffic, traffic_for_token

        assert traffic_for_token("burst:RND", 0.1, 54) == BurstTraffic(
            "RND", 0.1, on_cycles=64, off_cycles=192
        )
        assert traffic_for_token("burst:ADV1:16+48", 0.1, 54) == BurstTraffic(
            "ADV1", 0.1, on_cycles=16, off_cycles=48
        )
        full = traffic_for_token("burst:ADV1:16+48:0.02", 0.1, 54)
        assert full == BurstTraffic(
            "ADV1", 0.1, on_cycles=16, off_cycles=48, off_load=0.02
        )
        assert full.mean_load == 0.1

    def test_hotspot_forms(self):
        from repro.engine import HotspotTraffic, traffic_for_token

        default = traffic_for_token("hotspot:RND", 0.1, 54)
        assert isinstance(default, HotspotTraffic)
        assert default.fraction == 0.25
        assert len(default.hotspots) == 4
        custom = traffic_for_token("hotspot:RND:0.4:3", 0.1, 54)
        assert custom.fraction == 0.4
        # Deterministic evenly-spread hotspot set for 54 nodes, count 3.
        assert custom.hotspots == (0, 18, 36)
        assert all(0 <= node < 54 for node in custom.hotspots)

    def test_transient_forms(self):
        from repro.engine import TransientTraffic, traffic_for_token

        default = traffic_for_token("transient:ADV1+ADV2", 0.1, 54)
        assert default == TransientTraffic(("ADV1", "ADV2"), 0.1, period=256)
        short = traffic_for_token("transient:ADV1+ADV2:64", 0.1, 54)
        assert short.period == 64

    @pytest.mark.parametrize(
        "token",
        [
            "NOPE",
            "burst:NOPE",
            "burst:RND:banana",
            "burst:RND:16",
            "hotspot:NOPE",
            "hotspot:RND:lots",
            "transient:ADV1+NOPE",
            "transient:",
            "transient:ADV1:nope",
        ],
    )
    def test_bad_tokens_raise_with_grammar(self, token):
        from repro.engine import traffic_for_token

        with pytest.raises(ValueError, match="bad traffic token"):
            traffic_for_token(token, 0.1, 54)

    def test_token_specs_round_trip_and_hash(self):
        from repro.engine import traffic_from_dict, traffic_for_token

        for token in ("burst:ADV1:16+48", "hotspot:RND:0.3:2", "transient:ADV1+ADV2:32"):
            spec = traffic_for_token(token, 0.1, 54)
            clone = traffic_from_dict(json.loads(json.dumps(spec.to_dict())))
            assert clone == spec


class TestAdaptiveStudy:
    def test_study_structure_and_cache_reuse(self, tmp_path):
        from repro.analysis import adaptive_study
        from repro.engine import ResultCache

        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        kwargs = dict(
            networks=("sn54",),
            routings=("default", "ugal-l"),
            traffic=("ADV1", "burst:ADV1:16+48"),
            loads=[0.05, 0.1],
            warmup=100,
            measure=200,
            drain=400,
        )
        study = adaptive_study(engine, **kwargs)
        assert set(study.curves) == {
            ("sn54", routing, token)
            for routing in ("default", "ugal-l")
            for token in ("ADV1", "burst:ADV1:16+48")
        }
        for curve in study.curves.values():
            assert 1 <= len(curve.points) <= 2
        table = study.format_table()
        assert "ugal-l" in table and "burst:ADV1:16+48" in table
        best = study.best_routing("sn54", "ADV1")
        assert best in ("default", "ugal-l")
        payload = json.loads(json.dumps(study.to_dict()))
        assert set(payload["curves"]) == {
            f"sn54/{r}/{t}"
            for r in ("default", "ugal-l")
            for t in ("ADV1", "burst:ADV1:16+48")
        }
        # The whole grid re-served from cache: zero new simulations.
        again = adaptive_study(engine, **kwargs)
        assert engine.last_stats.executed == 0
        for key, curve in study.curves.items():
            assert again.curves[key].points == curve.points


class TestSerializationSatellites:
    def test_sim_result_round_trip_small(self):
        result = fast_spec().execute()
        clone = SimResult.from_dict(result.to_dict())
        assert clone.avg_latency == result.avg_latency
        assert clone.p99_latency == result.p99_latency
        assert clone.saturated == result.saturated

    def test_large_latency_population_compacts_to_histogram(self):
        latencies = [10] * 400 + [20] * 400 + [30] * 10
        result = SimResult(0.1, 1000, 810, 810, 4860, latencies, 54, 500, 0)
        payload = result.to_dict()
        assert "latency_hist" in payload and "latencies" not in payload
        assert payload["latency_hist"] == [[10, 400], [20, 400], [30, 10]]
        clone = SimResult.from_dict(payload)
        assert clone.avg_latency == result.avg_latency
        assert clone.p99_latency == result.p99_latency

    def test_sweep_result_round_trip(self):
        curve = sweep_loads(make_network("sn54"), "RND", [0.02],
                            engine=ExperimentEngine(), **FAST)
        from repro.analysis import SweepResult

        clone = SweepResult.from_dict(json.loads(json.dumps(curve.to_dict())))
        assert clone.points == curve.points
        assert clone.network == curve.network

    def test_saturation_thresholds_come_from_config(self):
        strict = SimConfig(saturation_delivery_fraction=1.1)
        result = fast_spec(config=strict).execute()
        assert result.saturation_delivery_fraction == 1.1
        assert result.saturated  # nothing can deliver 110%
        lax = SimConfig(saturation_delivery_fraction=0.0, saturation_backlog=10**9)
        assert not fast_spec(config=lax).execute().saturated

    def test_largescale_model_build_memoizes(self, tmp_path):
        from repro.analysis import LargeScaleModel

        cache = ResultCache(tmp_path)
        topo = make_network("sn54")
        first = LargeScaleModel.build(topo, "RND", cache=cache)
        assert cache.stats().entries == 1
        hits_before = cache.hits
        second = LargeScaleModel.build(topo, "RND", cache=cache)
        assert cache.hits == hits_before + 1
        assert second.max_channel_load_per_rate == first.max_channel_load_per_rate
        assert second.zero_load_latency() == first.zero_load_latency()
        uncached = LargeScaleModel.build(topo, "RND", cache=False)
        assert uncached.max_channel_load_per_rate == first.max_channel_load_per_rate

    def test_flow_sampling_scales_and_is_seeded(self):
        from repro.traffic import SyntheticSource

        small = SyntheticSource(make_network("sn54"), "RND", 0.1)
        large = SyntheticSource(make_network("sn200"), "RND", 0.1)
        assert large.default_flow_samples() >= small.default_flow_samples()
        assert SyntheticSource(make_network("sn54"), "ADV1", 0.1).default_flow_samples() == 1
        seeded = SyntheticSource(make_network("sn54"), "RND", 0.1, seed=7)
        assert seeded.flows(samples=50) == seeded.flows(samples=50)
        other = SyntheticSource(make_network("sn54"), "RND", 0.1, seed=8)
        assert seeded.flows(samples=50) != other.flows(samples=50)
