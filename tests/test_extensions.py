"""Tests for fixed-size construction (section 3.5.3) and resilience."""

import pytest

from repro.analysis import degrade, resilience_curve
from repro.core.slimnoc import design_for_nodes
from repro.topos import make_network


class TestDesignForNodes:
    def test_exact_sizes(self):
        """Paper examples: 200, 1024, and 1296 nodes have exact designs."""
        assert (design_for_nodes(200).q, design_for_nodes(200).concentration) == (5, 4)
        assert (design_for_nodes(1024).q, design_for_nodes(1024).concentration) == (8, 8)
        assert (design_for_nodes(1296).q, design_for_nodes(1296).concentration) == (9, 8)

    def test_inexact_size_rounds_up(self):
        """N != Nr*p is feasible by underpopulating tiles (section 3.5.3)."""
        config = design_for_nodes(1000)
        assert config.num_nodes >= 1000
        assert config.num_nodes - 1000 < config.num_routers  # tightest fit

    def test_kappa_constraint_respected(self):
        config = design_for_nodes(1296, max_kappa=2)
        assert abs(config.kappa) <= 2

    def test_kappa_too_tight_rejected(self):
        with pytest.raises(ValueError):
            design_for_nodes(3, max_kappa=0, allow_underpopulated=False)

    def test_strict_mode_requires_exact_factorization(self):
        with pytest.raises(ValueError):
            design_for_nodes(1001, allow_underpopulated=False)
        config = design_for_nodes(200, allow_underpopulated=False)
        assert config.num_nodes == 200

    def test_tiny_target_rejected(self):
        with pytest.raises(ValueError):
            design_for_nodes(1)

    def test_small_targets_supported(self):
        config = design_for_nodes(16)
        assert config.num_nodes == 16 and config.q == 2


class TestResilience:
    def test_no_failures_is_baseline(self):
        sn = make_network("sn200")
        report = degrade(sn, 0.0)
        assert report.connected
        assert report.diameter == 2
        assert report.failed_links == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            degrade(make_network("sn200"), 1.0)
        with pytest.raises(ValueError):
            degrade(make_network("sn200"), -0.1)

    def test_expander_degrades_gracefully(self):
        """Paper section 2.1: MMS graphs are good expanders — 10% link
        failures leave SN connected with diameter still close to 2."""
        sn = make_network("sn200")
        report = degrade(sn, 0.10, seed=1)
        assert report.connected
        assert report.diameter <= 4
        assert report.average_path < 2.5

    def test_sn_beats_torus_under_failures(self):
        """At the same failure rate, SN's path stretch is far smaller."""
        sn = make_network("sn200")
        torus = make_network("t2d4")
        sn_reports = resilience_curve(sn, [0.15], seeds=(0, 1, 2))[0.15]
        torus_reports = resilience_curve(torus, [0.15], seeds=(0, 1, 2))[0.15]
        sn_stretch = [
            r.average_path / sn.average_hop_distance() for r in sn_reports if r.connected
        ]
        torus_stretch = [
            r.average_path / torus.average_hop_distance()
            for r in torus_reports
            if r.connected
        ]
        # Torus may even partition; when both survive SN stretches less.
        assert sn_stretch, "SN disconnected at 15% failures"
        if torus_stretch:
            assert min(sn_stretch) < max(torus_stretch) + 0.5
        assert max(sn_stretch) < 1.6

    def test_failure_fraction_accounting(self):
        sn = make_network("sn200")
        report = degrade(sn, 0.2, seed=3)
        assert report.failed_links == int(0.2 * sn.num_links())
        assert 0.18 < report.failure_fraction < 0.22

    def test_seeds_vary_patterns(self):
        sn = make_network("sn54")
        a = degrade(sn, 0.3, seed=0)
        b = degrade(sn, 0.3, seed=1)
        # Same failure count, (almost certainly) different damage.
        assert a.failed_links == b.failed_links
