"""Tests for Slim NoC layouts, placement model, and cost models (section 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SlimNoC,
    average_wire_length,
    edge_buffer_flits,
    layout_coordinates,
    link_distance_histogram,
    max_wire_crossings,
    mms_graph,
    per_router_central_buffer,
    per_router_edge_buffers,
    round_trip_cycles,
    satisfies_wire_constraint,
    technology_wire_limit,
    total_central_buffers,
    total_edge_buffers,
    wire_path,
)
from repro.core.costmodel import BufferBudget, theorem1_bounds
from repro.core.layouts import LAYOUTS, group_tile_shape

ALL_LAYOUTS = sorted(LAYOUTS)


class TestLayoutGeometry:
    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    @pytest.mark.parametrize("q", [3, 4, 5, 8, 9])
    def test_coordinates_bijective(self, layout, q):
        coords = layout_coordinates(mms_graph(q), layout)
        assert len(coords) == 2 * q * q
        assert len(set(coords.values())) == 2 * q * q

    @pytest.mark.parametrize("layout", ["sn_basic", "sn_subgr", "sn_rand"])
    @pytest.mark.parametrize("q", [3, 5, 9])
    def test_rectangular_q_by_2q(self, layout, q):
        """Basic/subgroup/random layouts use the q x 2q rectangle (section 3.3)."""
        coords = layout_coordinates(mms_graph(q), layout)
        xs = {c[0] for c in coords.values()}
        ys = {c[1] for c in coords.values()}
        assert max(xs) == q and min(xs) == 1
        assert max(ys) == 2 * q and min(ys) == 1

    def test_basic_formula(self):
        """[G|a,b] -> (b, a + G*q)."""
        g = mms_graph(5)
        coords = layout_coordinates(g, "sn_basic")
        for index in range(g.num_routers):
            label = g.label(index)
            assert coords[index] == (label.position, label.subgroup + label.group_type * 5)

    def test_subgroup_formula(self):
        """[G|a,b] -> (b, 2a - (1 - G))."""
        g = mms_graph(5)
        coords = layout_coordinates(g, "sn_subgr")
        for index in range(g.num_routers):
            label = g.label(index)
            assert coords[index] == (
                label.position,
                2 * label.subgroup - (1 - label.group_type),
            )

    def test_subgroup_interleaves_types(self):
        """Consecutive rows alternate subgroup type in sn_subgr."""
        g = mms_graph(5)
        coords = layout_coordinates(g, "sn_subgr")
        row_types = {}
        for index in range(g.num_routers):
            y = coords[index][1]
            row_types.setdefault(y, set()).add(g.label(index).group_type)
        for y, types in row_types.items():
            assert types == {(y + 1) % 2}  # odd rows type 0, even rows type 1

    def test_group_layout_reproduces_figure_7b(self):
        """SN-L: 9 groups of 6x3 routers in a 3x3 grid — an 18x9 die."""
        g = mms_graph(9)
        coords = layout_coordinates(g, "sn_gr")
        xs = [c[0] for c in coords.values()]
        ys = [c[1] for c in coords.values()]
        assert max(xs) == 18 and max(ys) == 9
        assert group_tile_shape(9) == (6, 3)

    def test_group_layout_keeps_groups_contiguous(self):
        g = mms_graph(9)
        coords = layout_coordinates(g, "sn_gr")
        width, height = group_tile_shape(9)
        for index in range(g.num_routers):
            label = g.label(index)
            group = label.subgroup - 1
            x, y = coords[index]
            assert (x - 1) // width == group % 3
            assert (y - 1) // height == group // 3

    def test_random_layout_seeded(self):
        g = mms_graph(5)
        a = layout_coordinates(g, "sn_rand", seed=7)
        b = layout_coordinates(g, "sn_rand", seed=7)
        c = layout_coordinates(g, "sn_rand", seed=8)
        assert a == b
        assert a != c

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            layout_coordinates(mms_graph(5), "sn_spiral")


class TestLayoutQuality:
    """Section 3.3.1: optimized layouts shorten wires."""

    @pytest.mark.parametrize("q", [5, 8, 9])
    def test_subgr_and_gr_beat_basic_and_rand(self, q):
        m = {
            layout: SlimNoC(q, 4, layout=layout).average_wire_length()
            for layout in ALL_LAYOUTS
        }
        assert m["sn_subgr"] < m["sn_basic"]
        assert m["sn_gr"] < m["sn_rand"]

    def test_paper_25pct_reduction_ballpark(self):
        """sn_subgr/sn_gr reduce M by roughly 25% vs sn_rand/sn_basic."""
        q = 9
        m = {
            layout: SlimNoC(q, 8, layout=layout).average_wire_length()
            for layout in ALL_LAYOUTS
        }
        best = min(m["sn_subgr"], m["sn_gr"])
        worst = max(m["sn_basic"], m["sn_rand"])
        reduction = 1 - best / worst
        assert 0.10 < reduction < 0.50

    def test_theorem1_cube_root_scaling(self):
        """M of sn_subgr grows like N^(1/3) (Theorem 1)."""
        for q, p in [(5, 4), (9, 8), (11, 8)]:
            sn = SlimNoC(q, p, layout="sn_subgr")
            low, high = theorem1_bounds(sn.num_nodes)
            assert low <= sn.average_wire_length() <= high


class TestWirePath:
    def test_straight_wire(self):
        assert wire_path((1, 1), (1, 4)) == [(1, 1), (1, 2), (1, 3), (1, 4)]

    def test_l_shape_x_dominant(self):
        """|dx| > |dy|: leave i vertically first, corner at (xi, yj)."""
        path = wire_path((1, 1), (4, 2))
        assert (1, 2) in path  # corner
        assert (4, 1) not in path

    def test_l_shape_y_dominant(self):
        """|dy| >= |dx|: leave i horizontally first, corner at (xj, yi)."""
        path = wire_path((1, 1), (2, 4))
        assert (2, 1) in path
        assert (1, 4) not in path

    def test_path_length_is_manhattan_plus_one(self):
        ci, cj = (2, 3), (7, 9)
        manhattan = abs(ci[0] - cj[0]) + abs(ci[1] - cj[1])
        assert len(wire_path(ci, cj)) == manhattan + 1

    def test_no_duplicate_slots(self):
        path = wire_path((3, 3), (8, 5))
        assert len(path) == len(set(path))

    @given(
        st.tuples(st.integers(1, 12), st.integers(1, 12)),
        st.tuples(st.integers(1, 12), st.integers(1, 12)),
    )
    @settings(max_examples=100, deadline=None)
    def test_endpoints_always_covered(self, ci, cj):
        path = wire_path(ci, cj)
        assert ci in path and cj in path


class TestWireConstraint:
    def test_crossings_positive_for_sn(self):
        sn = SlimNoC(5, 4, layout="sn_subgr")
        assert max_wire_crossings(sn.edges(), sn.coordinates) > 0

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_paper_constraint_satisfied_at_45nm(self, layout):
        """Section 3.3.2: no SN layout violates Eq. 3."""
        sn = SlimNoC(5, 4, layout=layout)
        assert satisfies_wire_constraint(sn.edges(), sn.coordinates, 45, 4)

    def test_sn_l_satisfied_at_22nm(self):
        sn = SlimNoC(9, 8, layout="sn_gr")
        assert satisfies_wire_constraint(sn.edges(), sn.coordinates, 22, 8)

    def test_limit_constant_across_nodes(self):
        """Density doubles while the tile side halves per node step, so the
        per-tile link budget is scale-invariant with the paper's constants."""
        assert (
            technology_wire_limit(45, 4)
            == technology_wire_limit(22, 4)
            == technology_wire_limit(11, 4)
        )

    def test_limit_scales_with_concentration(self):
        assert technology_wire_limit(45, 8) > technology_wire_limit(45, 2)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ValueError):
            technology_wire_limit(7, 4)


class TestBufferModel:
    def test_rtt_formula(self):
        """Tij = 2*ceil(dist/H) + 3."""
        assert round_trip_cycles(0) == 3
        assert round_trip_cycles(1) == 5
        assert round_trip_cycles(4) == 11
        assert round_trip_cycles(9, hops_per_cycle=9) == 5
        assert round_trip_cycles(10, hops_per_cycle=9) == 7

    def test_rtt_validation(self):
        with pytest.raises(ValueError):
            round_trip_cycles(-1)
        with pytest.raises(ValueError):
            round_trip_cycles(3, hops_per_cycle=0)

    def test_edge_buffer_scales_with_vcs(self):
        assert edge_buffer_flits(4, vcs=2) == 2 * edge_buffer_flits(4, vcs=1)

    def test_smart_shrinks_buffers(self):
        """SMART (H=9) cuts the distance term of every edge buffer."""
        sn = SlimNoC(9, 8, layout="sn_subgr")
        assert total_edge_buffers(sn, hops_per_cycle=9) < total_edge_buffers(sn)

    def test_total_edge_buffers_counts_both_directions(self):
        sn = SlimNoC(3, 3)
        per_link = [
            edge_buffer_flits(sn.link_length_hops(i, j), 2) for i, j in sn.edges()
        ]
        assert total_edge_buffers(sn, vcs=2) == 2 * sum(per_link)

    def test_central_buffer_formula(self):
        """Δcb = Nr (δcb + 2 k' |VC|), independent of wire lengths."""
        sn = SlimNoC(5, 4)
        assert total_central_buffers(sn, cb_flits=20, vcs=2) == 50 * (20 + 2 * 7 * 2)

    def test_central_buffer_layout_independent(self):
        a = SlimNoC(5, 4, layout="sn_basic")
        b = SlimNoC(5, 4, layout="sn_subgr")
        assert total_central_buffers(a, 20) == total_central_buffers(b, 20)

    def test_cb_beats_edge_buffers_for_large_n(self):
        """Figure 5b: central buffers need the least space at scale."""
        sn = SlimNoC(9, 8, layout="sn_subgr")
        cb_per_router = per_router_central_buffer(sn, cb_flits=40)
        eb_per_router = sum(per_router_edge_buffers(sn)) / sn.num_routers
        assert cb_per_router < eb_per_router

    def test_per_router_totals_sum_to_delta(self):
        sn = SlimNoC(5, 4)
        assert sum(per_router_edge_buffers(sn)) == total_edge_buffers(sn)

    def test_buffer_budget_constructors(self):
        sn = SlimNoC(5, 4)
        eb = BufferBudget.edge(sn)
        cb = BufferBudget.central(sn, 20)
        assert eb.scheme == "edge"
        assert cb.scheme == "cbr20"
        assert eb.total_flits == total_edge_buffers(sn)


class TestDistanceHistogram:
    def test_probabilities_sum_to_one(self):
        sn = SlimNoC(5, 4, layout="sn_gr")
        hist = link_distance_histogram(sn)
        assert math.isclose(sum(hist.values()), 1.0)

    def test_bucket_bounds(self):
        sn = SlimNoC(5, 4, layout="sn_subgr")
        for (lo, hi) in link_distance_histogram(sn):
            assert hi == lo + 1
            assert lo % 2 == 1

    def test_figure6_short_links_dominate(self):
        """Fig 6: P(distance in 1-2) ~ 0.25 for both optimized layouts, N=200."""
        for layout in ("sn_gr", "sn_subgr"):
            hist = link_distance_histogram(SlimNoC(5, 4, layout=layout))
            assert hist[(1, 2)] > 0.15

    def test_subgr_avoids_longest_links_at_200(self):
        """Fig 6 observation: sn_subgr uses fewer die-spanning links than sn_gr."""
        gr = link_distance_histogram(SlimNoC(5, 4, layout="sn_gr"))
        subgr = link_distance_histogram(SlimNoC(5, 4, layout="sn_subgr"))
        longest_gr = max(lo for lo, _ in gr)
        longest_subgr = max(lo for lo, _ in subgr)
        assert longest_subgr <= longest_gr


class TestAverageWireLength:
    def test_matches_manual_computation(self):
        sn = SlimNoC(3, 3)
        edges = sn.edges()
        manual = sum(sn.link_length_hops(i, j) for i, j in edges) / len(edges)
        assert math.isclose(average_wire_length(sn), manual)
