"""Unit and property tests for the finite-field substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import (
    FiniteField,
    factor_prime_power,
    finite_field,
    is_prime,
    is_prime_power,
    prime_powers_up_to,
)

PAPER_FIELDS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


class TestPrimes:
    def test_small_primes(self):
        assert [n for n in range(2, 20) if is_prime(n)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_non_primes(self):
        for n in (-5, 0, 1, 4, 9, 15, 21, 100):
            assert not is_prime(n)

    def test_factor_prime_power(self):
        assert factor_prime_power(8) == (2, 3)
        assert factor_prime_power(9) == (3, 2)
        assert factor_prime_power(7) == (7, 1)
        assert factor_prime_power(16) == (2, 4)

    @pytest.mark.parametrize("n", [6, 10, 12, 15, 100])
    def test_factor_rejects_composites(self, n):
        with pytest.raises(ValueError):
            factor_prime_power(n)

    def test_is_prime_power(self):
        assert is_prime_power(27)
        assert not is_prime_power(1)
        assert not is_prime_power(6)

    def test_prime_powers_up_to(self):
        assert prime_powers_up_to(16) == [2, 3, 4, 5, 7, 8, 9, 11, 13, 16]


@pytest.mark.parametrize("q", PAPER_FIELDS)
class TestFieldAxioms:
    """Field axioms hold for every field used in the paper."""

    def test_additive_identity(self, q):
        f = finite_field(q)
        assert all(f.add(a, 0) == a for a in f.elements())

    def test_multiplicative_identity(self, q):
        f = finite_field(q)
        assert all(f.mul(a, 1) == a for a in f.elements())

    def test_additive_inverse(self, q):
        f = finite_field(q)
        assert all(f.add(a, f.neg(a)) == 0 for a in f.elements())

    def test_multiplicative_inverse(self, q):
        f = finite_field(q)
        assert all(f.mul(a, f.inv(a)) == 1 for a in f.nonzero_elements())

    def test_commutativity(self, q):
        f = finite_field(q)
        for a in f.elements():
            for b in f.elements():
                assert f.add(a, b) == f.add(b, a)
                assert f.mul(a, b) == f.mul(b, a)

    def test_associativity_sampled(self, q):
        f = finite_field(q)
        sample = list(f.elements())[: min(q, 6)]
        for a in sample:
            for b in sample:
                for c in sample:
                    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
                    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    def test_distributivity(self, q):
        f = finite_field(q)
        sample = list(f.elements())[: min(q, 6)]
        for a in sample:
            for b in sample:
                for c in sample:
                    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    def test_no_zero_divisors(self, q):
        f = finite_field(q)
        for a in f.nonzero_elements():
            for b in f.nonzero_elements():
                assert f.mul(a, b) != 0

    def test_primitive_element_generates(self, q):
        f = finite_field(q)
        xi = f.primitive_element
        powers = {f.power(xi, e) for e in range(q - 1)}
        assert powers == set(f.nonzero_elements())

    def test_addition_table_is_latin_square(self, q):
        f = finite_field(q)
        table = f.addition_table()
        for row in table:
            assert sorted(row) == list(range(q))
        for col in range(q):
            assert sorted(table[row_i][col] for row_i in range(q)) == list(range(q))

    def test_multiplication_table_nonzero_latin(self, q):
        f = finite_field(q)
        table = f.multiplication_table()
        for a in f.nonzero_elements():
            assert sorted(table[a][b] for b in f.nonzero_elements()) == list(
                f.nonzero_elements()
            )


class TestPaperTable3:
    """The paper's Table 3: GF(9) and GF(8) operation tables."""

    def test_gf9_characteristic_three(self):
        f = finite_field(9)
        assert f.p == 3 and f.m == 2
        one_plus_one = f.add(1, 1)
        assert f.add(one_plus_one, 1) == 0  # 1+1+1 = 0 in char 3

    def test_gf8_self_inverse_addition(self):
        f = finite_field(8)
        # Char 2: every element is its own additive inverse (Table 3 right).
        assert all(f.neg(a) == a for a in f.elements())

    def test_gf9_has_four_primitive_elements(self):
        f = finite_field(9)
        generators = []
        for candidate in f.nonzero_elements():
            powers = {f.power(candidate, e) for e in range(1, 9)}
            if powers == set(f.nonzero_elements()):
                generators.append(candidate)
        assert len(generators) == 4  # paper: "There are 4 such elements"

    def test_element_names_match_paper_convention(self):
        f = finite_field(9)
        names = [f.element_name(a) for a in f.elements()]
        assert names == ["0", "1", "2", "u", "v", "w", "x", "y", "z"]

    def test_format_tables_render(self):
        f = finite_field(8)
        assert "+ |" in f.format_table("+")
        assert "* |" in f.format_table("*")
        assert "el -el" in f.format_table("-")
        with pytest.raises(ValueError):
            f.format_table("?")

    def test_gf9_zero_row_in_product_table(self):
        f = finite_field(9)
        assert all(f.mul(0, b) == 0 for b in f.elements())


class TestFieldErrors:
    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            finite_field(5).inv(0)

    def test_zero_negative_power_raises(self):
        with pytest.raises(ZeroDivisionError):
            finite_field(5).power(0, -1)

    def test_zero_power_zero_is_one(self):
        assert finite_field(5).power(0, 0) == 1

    def test_non_prime_power_rejected(self):
        with pytest.raises(ValueError):
            FiniteField(6)

    def test_cached_constructor_returns_same_object(self):
        assert finite_field(9) is finite_field(9)


@given(st.sampled_from([4, 5, 7, 8, 9]), st.data())
@settings(max_examples=120, deadline=None)
def test_field_properties_hypothesis(q, data):
    """Randomized field identities: (a+b)-b == a, (a*b)*inv(b) == a."""
    f = finite_field(q)
    a = data.draw(st.integers(0, q - 1))
    b = data.draw(st.integers(0, q - 1))
    assert f.sub(f.add(a, b), b) == a
    if b != 0:
        assert f.mul(f.mul(a, b), f.inv(b)) == a


@given(st.sampled_from([5, 8, 9]), st.integers(0, 30), st.integers(0, 30))
@settings(max_examples=80, deadline=None)
def test_power_homomorphism(q, n, k):
    """xi^(n+k) == xi^n * xi^k."""
    f = finite_field(q)
    xi = f.primitive_element
    assert f.power(xi, n + k) == f.mul(f.power(xi, n), f.power(xi, k))
