"""Tests for routing: minimal paths, VC schedules, deadlock policies, UGAL."""

import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlimNoC
from repro.routing import (
    DeflectionRouting,
    DimensionOrderRouting,
    MinimalPaths,
    Route,
    StaticMinimalRouting,
    UGALRouting,
    ValiantRouting,
    XYAdaptiveRouting,
    ZeroQueues,
    default_routing,
)
from repro.topos import ConcentratedMesh, FlattenedButterfly, Torus2D, make_network


class TestMinimalPaths:
    def test_paths_are_shortest(self):
        sn = make_network("sn200")
        paths = MinimalPaths(sn)
        for src in range(0, sn.num_routers, 7):
            dist = sn.shortest_hops_from(src)
            for dst in range(sn.num_routers):
                assert len(paths.path(src, dst)) - 1 == dist[dst]

    def test_path_endpoints(self):
        sn = make_network("sn200")
        paths = MinimalPaths(sn)
        path = paths.path(3, 42)
        assert path[0] == 3 and path[-1] == 42

    def test_self_path(self):
        paths = MinimalPaths(make_network("sn200"))
        assert paths.path(5, 5) == (5,)

    def test_paths_deterministic(self):
        sn = make_network("sn200")
        a, b = MinimalPaths(sn), MinimalPaths(sn)
        for src, dst in [(0, 49), (13, 7), (22, 31)]:
            assert a.path(src, dst) == b.path(src, dst)

    def test_consecutive_routers_connected(self):
        sn = make_network("sn1296")
        paths = MinimalPaths(sn)
        path = paths.path(0, 161)
        for u, v in zip(path, path[1:]):
            assert v in sn.router_neighbors(u)

    def test_channel_loads_conservation(self):
        """Total channel load equals sum of rate x hops over all flows."""
        sn = make_network("sn200")
        paths = MinimalPaths(sn)
        flows = {(0, 10): 1.0, (5, 20): 2.0}
        loads = paths.channel_loads(flows)
        expected = 1.0 * paths.hop_count(0, 10) + 2.0 * paths.hop_count(5, 20)
        assert sum(loads.values()) == pytest.approx(expected)

    def test_max_channel_load_empty(self):
        paths = MinimalPaths(make_network("sn200"))
        assert paths.max_channel_load({}) == 0.0
        assert paths.max_channel_load({(3, 3): 5.0}) == 0.0


class TestStaticMinimalRouting:
    def test_vc_schedule_ascends(self):
        sn = make_network("sn200")
        routing = StaticMinimalRouting(sn, num_vcs=2)
        route = routing.route(0, 37)
        assert list(route.vcs) == sorted(route.vcs)
        assert all(vc < 2 for vc in route.vcs)

    def test_sn_paths_at_most_two_hops(self):
        sn = make_network("sn200")
        routing = StaticMinimalRouting(sn, num_vcs=2)
        for dst in range(1, 50, 3):
            assert routing.route(0, dst).hops <= 2

    def test_vc_cover_enforced(self):
        mesh = ConcentratedMesh(8, 8, 3)
        with pytest.raises(ValueError):
            StaticMinimalRouting(mesh, num_vcs=2)  # diameter 14 > 2 VCs

    def test_vc_cover_can_be_disabled(self):
        mesh = ConcentratedMesh(8, 8, 3)
        routing = StaticMinimalRouting(mesh, num_vcs=2, enforce_vc_cover=False)
        assert routing.route(0, 63).hops == 14

    def test_route_validation(self):
        with pytest.raises(ValueError):
            Route((0, 1, 2), (0,))  # needs 2 VCs for 2 hops


class TestDimensionOrderRouting:
    def test_xy_order_on_mesh(self):
        mesh = ConcentratedMesh(5, 5, 1)
        routing = DimensionOrderRouting(mesh)
        route = routing.route(mesh.router_at(0, 0), mesh.router_at(3, 2))
        positions = [mesh.position_of(r) for r in route.path]
        # X changes first, then Y.
        assert positions == [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]

    def test_mesh_routes_stay_on_vc0(self):
        mesh = ConcentratedMesh(5, 5, 1)
        routing = DimensionOrderRouting(mesh)
        route = routing.route(0, 24)
        assert all(vc == 0 for vc in route.vcs)

    def test_torus_wrap_minimal(self):
        torus = Torus2D(6, 6, 1)
        routing = DimensionOrderRouting(torus)
        route = routing.route(torus.router_at(0, 0), torus.router_at(5, 0))
        assert route.hops == 1  # via wraparound

    def test_torus_dateline_vc_switch(self):
        torus = Torus2D(6, 6, 1)
        routing = DimensionOrderRouting(torus)
        # 1 -> 5 goes backwards through the wrap: 1 -> 0 -> 5.
        route = routing.route(torus.router_at(1, 0), torus.router_at(5, 0))
        assert route.path == (
            torus.router_at(1, 0),
            torus.router_at(0, 0),
            torus.router_at(5, 0),
        )
        assert route.vcs[0] == 0  # before the wrap link
        assert route.vcs[-1] == 1  # the wrap (dateline) link switches VC

    def test_torus_routes_are_minimal(self):
        torus = Torus2D(6, 5, 1)
        routing = DimensionOrderRouting(torus)
        for src in range(0, 30, 7):
            dist = torus.shortest_hops_from(src)
            for dst in range(30):
                assert routing.route(src, dst).hops == dist[dst]

    def test_vc_resets_on_dimension_turn(self):
        torus = Torus2D(6, 6, 1)
        routing = DimensionOrderRouting(torus)
        # Wrap in X then travel in Y: Y hops restart on VC0.
        route = routing.route(torus.router_at(1, 1), torus.router_at(5, 3))
        grid_path = [torus.position_of(r) for r in route.path]
        y_hops = [i for i, (a, b) in enumerate(zip(grid_path, grid_path[1:])) if a[1] != b[1]]
        assert route.vcs[y_hops[0]] == 0

    def test_rejects_non_grid(self):
        with pytest.raises(TypeError):
            DimensionOrderRouting(make_network("sn200"))

    def test_torus_needs_two_vcs(self):
        with pytest.raises(ValueError):
            DimensionOrderRouting(Torus2D(5, 5, 1), num_vcs=1)


class TestValiant:
    def test_routes_are_valid_walks(self):
        sn = make_network("sn200")
        routing = ValiantRouting(sn, num_vcs=4, seed=3)
        for dst in (10, 20, 30):
            route = routing.route(0, dst)
            assert route.path[0] == 0 and route.path[-1] == dst
            for u, v in zip(route.path, route.path[1:]):
                assert v in sn.router_neighbors(u)

    def test_at_most_double_diameter(self):
        sn = make_network("sn200")
        routing = ValiantRouting(sn, num_vcs=4, seed=3)
        assert all(routing.route(0, d).hops <= 4 for d in range(1, 50))


class TestUGAL:
    def test_zero_queues_degrades_to_minimal(self):
        sn = make_network("sn200")
        ugal = UGALRouting(sn, num_vcs=4, seed=5)
        minimal = StaticMinimalRouting(sn, num_vcs=4)
        for dst in range(1, 50, 5):
            assert ugal.route(0, dst).hops <= minimal.route(0, dst).hops + 2
            # With empty queues the minimal path always costs <= Valiant.
            assert ugal.route(0, dst).path == minimal.route(0, dst).path

    def test_congestion_triggers_detour(self):
        sn = make_network("sn200")

        class CongestedFirstHop(ZeroQueues):
            def __init__(self, minimal_next):
                self.minimal_next = minimal_next

            def output_queue(self, router, neighbor):
                return 100 if neighbor == self.minimal_next else 0

        minimal = StaticMinimalRouting(sn, num_vcs=4)
        min_path = minimal.route(0, 37).path
        ugal = UGALRouting(sn, num_vcs=4, oracle=CongestedFirstHop(min_path[1]), seed=9)
        detours = sum(ugal.route(0, 37).path != min_path for _ in range(20))
        assert detours > 10  # most packets avoid the congested first hop

    def test_global_variant_sums_whole_path(self):
        sn = make_network("sn200")

        class UniformQueues(ZeroQueues):
            def output_queue(self, router, neighbor):
                return 3

        ugal_g = UGALRouting(sn, num_vcs=4, global_info=True, oracle=UniformQueues(), seed=2)
        # Uniform congestion: minimal (shorter) always wins.
        minimal = StaticMinimalRouting(sn, num_vcs=4)
        for dst in (9, 17, 33):
            assert ugal_g.route(0, dst).path == minimal.route(0, dst).path

    def test_names(self):
        sn = make_network("sn200")
        assert UGALRouting(sn).name == "ugal-l"
        assert UGALRouting(sn, global_info=True).name == "ugal-g"


class TestXYAdaptive:
    def test_picks_uncongested_quadrant(self):
        fbf = FlattenedButterfly(5, 5, 1)

        class RowCongested(ZeroQueues):
            def output_queue(self, router, neighbor):
                # Congest row-first intermediate (dx, sy).
                return 50 if fbf.position_of(neighbor)[1] == 0 else 0

        routing = XYAdaptiveRouting(fbf, oracle=RowCongested())
        route = routing.route(fbf.router_at(0, 0), fbf.router_at(3, 2))
        # Column-first: intermediate shares the source's column.
        assert fbf.position_of(route.path[1])[0] == 0

    def test_single_dimension_routes_direct(self):
        fbf = FlattenedButterfly(5, 5, 1)
        routing = XYAdaptiveRouting(fbf)
        assert routing.route(fbf.router_at(0, 0), fbf.router_at(4, 0)).hops == 1

    def test_rejects_non_grid(self):
        with pytest.raises(TypeError):
            XYAdaptiveRouting(make_network("sn200"))


class TestDeflection:
    def test_zero_oracle_takes_minimal_path(self):
        sn = make_network("sn200")
        deflect = DeflectionRouting(sn)
        minimal = StaticMinimalRouting(sn, num_vcs=deflect.num_vcs)
        for dst in range(1, 50, 5):
            assert deflect.route(0, dst).path == minimal.route(0, dst).path

    def test_congested_first_hop_deflects_to_least_loaded(self):
        sn = make_network("sn200")
        minimal = StaticMinimalRouting(sn, num_vcs=4)
        min_path = minimal.route(0, 37).path
        neighbors = sorted(sn.router_neighbors(0))
        quiet = next(n for n in neighbors if n != min_path[1])

        class OneQuietNeighbor(ZeroQueues):
            def output_queue(self, router, neighbor):
                return 0 if neighbor == quiet else 50

        route = DeflectionRouting(sn, oracle=OneQuietNeighbor()).route(0, 37)
        assert route.path[1] == quiet
        assert route.path[0] == 0 and route.path[-1] == 37
        for u, v in zip(route.path, route.path[1:]):
            assert v in sn.router_neighbors(u)

    def test_threshold_tolerates_shallow_queues(self):
        sn = make_network("sn200")

        class ShallowQueues(ZeroQueues):
            def output_queue(self, router, neighbor):
                return 3

        minimal = StaticMinimalRouting(sn, num_vcs=3)
        tolerant = DeflectionRouting(sn, oracle=ShallowQueues(), threshold=4)
        for dst in (9, 17, 33):
            assert tolerant.route(0, dst).path == minimal.route(0, dst).path

    def test_vc_budget_limits_detour_length(self):
        """Candidates whose detour exceeds the VC budget are skipped; the
        route still fits an ascending schedule."""
        sn = make_network("sn200")

        class Congested(ZeroQueues):
            def output_queue(self, router, neighbor):
                return 10

        deflect = DeflectionRouting(sn, num_vcs=2, oracle=Congested())
        for dst in range(1, 50, 5):
            route = deflect.route(0, dst)
            assert route.hops <= 2
            assert route.vcs == tuple(min(h, 1) for h in range(route.hops))

    def test_self_route_and_threshold_validation(self):
        sn = make_network("sn200")
        assert DeflectionRouting(sn).route(4, 4) == Route((4,), ())
        with pytest.raises(ValueError):
            DeflectionRouting(sn, threshold=-1)

    def test_default_vcs_cover_diameter_plus_detour(self):
        sn = make_network("sn200")
        assert DeflectionRouting(sn).num_vcs == sn.diameter + 1


class TestZeroOracleWarning:
    def _records(self, caplog):
        return [r for r in caplog.records if r.name == "repro.routing"]

    def test_ugal_warns_once_with_zero_oracle(self, caplog):
        sn = make_network("sn200")
        ugal = UGALRouting(sn, num_vcs=4)
        with caplog.at_level(logging.WARNING, logger="repro.routing"):
            ugal.route(0, 7)
            ugal.route(0, 9)
        records = self._records(caplog)
        assert len(records) == 1
        assert "ugal-l" in records[0].getMessage()
        assert "ZeroQueues" in records[0].getMessage()

    @pytest.mark.parametrize(
        "make",
        [
            lambda sn: UGALRouting(sn, global_info=True),
            lambda sn: DeflectionRouting(sn),
        ],
        ids=["ugal-g", "deflect"],
    )
    def test_other_adaptive_schemes_warn_too(self, caplog, make):
        routing = make(make_network("sn200"))
        with caplog.at_level(logging.WARNING, logger="repro.routing"):
            routing.route(0, 7)
        assert len(self._records(caplog)) == 1

    def test_custom_oracle_subclass_stays_quiet(self, caplog):
        """Tests and callers that *subclass* ZeroQueues made a choice —
        only the exact default type warns."""
        sn = make_network("sn200")

        class Custom(ZeroQueues):
            def output_queue(self, router, neighbor):
                return 1

        ugal = UGALRouting(sn, num_vcs=4, oracle=Custom())
        with caplog.at_level(logging.WARNING, logger="repro.routing"):
            ugal.route(0, 7)
        assert not self._records(caplog)

    def test_simulator_attachment_silences_warning(self, caplog):
        from repro.sim import NoCSimulator

        sn = make_network("sn54")
        ugal = UGALRouting(sn, num_vcs=4)
        sim = NoCSimulator(sn, routing=ugal, seed=1)
        assert ugal.oracle is sim  # live oracle self-installed
        with caplog.at_level(logging.WARNING, logger="repro.routing"):
            ugal.route(0, 7)
        assert not self._records(caplog)

    def test_stale_simulator_oracle_is_rebound(self):
        """A routing reused across runs re-binds to the *new* simulator,
        while a custom oracle is never overwritten."""
        from repro.sim import NoCSimulator

        sn = make_network("sn54")
        ugal = UGALRouting(sn, num_vcs=4)
        first = NoCSimulator(sn, routing=ugal, seed=1)
        assert ugal.oracle is first
        second = NoCSimulator(sn, routing=ugal, seed=2)
        assert ugal.oracle is second

        class Pinned(ZeroQueues):
            pass

        pinned = Pinned()
        custom = UGALRouting(sn, num_vcs=4, oracle=pinned)
        NoCSimulator(sn, routing=custom, seed=3)
        assert custom.oracle is pinned


class TestDefaultRouting:
    def test_sn_gets_minimal_with_two_vcs(self):
        routing = default_routing(make_network("sn200"))
        assert isinstance(routing, StaticMinimalRouting)
        assert routing.num_vcs == 2

    def test_torus_gets_dimension_order(self):
        routing = default_routing(make_network("t2d4"))
        assert isinstance(routing, DimensionOrderRouting)

    def test_fbf_gets_minimal_not_xy(self):
        routing = default_routing(make_network("fbf3"))
        assert isinstance(routing, StaticMinimalRouting)

    def test_pfbf_vcs_cover_diameter(self):
        topo = make_network("pfbf9")
        routing = default_routing(topo)
        assert routing.num_vcs >= topo.diameter


@given(st.integers(0, 49), st.integers(0, 49))
@settings(max_examples=60, deadline=None)
def test_route_vcs_always_match_hops(src, dst):
    sn = SlimNoC(5, 4)
    routing = StaticMinimalRouting(sn, num_vcs=2)
    route = routing.route(src, dst)
    assert len(route.vcs) == route.hops
